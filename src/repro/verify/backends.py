"""Scalar-vs-batch differential oracle.

The batch backend (:mod:`repro.batch`) promises **bit-identical**
runs: same robots, same seed, same scheduler must produce the same
trace — positions, activation sets, bit events, epochs and monitor
verdicts — as the reference scalar :class:`~repro.model.simulator.Simulator`.
This module turns that promise into a sweepable oracle by reusing the
seeded scenario matrix of :mod:`repro.verify.scenarios`: every
executable cell is built twice from the same seed — once per backend
(every RNG draw happens before the simulator is constructed, so the
two builds see the identical swarm, schedule, payload and fault
plan) — driven to completion with its invariant monitors attached,
and compared field by field.

Two sweeps compose the oracle:

1. the **matrix arm** — every executable ``(protocol, adversary)``
   cell except ``worst_stale`` (the stale-look adversary is a scalar
   ``Simulator`` subclass with no batch twin; those cells are skipped
   with that reason, mirroring how the matrix documents its envelope);
2. the **fair-async arm** — every protocol's ``synchronous`` cell
   re-run under a seeded
   :class:`~repro.model.scheduler.FairAsynchronousScheduler`, so all
   six protocols are also checked under genuinely partial activation
   (each backend gets its own scheduler instance built from the same
   seed, hence the identical activation sequence).

Equality is strict: run length, retained trace steps
``(time, active, positions)``, per-robot received streams, final
configurations, configuration epochs and the full monitor verdict
lists must match exactly.  A run that *raises* is fine only if the
twin raises the same exception type and message at the same point —
the backends promise exception parity at the raise instant.

CLI: ``python -m repro.verify --backend-oracle`` (skips cleanly when
numpy is absent).
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.model.scheduler import FairAsynchronousScheduler, Scheduler
from repro.verify.engine import _received_fingerprint, _trace_fingerprint, drive
from repro.verify.monitors import attach
from repro.verify.scenarios import SKIPS, Cell, ScenarioRun, build_run, cells_for

__all__ = [
    "BACKEND_SKIPS",
    "BackendCellResult",
    "BackendReport",
    "compare_cell",
    "run_backend_matrix",
]

#: Adversaries the batch backend cannot replicate, with the reason —
#: reported as skips, exactly like the matrix's own ``SKIPS``.
BACKEND_SKIPS: Dict[str, str] = {
    "worst_stale": (
        "the stale-look adversary is a scalar Simulator subclass "
        "(per-robot Look snapshots); the batch backend has no twin"
    ),
}


def _fair_async_factory(seed: int) -> Callable[[], Scheduler]:
    """A seeded fair-async scheduler factory for the second oracle arm.

    Each backend calls the factory once, so each run owns a private
    scheduler instance whose RNG starts from the identical seed — the
    activation sequences are therefore bit-identical by construction.
    """

    def factory() -> Scheduler:
        return FairAsynchronousScheduler(seed=seed * 1_009 + 11)

    return factory


@dataclass
class BackendCellResult:
    """Outcome of one scalar-vs-batch comparison at one seed."""

    protocol: str
    scheduler: str
    seed: int
    #: ``"matrix"`` for the cell's own adversary, ``"fair_async"`` for
    #: the fair-asynchronous re-run of a synchronous cell.
    variant: str = "matrix"
    size: int = 0
    steps: int = 0
    #: human-readable divergence descriptions; empty means the runs
    #: were indistinguishable.
    problems: List[str] = field(default_factory=list)
    #: populated when a build/drive crashed *asymmetrically* (one
    #: backend raised, or both raised but differently).
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the two backends were indistinguishable."""
        return self.error is None and not self.problems

    def to_json(self) -> Dict[str, object]:
        """JSON-ready dict: comparison coordinates plus divergences."""
        payload: Dict[str, object] = {
            "protocol": self.protocol,
            "scheduler": self.scheduler,
            "variant": self.variant,
            "seed": self.seed,
            "size": self.size,
            "steps": self.steps,
            "ok": self.ok,
        }
        if self.problems:
            payload["problems"] = list(self.problems)
        if self.error is not None:
            payload["error"] = self.error
        return payload


def _monitor_verdicts(run: ScenarioRun) -> List[Tuple[object, ...]]:
    """Flatten a run's monitor violations into a comparable list."""
    out: List[Tuple[object, ...]] = []
    for monitor in run.monitors:
        for v in monitor.violations:
            out.append((monitor.name, v.invariant, v.time, v.message))
    return out


def _build_and_drive(
    cell: Cell,
    seed: int,
    backend: str,
    quick: bool,
    scheduler_factory: Optional[Callable[[], Scheduler]],
) -> Tuple[Optional[ScenarioRun], int, Optional[BaseException]]:
    """Run one backend's twin; returns (run, steps, exception)."""
    try:
        run = build_run(
            cell,
            seed,
            quick=quick,
            backend=backend,
            scheduler_factory=scheduler_factory,
        )
        attach(run.sim, run.monitors)
        steps = drive(run)
        return run, steps, None
    except Exception as exc:
        return None, 0, exc


def compare_cell(
    cell: Cell,
    seed: int,
    *,
    quick: bool = False,
    scheduler_factory: Optional[Callable[[], Scheduler]] = None,
    variant: str = "matrix",
) -> BackendCellResult:
    """Build one cell at one seed on both backends and diff the runs."""
    result = BackendCellResult(cell.protocol, cell.scheduler, seed, variant=variant)
    scalar, s_steps, s_exc = _build_and_drive(
        cell, seed, "scalar", quick, scheduler_factory
    )
    batched, b_steps, b_exc = _build_and_drive(
        cell, seed, "batch", quick, scheduler_factory
    )
    if s_exc is not None or b_exc is not None:
        # Exception parity: identical type and message is a pass —
        # the backends promise to diverge nowhere before the raise.
        if (
            s_exc is not None
            and b_exc is not None
            and type(s_exc) is type(b_exc)
            and str(s_exc) == str(b_exc)
        ):
            return result
        result.error = (
            "asymmetric failure:\n"
            f"  scalar: {type(s_exc).__name__ if s_exc else 'ok'}: {s_exc}\n"
            f"  batch : {type(b_exc).__name__ if b_exc else 'ok'}: {b_exc}\n"
            + "".join(traceback.format_exception(b_exc or s_exc, limit=6))
        )
        return result
    assert scalar is not None and batched is not None
    result.size = scalar.size
    result.steps = s_steps
    if s_steps != b_steps:
        result.problems.append(f"run length diverged: {s_steps} vs {b_steps}")
    if _trace_fingerprint(scalar) != _trace_fingerprint(batched):
        result.problems.append("position traces diverged")
    if _received_fingerprint(scalar) != _received_fingerprint(batched):
        result.problems.append("received bit streams diverged")
    if tuple(scalar.sim.positions) != tuple(batched.sim.positions):
        result.problems.append("final configurations diverged")
    if scalar.sim.epoch != batched.sim.epoch:
        result.problems.append(
            f"configuration epochs diverged: {scalar.sim.epoch} vs {batched.sim.epoch}"
        )
    if _monitor_verdicts(scalar) != _monitor_verdicts(batched):
        result.problems.append("monitor verdicts diverged")
    return result


@dataclass
class BackendReport:
    """Aggregate outcome of a scalar-vs-batch oracle sweep."""

    results: List[BackendCellResult] = field(default_factory=list)
    skipped: List[Tuple[str, str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every comparison passed."""
        return all(r.ok for r in self.results)

    @property
    def failures(self) -> List[BackendCellResult]:
        """The comparisons that found a divergence."""
        return [r for r in self.results if not r.ok]

    def to_json(self) -> Dict[str, object]:
        """JSON-ready dict of the whole sweep (results and skips)."""
        return {
            "ok": self.ok,
            "runs": len(self.results),
            "failures": len(self.failures),
            "skipped": [
                {"protocol": p, "scheduler": s, "reason": reason}
                for p, s, reason in self.skipped
            ],
            "results": [r.to_json() for r in self.results],
        }

    def format(self, verbose: bool = False) -> str:
        """Human-readable per-cell summary with divergence details."""
        lines: List[str] = []
        by_cell: Dict[Tuple[str, str, str], List[BackendCellResult]] = {}
        for r in self.results:
            by_cell.setdefault((r.protocol, r.scheduler, r.variant), []).append(r)
        for (protocol, scheduler, variant), runs in sorted(by_cell.items()):
            bad = [r for r in runs if not r.ok]
            shown = scheduler if variant == "matrix" else "fair_async*"
            status = "ok" if not bad else f"FAIL ({len(bad)}/{len(runs)} seeds)"
            lines.append(
                f"{protocol:14s} x {shown:15s} {len(runs):4d} seeds  {status}"
            )
            for r in bad:
                for problem in r.problems:
                    lines.append(f"    seed {r.seed}: {problem}")
                if r.error is not None:
                    first = r.error.strip().splitlines()[0]
                    lines.append(f"    seed {r.seed}: {first}")
        if verbose and self.skipped:
            lines.append("")
            for protocol, scheduler, reason in self.skipped:
                lines.append(f"skip {protocol} x {scheduler}: {reason}")
        total = len(self.results)
        bad_total = len(self.failures)
        lines.append("")
        lines.append(
            f"{total} comparisons, {bad_total} divergences, "
            f"{len(self.skipped)} cells skipped "
            "(* = synchronous cell re-run under the fair-async scheduler)"
        )
        return "\n".join(lines)


def run_backend_matrix(
    protocols: Optional[Sequence[str]] = None,
    schedulers: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = range(5),
    *,
    quick: bool = False,
    fair_async: bool = True,
    progress: Optional[Callable[[BackendCellResult], None]] = None,
) -> BackendReport:
    """Sweep the scalar-vs-batch oracle over the scenario matrix.

    Requires numpy (``pip install repro[batch]``) — import
    :func:`repro.batch.available` first to skip cleanly without it.
    With ``fair_async`` (the default), every matching ``synchronous``
    cell is additionally compared under a seeded fair-asynchronous
    scheduler, so all protocols are exercised under partial activation.
    """
    report = BackendReport()
    wanted_p = set(protocols) if protocols else None
    wanted_s = set(schedulers) if schedulers else None
    for (p, s), reason in sorted(SKIPS.items()):
        if (wanted_p is None or p in wanted_p) and (wanted_s is None or s in wanted_s):
            report.skipped.append((p, s, reason))
    cells = cells_for(protocols, schedulers)
    for cell in cells:
        if cell.scheduler in BACKEND_SKIPS:
            report.skipped.append(
                (cell.protocol, cell.scheduler, BACKEND_SKIPS[cell.scheduler])
            )
            continue
        for seed in seeds:
            result = compare_cell(cell, seed, quick=quick)
            report.results.append(result)
            if progress is not None:
                progress(result)
    if fair_async:
        for cell in cells:
            if cell.scheduler != "synchronous":
                continue
            for seed in seeds:
                result = compare_cell(
                    cell,
                    seed,
                    quick=quick,
                    scheduler_factory=_fair_async_factory(seed),
                    variant="fair_async",
                )
                report.results.append(result)
                if progress is not None:
                    progress(result)
    return report
