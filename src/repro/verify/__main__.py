"""``python -m repro.verify`` — the adversarial verification CLI.

Examples::

    python -m repro.verify --seeds 50                # full matrix
    python -m repro.verify --protocol async_n --scheduler burst --seeds 5
    python -m repro.verify --quick --seeds 10        # CI-sized sweep
    python -m repro.verify --self-test               # mutants must be caught
    python -m repro.verify --mutant deaf             # show one mutant's report
    python -m repro.verify --backend-oracle --quick  # scalar vs batch parity
    python -m repro.verify --causal-oracle --quick   # happens-before checks
    python -m repro.verify --list                    # cells, skips, mutants

Exit status: 0 when everything holds (or, for ``--self-test``, when
every mutant is caught); 1 on any violation, engine error, or missed
mutant; 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.verify.engine import CellResult, run_matrix
from repro.verify.mutants import MUTANTS, run_mutant, run_self_test
from repro.verify.scenarios import CELLS, PROTOCOLS, SCHEDULERS, SKIPS


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Seeded adversarial verification of the movement protocols.",
    )
    parser.add_argument(
        "--seeds", type=int, default=10,
        help="number of seeds per executable cell (default: 10)",
    )
    parser.add_argument(
        "--base-seed", type=int, default=0,
        help="first seed of the range (default: 0)",
    )
    parser.add_argument(
        "--protocol", default="all",
        help="comma-separated protocol filter, or 'all' "
             f"(choices: {', '.join(PROTOCOLS)})",
    )
    parser.add_argument(
        "--scheduler", default="all",
        help="comma-separated adversary filter, or 'all' "
             f"(choices: {', '.join(SCHEDULERS)})",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller swarms, shorter payloads and budgets (CI profile)",
    )
    parser.add_argument(
        "--no-transparency", action="store_true",
        help="skip the caching on/off A/B runs (halves the work)",
    )
    parser.add_argument(
        "--no-minimize", action="store_true",
        help="do not shrink failing reproductions",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="also write the full report as JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--obs-dump", metavar="DIR",
        help="on failure, replay the minimized repro with the obs "
             "recorder attached and dump the event trace (JSONL) here",
    )
    parser.add_argument(
        "--backend-oracle", action="store_true",
        help="differential oracle: every cell run on both the scalar and "
             "the batch backend from the same seed must be bit-identical "
             "(requires numpy; exits 0 with a notice when it is absent)",
    )
    parser.add_argument(
        "--event-oracle", action="store_true",
        help="differential oracle: every cell run on both the round engine "
             "and the event engine (round-emulation mode) from the same "
             "seed must be bit-identical (pure python)",
    )
    parser.add_argument(
        "--causal-oracle", action="store_true",
        help="causality oracle: every cell runs instrumented on both "
             "engines; the recorded trace must rebuild into a clean "
             "happens-before DAG (receipt after encode, ack after "
             "receipt, acyclic, overheard downstream of moves) with "
             "telescoping critical-path attribution",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list executable cells, skipped cells and mutants, then exit",
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="run every buggy mutant and require the monitors to catch it",
    )
    parser.add_argument(
        "--mutant", metavar="NAME",
        help="run one buggy mutant and report what the monitors saw",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="also print per-run progress and skip reasons",
    )
    return parser


def _split(value: str, universe: tuple, kind: str) -> Optional[List[str]]:
    if value == "all":
        return None
    names = [v.strip() for v in value.split(",") if v.strip()]
    unknown = [n for n in names if n not in universe]
    if unknown:
        raise SystemExit(
            f"error: unknown {kind} {unknown} (choose from {', '.join(universe)})"
        )
    return names


def _do_list() -> int:
    print("executable cells (invariants checked; all also get transparency):")
    for (p, s), cell in sorted(CELLS.items()):
        print(f"  {p:14s} x {s:15s} {', '.join(cell.invariants)}")
    print("\nskipped cells (out of the protocol's stated envelope):")
    for (p, s), reason in sorted(SKIPS.items()):
        print(f"  {p:14s} x {s:15s} {reason}")
    print("\nself-test mutants (expected violation):")
    for name, (description, expected) in MUTANTS.items():
        print(f"  {name:10s} {expected:15s} {description}")
    return 0


def _do_self_test() -> int:
    results = run_self_test()
    failed = False
    for result in results:
        if result.caught:
            hit = next(
                v for v in result.violations if v.invariant == result.expected
            )
            print(f"caught  {result.name:10s} -> {hit}")
        else:
            failed = True
            seen = sorted({v.invariant for v in result.violations}) or ["nothing"]
            print(
                f"MISSED  {result.name:10s} expected a {result.expected!r} "
                f"violation, monitors reported: {', '.join(seen)}"
            )
    print(
        f"\n{len(results)} mutants, "
        f"{sum(1 for r in results if r.caught)} caught"
    )
    return 1 if failed else 0


def _do_mutant(name: str) -> int:
    if name not in MUTANTS:
        print(
            f"error: unknown mutant {name!r} (choose from {', '.join(MUTANTS)})",
            file=sys.stderr,
        )
        return 2
    result = run_mutant(name)
    description, expected = MUTANTS[name]
    print(f"mutant {name}: {description} (expected violation: {expected})")
    for violation in result.violations:
        print(f"  {violation}")
    if not result.violations:
        print("  no violations reported")
    print("caught" if result.caught else "MISSED")
    # A mutant run is *supposed* to end in violations; exit nonzero so
    # the bug is impossible to mistake for a clean verification.
    return 1


def _do_backend_oracle(args, protocols, schedulers, seeds) -> int:
    from repro.batch import NUMPY_HINT, available
    from repro.verify.backends import BackendCellResult, run_backend_matrix

    if not available():
        print(f"backend oracle skipped: {NUMPY_HINT}")
        return 0

    def progress(result: BackendCellResult) -> None:
        status = "ok" if result.ok else "FAIL"
        print(
            f"  {result.protocol} x {result.scheduler} ({result.variant}) "
            f"seed={result.seed} size={result.size} steps={result.steps} {status}",
            flush=True,
        )

    report = run_backend_matrix(
        protocols,
        schedulers,
        seeds,
        quick=args.quick,
        progress=progress if args.verbose else None,
    )
    print(report.format(verbose=args.verbose))
    if args.json:
        payload = json.dumps(report.to_json(), indent=2)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
    return 0 if report.ok else 1


def _do_event_oracle(args, protocols, schedulers, seeds) -> int:
    from repro.verify.events import EventCellResult, run_event_matrix

    def progress(result: EventCellResult) -> None:
        status = "ok" if result.ok else "FAIL"
        print(
            f"  {result.protocol} x {result.scheduler} ({result.variant}) "
            f"seed={result.seed} size={result.size} steps={result.steps} {status}",
            flush=True,
        )

    report = run_event_matrix(
        protocols,
        schedulers,
        seeds,
        quick=args.quick,
        progress=progress if args.verbose else None,
    )
    print(report.format(verbose=args.verbose))
    if args.json:
        payload = json.dumps(report.to_json(), indent=2)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
    return 0 if report.ok else 1


def _do_causal_oracle(args, protocols, schedulers, seeds) -> int:
    from repro.verify.causal import CausalCellResult, run_causal_matrix

    def progress(result: CausalCellResult) -> None:
        status = "ok" if result.ok else "FAIL"
        print(
            f"  {result.protocol} x {result.scheduler} [{result.engine}] "
            f"seed={result.seed} size={result.size} steps={result.steps} {status}",
            flush=True,
        )

    report = run_causal_matrix(
        protocols,
        schedulers,
        seeds,
        quick=args.quick,
        progress=progress if args.verbose else None,
    )
    print(report.format(verbose=args.verbose))
    if args.json:
        payload = json.dumps(report.to_json(), indent=2)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = _parser().parse_args(argv)
    if args.list:
        return _do_list()
    if args.self_test:
        return _do_self_test()
    if args.mutant:
        return _do_mutant(args.mutant)
    if args.seeds < 1:
        print("error: --seeds must be >= 1", file=sys.stderr)
        return 2

    protocols = _split(args.protocol, PROTOCOLS, "protocol")
    schedulers = _split(args.scheduler, SCHEDULERS, "scheduler")
    seeds = range(args.base_seed, args.base_seed + args.seeds)

    if args.backend_oracle:
        return _do_backend_oracle(args, protocols, schedulers, seeds)
    if args.event_oracle:
        return _do_event_oracle(args, protocols, schedulers, seeds)
    if args.causal_oracle:
        return _do_causal_oracle(args, protocols, schedulers, seeds)

    def progress(result: CellResult) -> None:
        status = "ok" if result.ok else "FAIL"
        print(
            f"  {result.protocol} x {result.scheduler} seed={result.seed} "
            f"size={result.size} steps={result.steps} {status}",
            flush=True,
        )

    report = run_matrix(
        protocols,
        schedulers,
        seeds,
        quick=args.quick,
        transparency=not args.no_transparency,
        minimize=not args.no_minimize,
        obs_dump_dir=args.obs_dump,
        progress=progress if args.verbose else None,
    )
    print(report.format(verbose=args.verbose))
    if args.json:
        payload = json.dumps(report.to_json(), indent=2)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
