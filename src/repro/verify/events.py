"""Round-engine vs event-engine differential oracle.

The event engine (:mod:`repro.events`) promises that its
**round-emulation mode** — scheduler-driven, all phase durations 1,
zero observation delay — is *byte-identical* to the classic round
engine: same robots, same seed, same scheduler must produce the same
trace — positions, activation sets, bit events, epochs and monitor
verdicts.  This module turns that promise into a sweepable oracle,
mirroring the scalar-vs-batch oracle of :mod:`repro.verify.backends`:
every executable cell of the scenario matrix is built twice from the
same seed — once per engine (every RNG draw happens before the
simulator is constructed) — driven to completion with its invariant
monitors attached, and compared field by field.

Two sweeps compose the oracle:

1. the **matrix arm** — every executable ``(protocol, adversary)``
   cell except the ``event_*`` adversaries (inherently event-engine
   cells: there is no round twin to diff against); ``worst_stale``
   diffs through its dedicated event twin,
   :class:`repro.verify.adversaries.SawtoothStaleEventSimulator`;
2. the **fair-async arm** — every protocol's ``synchronous`` cell
   re-run under a seeded
   :class:`~repro.model.scheduler.FairAsynchronousScheduler`, so all
   six protocols are also diffed under genuinely partial activation.

Equality is strict: run length, retained trace steps, per-robot
received streams, final configurations, configuration epochs and the
full monitor verdict lists must match exactly; a run that raises is
fine only if the twin raises the same exception type and message.

CLI: ``python -m repro.verify --event-oracle`` (pure python — no
optional dependency involved).
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.model.scheduler import FairAsynchronousScheduler, Scheduler
from repro.verify.engine import _received_fingerprint, _trace_fingerprint, drive
from repro.verify.monitors import attach
from repro.verify.scenarios import SKIPS, Cell, ScenarioRun, build_run, cells_for

__all__ = [
    "EVENT_ORACLE_SKIPS",
    "EventCellResult",
    "EventOracleReport",
    "compare_cell",
    "run_event_matrix",
]

#: Adversaries the event oracle cannot twin, with the reason — reported
#: as skips, exactly like the matrix's own ``SKIPS``.
EVENT_ORACLE_SKIPS: Dict[str, str] = {
    "event_heavy_tail": (
        "inherently an event-engine cell (free-running heavy-tail "
        "timing); the round engine has no continuous-time twin"
    ),
    "event_delay_spike": (
        "inherently an event-engine cell (observation-delay model); "
        "the round engine has no delayed-visibility twin"
    ),
}


def _fair_async_factory(seed: int) -> Callable[[], Scheduler]:
    """A seeded fair-async scheduler factory for the second oracle arm.

    Each engine calls the factory once, so each run owns a private
    scheduler instance whose RNG starts from the identical seed — the
    activation sequences are therefore bit-identical by construction.
    """

    def factory() -> Scheduler:
        return FairAsynchronousScheduler(seed=seed * 1_013 + 17)

    return factory


@dataclass
class EventCellResult:
    """Outcome of one rounds-vs-events comparison at one seed."""

    protocol: str
    scheduler: str
    seed: int
    #: ``"matrix"`` for the cell's own adversary, ``"fair_async"`` for
    #: the fair-asynchronous re-run of a synchronous cell.
    variant: str = "matrix"
    size: int = 0
    steps: int = 0
    #: human-readable divergence descriptions; empty means the runs
    #: were indistinguishable.
    problems: List[str] = field(default_factory=list)
    #: populated when a build/drive crashed *asymmetrically* (one
    #: engine raised, or both raised but differently).
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the two engines were indistinguishable."""
        return self.error is None and not self.problems

    def to_json(self) -> Dict[str, object]:
        """JSON-ready dict: comparison coordinates plus divergences."""
        payload: Dict[str, object] = {
            "protocol": self.protocol,
            "scheduler": self.scheduler,
            "variant": self.variant,
            "seed": self.seed,
            "size": self.size,
            "steps": self.steps,
            "ok": self.ok,
        }
        if self.problems:
            payload["problems"] = list(self.problems)
        if self.error is not None:
            payload["error"] = self.error
        return payload


def _monitor_verdicts(run: ScenarioRun) -> List[Tuple[object, ...]]:
    """Flatten a run's monitor violations into a comparable list."""
    out: List[Tuple[object, ...]] = []
    for monitor in run.monitors:
        for v in monitor.violations:
            out.append((monitor.name, v.invariant, v.time, v.message))
    return out


def _build_and_drive(
    cell: Cell,
    seed: int,
    engine: str,
    quick: bool,
    scheduler_factory: Optional[Callable[[], Scheduler]],
) -> Tuple[Optional[ScenarioRun], int, Optional[BaseException]]:
    """Run one engine's twin; returns (run, steps, exception)."""
    try:
        run = build_run(
            cell,
            seed,
            quick=quick,
            engine=engine,
            scheduler_factory=scheduler_factory,
        )
        attach(run.sim, run.monitors)
        steps = drive(run)
        return run, steps, None
    except Exception as exc:
        return None, 0, exc


def compare_cell(
    cell: Cell,
    seed: int,
    *,
    quick: bool = False,
    scheduler_factory: Optional[Callable[[], Scheduler]] = None,
    variant: str = "matrix",
) -> EventCellResult:
    """Build one cell at one seed on both engines and diff the runs."""
    result = EventCellResult(cell.protocol, cell.scheduler, seed, variant=variant)
    rounds, r_steps, r_exc = _build_and_drive(
        cell, seed, "rounds", quick, scheduler_factory
    )
    events, e_steps, e_exc = _build_and_drive(
        cell, seed, "events", quick, scheduler_factory
    )
    if r_exc is not None or e_exc is not None:
        # Exception parity: identical type and message is a pass —
        # the engines promise to diverge nowhere before the raise.
        if (
            r_exc is not None
            and e_exc is not None
            and type(r_exc) is type(e_exc)
            and str(r_exc) == str(e_exc)
        ):
            return result
        result.error = (
            "asymmetric failure:\n"
            f"  rounds: {type(r_exc).__name__ if r_exc else 'ok'}: {r_exc}\n"
            f"  events: {type(e_exc).__name__ if e_exc else 'ok'}: {e_exc}\n"
            + "".join(traceback.format_exception(e_exc or r_exc, limit=6))
        )
        return result
    assert rounds is not None and events is not None
    result.size = rounds.size
    result.steps = r_steps
    if r_steps != e_steps:
        result.problems.append(f"run length diverged: {r_steps} vs {e_steps}")
    if _trace_fingerprint(rounds) != _trace_fingerprint(events):
        result.problems.append("position traces diverged")
    if _received_fingerprint(rounds) != _received_fingerprint(events):
        result.problems.append("received bit streams diverged")
    if tuple(rounds.sim.positions) != tuple(events.sim.positions):
        result.problems.append("final configurations diverged")
    if rounds.sim.epoch != events.sim.epoch:
        result.problems.append(
            f"configuration epochs diverged: {rounds.sim.epoch} vs {events.sim.epoch}"
        )
    if _monitor_verdicts(rounds) != _monitor_verdicts(events):
        result.problems.append("monitor verdicts diverged")
    return result


@dataclass
class EventOracleReport:
    """Aggregate outcome of a rounds-vs-events oracle sweep."""

    results: List[EventCellResult] = field(default_factory=list)
    skipped: List[Tuple[str, str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every comparison passed."""
        return all(r.ok for r in self.results)

    @property
    def failures(self) -> List[EventCellResult]:
        """The comparisons that found a divergence."""
        return [r for r in self.results if not r.ok]

    def to_json(self) -> Dict[str, object]:
        """JSON-ready dict of the whole sweep (results and skips)."""
        return {
            "ok": self.ok,
            "runs": len(self.results),
            "failures": len(self.failures),
            "skipped": [
                {"protocol": p, "scheduler": s, "reason": reason}
                for p, s, reason in self.skipped
            ],
            "results": [r.to_json() for r in self.results],
        }

    def format(self, verbose: bool = False) -> str:
        """Human-readable per-cell summary with divergence details."""
        lines: List[str] = []
        by_cell: Dict[Tuple[str, str, str], List[EventCellResult]] = {}
        for r in self.results:
            by_cell.setdefault((r.protocol, r.scheduler, r.variant), []).append(r)
        for (protocol, scheduler, variant), runs in sorted(by_cell.items()):
            bad = [r for r in runs if not r.ok]
            shown = scheduler if variant == "matrix" else "fair_async*"
            status = "ok" if not bad else f"FAIL ({len(bad)}/{len(runs)} seeds)"
            lines.append(
                f"{protocol:14s} x {shown:15s} {len(runs):4d} seeds  {status}"
            )
            for r in bad:
                for problem in r.problems:
                    lines.append(f"    seed {r.seed}: {problem}")
                if r.error is not None:
                    first = r.error.strip().splitlines()[0]
                    lines.append(f"    seed {r.seed}: {first}")
        if verbose and self.skipped:
            lines.append("")
            for protocol, scheduler, reason in self.skipped:
                lines.append(f"skip {protocol} x {scheduler}: {reason}")
        total = len(self.results)
        bad_total = len(self.failures)
        lines.append("")
        lines.append(
            f"{total} comparisons, {bad_total} divergences, "
            f"{len(self.skipped)} cells skipped "
            "(* = synchronous cell re-run under the fair-async scheduler)"
        )
        return "\n".join(lines)


def run_event_matrix(
    protocols: Optional[Sequence[str]] = None,
    schedulers: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = range(5),
    *,
    quick: bool = False,
    fair_async: bool = True,
    progress: Optional[Callable[[EventCellResult], None]] = None,
) -> EventOracleReport:
    """Sweep the rounds-vs-events oracle over the scenario matrix.

    Pure python — unlike the backend oracle there is no optional
    dependency to probe.  With ``fair_async`` (the default), every
    matching ``synchronous`` cell is additionally compared under a
    seeded fair-asynchronous scheduler, so all protocols are exercised
    under partial activation.
    """
    report = EventOracleReport()
    wanted_p = set(protocols) if protocols else None
    wanted_s = set(schedulers) if schedulers else None
    for (p, s), reason in sorted(SKIPS.items()):
        if (wanted_p is None or p in wanted_p) and (wanted_s is None or s in wanted_s):
            report.skipped.append((p, s, reason))
    cells = cells_for(protocols, schedulers)
    for cell in cells:
        if cell.scheduler in EVENT_ORACLE_SKIPS:
            report.skipped.append(
                (cell.protocol, cell.scheduler, EVENT_ORACLE_SKIPS[cell.scheduler])
            )
            continue
        for seed in seeds:
            result = compare_cell(cell, seed, quick=quick)
            report.results.append(result)
            if progress is not None:
                progress(result)
    if fair_async:
        for cell in cells:
            if cell.scheduler != "synchronous":
                continue
            for seed in seeds:
                result = compare_cell(
                    cell,
                    seed,
                    quick=quick,
                    scheduler_factory=_fair_async_factory(seed),
                    variant="fair_async",
                )
                report.results.append(result)
                if progress is not None:
                    progress(result)
    return report
