"""Protocol-agnostic invariant monitors on the live trace stream.

A monitor subscribes to the simulator's step stream
(:meth:`repro.model.simulator.Simulator.add_step_listener`) and checks
one of the paper's guarantees online; violations are collected, never
raised, so a single run can report every broken invariant at once.

The monitors are *protocol-agnostic*: what they check is declared by
the scenario (who sends what to whom, which robots are crash victims,
which displacements were injected), and protocol capabilities are
read off the protocol instances themselves (``idle_silent``).

Invariant names are stable identifiers — the CLI, the seed corpus and
the self-test all key on them:

==================  ====================================================
``collision``       no two robots ever occupy the same point
``silence``         traffic-free robots of silent protocols never move
``receipt``         every queued bit is delivered, exactly once, in order
``no-forged-bits``  a receiver never decodes bits the sender didn't queue
``two-per-bit``     synchronous streaming costs exactly 2 instants/bit
``scheduler``       the (adversarial) schedule itself stays legal
``staleness``       stale looks stay monotone and within the lag bound
``transparency``    caching on/off runs are bit-identical (engine-level)
==================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.geometry.vec import Vec2
from repro.model.simulator import Simulator
from repro.model.trace import TraceStep

__all__ = [
    "Violation",
    "InvariantMonitor",
    "set_flag_hook",
    "CollisionFreedomMonitor",
    "SilenceMonitor",
    "ReceiptMonitor",
    "NoForgedBitsMonitor",
    "TwoInstantsPerBitMonitor",
    "SchedulerContractMonitor",
    "StalenessContractMonitor",
    "attach",
]

#: ``sent`` maps (src, dst) to the exact bit payload queued at t=0.
TrafficMap = Dict[Tuple[int, int], List[int]]

#: Observability injection point: when set, every monitor firing is
#: also dispatched as ``hook(invariant, time, message)`` — the obs
#: recorder counts firings into its metrics registry and puts them on
#: the run's event timeline.  None (the default) costs one identity
#: check per firing; verdicts are never affected.
_flag_hook: Optional[Callable[[str, int, str], None]] = None


def set_flag_hook(
    hook: Optional[Callable[[str, int, str], None]],
) -> Optional[Callable[[str, int, str], None]]:
    """Install (or clear, with None) the monitor-firing hook.

    Returns the previously installed hook so callers can restore it.
    """
    global _flag_hook
    previous = _flag_hook
    _flag_hook = hook
    return previous


@dataclass(frozen=True, slots=True)
class Violation:
    """One broken invariant.

    Attributes:
        invariant: stable invariant identifier (see module docstring).
        time: the instant at which the breach was detected (-1 for
            end-of-run checks).
        message: human-readable diagnosis.
    """

    invariant: str
    time: int
    message: str

    def __str__(self) -> str:
        when = f"t={self.time}" if self.time >= 0 else "end"
        return f"[{self.invariant} @ {when}] {self.message}"


class InvariantMonitor:
    """Base class: collects violations over one run."""

    #: stable identifier of the invariant this monitor checks
    name: str = "invariant"

    def __init__(self) -> None:
        self.violations: List[Violation] = []

    def on_step(self, sim: Simulator, step: TraceStep) -> None:
        """Called after every simulator step (the trace stream)."""

    def finish(self, sim: Simulator) -> None:
        """Called once after the run, for end-of-run checks."""

    def _flag(self, time: int, message: str) -> None:
        self.violations.append(Violation(self.name, time, message))
        if _flag_hook is not None:
            _flag_hook(self.name, time, message)


def attach(sim: Simulator, monitors: Sequence[InvariantMonitor]) -> None:
    """Subscribe every monitor to the simulator's step stream."""
    for monitor in monitors:
        sim.add_step_listener(monitor.on_step)


class CollisionFreedomMonitor(InvariantMonitor):
    """Section 3.2's guarantee: robots never collide.

    Checked at every instant on the exact configuration — two robots
    on the same point is a violation, however briefly.
    """

    name = "collision"

    def on_step(self, sim: Simulator, step: TraceStep) -> None:
        positions = step.positions
        for i in range(len(positions)):
            for j in range(i + 1, len(positions)):
                if positions[i] == positions[j]:
                    self._flag(
                        step.time,
                        f"robots {i} and {j} collided at {positions[i]!r}",
                    )


class SilenceMonitor(InvariantMonitor):
    """The silence property: no traffic, no movement.

    Applies only to robots whose protocol declares ``idle_silent`` and
    that never had outgoing traffic; displacement injections are
    exempt (a teleport is a fault, not a protocol movement).
    """

    name = "silence"

    def __init__(
        self,
        senders: Set[int],
        displaced: Optional[Set[int]] = None,
    ) -> None:
        super().__init__()
        self._senders = set(senders)
        self._displaced = set(displaced or ())
        self._previous: Optional[Tuple[Vec2, ...]] = None

    def on_step(self, sim: Simulator, step: TraceStep) -> None:
        previous = (
            self._previous if self._previous is not None else sim.trace.initial_positions
        )
        for i, position in enumerate(step.positions):
            if i in self._senders or i in self._displaced:
                continue
            if not sim.protocol_of(i).idle_silent:
                continue
            if position != previous[i]:
                self._flag(
                    step.time,
                    f"silent robot {i} moved from {previous[i]!r} to "
                    f"{position!r} with no traffic queued",
                )
        self._previous = step.positions


class ReceiptMonitor(InvariantMonitor):
    """Emission + Receipt: queued bits arrive exactly once, in order.

    The strongest of the paper's correctness claims: for every
    declared flow ``(src, dst)``, the receiver's decoded stream from
    ``src`` equals the queued payload — no loss, no duplication, no
    reordering, no corruption.
    """

    name = "receipt"

    def __init__(self, sent: TrafficMap) -> None:
        super().__init__()
        self._sent = dict(sent)

    def finish(self, sim: Simulator) -> None:
        for (src, dst), bits in self._sent.items():
            received = [
                e.bit for e in sim.protocol_of(dst).received if e.src == src
            ]
            if received != list(bits):
                self._flag(
                    -1,
                    f"flow {src}->{dst}: queued {list(bits)}, "
                    f"delivered {received}",
                )


class NoForgedBitsMonitor(InvariantMonitor):
    """Weak-delivery soundness: nothing arrives that wasn't sent.

    Under schedules outside a protocol's envelope, bits may be *lost*
    (the receiver missed the excursion) — but a sound decoder must
    never invent, duplicate, or corrupt traffic: per declared flow,
    the delivered stream must be a subsequence of the queued payload.
    """

    name = "no-forged-bits"

    def __init__(self, sent: TrafficMap) -> None:
        super().__init__()
        self._sent = dict(sent)

    def finish(self, sim: Simulator) -> None:
        for (src, dst), bits in self._sent.items():
            received = [
                e.bit for e in sim.protocol_of(dst).received if e.src == src
            ]
            if not _is_subsequence(received, list(bits)):
                self._flag(
                    -1,
                    f"flow {src}->{dst}: delivered {received} is not a "
                    f"subsequence of queued {list(bits)}",
                )


def _is_subsequence(candidate: List[int], reference: List[int]) -> bool:
    it = iter(reference)
    return all(any(bit == ref for ref in it) for bit in candidate)


class TwoInstantsPerBitMonitor(InvariantMonitor):
    """The synchronous rate: bit ``k`` of a stream decodes at ``2k+1``.

    Holds for the side-step protocols (Sections 3.1/3.2) when the
    payload is queued before the first instant and every live robot is
    activated at every instant: excursion at ``2k``, observed and
    decoded at ``2k+1``, home again at ``2k+1`` — exactly two instants
    per bit, which is also the paper's throughput claim.
    """

    name = "two-per-bit"

    def __init__(self, sent: TrafficMap) -> None:
        super().__init__()
        self._sent = dict(sent)

    def finish(self, sim: Simulator) -> None:
        for (src, dst), bits in self._sent.items():
            events = [e for e in sim.protocol_of(dst).received if e.src == src]
            if len(events) != len(bits):
                # Loss is receipt's domain; rate cannot be assessed.
                continue
            for k, event in enumerate(events):
                if event.time != 2 * k + 1:
                    self._flag(
                        event.time,
                        f"flow {src}->{dst}: bit {k} decoded at t={event.time}, "
                        f"expected t={2 * k + 1} (2 instants per bit)",
                    )
                    break


class SchedulerContractMonitor(InvariantMonitor):
    """The adversary itself must stay a legal SSM scheduler.

    Checks, per instant: the activation set is nonempty and in range;
    crash victims are never activated after the crash instant; and —
    when a fairness bound is declared — no live robot's inactivity gap
    ever exceeds it.  This is how the verifier verifies its own
    adversaries (and how the scheduler-mutant self-test is caught).
    """

    name = "scheduler"

    def __init__(
        self,
        fairness_bound: Optional[int] = None,
        crashed: Optional[Set[int]] = None,
        crash_time: Optional[int] = None,
    ) -> None:
        super().__init__()
        self._bound = fairness_bound
        self._crashed = set(crashed or ())
        self._crash_time = crash_time
        self._last_active: Optional[List[int]] = None

    def on_step(self, sim: Simulator, step: TraceStep) -> None:
        count = sim.count
        if self._last_active is None:
            self._last_active = [-1] * count
        active = step.active
        if not active:
            self._flag(step.time, "empty activation set")
        out_of_range = [i for i in active if not (0 <= i < count)]
        if out_of_range:
            self._flag(step.time, f"activation of unknown robots {out_of_range}")
        if self._crash_time is not None and step.time >= self._crash_time:
            dead_active = sorted(self._crashed & set(active))
            if dead_active:
                self._flag(
                    step.time,
                    f"crashed robots {dead_active} activated after "
                    f"t={self._crash_time}",
                )
        if self._bound is not None:
            for i in range(count):
                if i in self._crashed:
                    continue
                gap = step.time - self._last_active[i]
                if gap > self._bound:
                    self._flag(
                        step.time,
                        f"robot {i} starved for {gap} instants "
                        f"(declared fairness bound {self._bound})",
                    )
        for i in active:
            if 0 <= i < count:
                self._last_active[i] = step.time


class StalenessContractMonitor(InvariantMonitor):
    """Stale looks must be monotone and boundedly old.

    For CORDA-style runs: every robot's look time never decreases (a
    robot never un-sees) and an activated robot's look lags the
    present by at most ``max_delay`` instants.
    """

    name = "staleness"

    def __init__(self) -> None:
        super().__init__()
        self._previous_looks: Optional[List[int]] = None

    def on_step(self, sim: Simulator, step: TraceStep) -> None:
        max_delay = getattr(sim, "max_delay", None)
        look_of = getattr(sim, "look_time_of", None)
        if max_delay is None or look_of is None:
            return
        count = sim.count
        if self._previous_looks is None:
            self._previous_looks = [0] * count
        for i in range(count):
            look = look_of(i)
            if look < self._previous_looks[i]:
                self._flag(
                    step.time,
                    f"robot {i} un-saw: look time went {self._previous_looks[i]} "
                    f"-> {look}",
                )
            if i in step.active and step.time - look > max_delay:
                self._flag(
                    step.time,
                    f"robot {i} looked at t={look}, lag "
                    f"{step.time - look} exceeds max_delay={max_delay}",
                )
            self._previous_looks[i] = look
