"""The seeded property-test engine.

For every executable cell of the matrix (:mod:`repro.verify.scenarios`)
and every seed, the engine:

1. builds the run twice — hot-path caching on and off — from the same
   seed, drives both, and requires the two traces, received streams
   and final configurations to be **bit-identical** (the
   ``transparency`` invariant, checked at engine level so it holds
   under every adversary, not just the benign benchmarks);
2. streams the cell's invariant monitors over the cached run;
3. on violation, *minimizes* the reproduction: shrink the swarm while
   the cell still fails, and clip the step budget to the earliest
   streaming violation;
4. when an ``obs_dump_dir`` is given, re-runs the minimized
   reproduction with an :class:`~repro.obs.recorder.ObsRecorder`
   attached and leaves the full event trace on disk as JSONL — a
   failure report you can open with ``python -m repro.obs report``.

Everything is deterministic given the seed list, so a failure report
is a complete reproduction recipe:
``build_run(CELLS[(protocol, scheduler)], seed, size_override=size)``.
"""

from __future__ import annotations

import os
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.verify.monitors import Violation, attach
from repro.verify.scenarios import (
    CELLS,
    SKIPS,
    Cell,
    ScenarioRun,
    build_run,
    cells_for,
)

__all__ = ["CellResult", "Report", "drive", "run_cell", "run_matrix"]

#: extra instants run after the early-stop condition fires, so silence
#: violations just after delivery are still observed.
_COOLDOWN = 4

#: smallest swarm the size-minimizer will try (crash/displacement cells
#: need a robot that is endpoint of no flow).
_MIN_SIZE = 4


def drive(run: ScenarioRun) -> int:
    """Step a scenario to completion; returns instants executed.

    The early-stop rule is a pure function of the (deterministic) run
    state, so the caching on/off twins always stop at the same instant.
    """
    steps = 0
    while steps < run.max_steps:
        if run.fault is not None:
            run.fault.maybe_inject(run.sim)
        run.sim.step()
        steps += 1
        if steps >= run.min_steps and (not run.check_receipt or run.delivered()):
            break
    cooldown = min(_COOLDOWN, run.max_steps - steps)
    for _ in range(cooldown):
        if run.fault is not None:
            run.fault.maybe_inject(run.sim)
        run.sim.step()
        steps += 1
    for monitor in run.monitors:
        monitor.finish(run.sim)
    return steps


@dataclass
class CellResult:
    """Outcome of one (cell, seed) verification."""

    protocol: str
    scheduler: str
    seed: int
    size: int = 0
    steps: int = 0
    violations: List[Violation] = field(default_factory=list)
    #: populated when the run itself crashed (build or step raised) —
    #: always a failure, whatever the cell's invariant list.
    error: Optional[str] = None
    #: minimized reproduction (seed/size/steps), present on failure.
    minimized: Optional[Dict[str, int]] = None
    #: path of the obs trace dumped for the minimized repro, when the
    #: engine was invoked with an ``obs_dump_dir``.
    obs_dump: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and not self.violations

    def to_json(self) -> Dict[str, object]:
        """JSON-ready dict: repro coordinates plus any violations."""
        payload: Dict[str, object] = {
            "protocol": self.protocol,
            "scheduler": self.scheduler,
            "seed": self.seed,
            "size": self.size,
            "steps": self.steps,
            "ok": self.ok,
        }
        if self.violations:
            payload["violations"] = [
                {"invariant": v.invariant, "time": v.time, "message": v.message}
                for v in self.violations
            ]
        if self.error is not None:
            payload["error"] = self.error
        if self.minimized is not None:
            payload["minimized"] = dict(self.minimized)
        if self.obs_dump is not None:
            payload["obs_dump"] = self.obs_dump
        return payload


def _trace_fingerprint(run: ScenarioRun) -> List[Tuple[object, ...]]:
    return [
        (step.time, tuple(sorted(step.active)), tuple(step.positions))
        for step in run.sim.trace.steps
    ]


def _received_fingerprint(run: ScenarioRun) -> List[Tuple[object, ...]]:
    out: List[Tuple[object, ...]] = []
    for i in range(run.sim.count):
        for e in run.sim.protocol_of(i).received:
            out.append((i, e.time, e.src, e.dst, e.bit))
    return out


def _check_transparency(
    cell: Cell, seed: int, quick: bool, cached: ScenarioRun, cached_steps: int
) -> List[Violation]:
    """Re-run with caching off; the runs must be indistinguishable."""
    twin = build_run(cell, seed, caching=False, quick=quick)
    twin_steps = drive(twin)
    problems: List[str] = []
    if twin_steps != cached_steps:
        problems.append(f"run length diverged: {cached_steps} vs {twin_steps}")
    if _trace_fingerprint(cached) != _trace_fingerprint(twin):
        problems.append("position traces diverged")
    if _received_fingerprint(cached) != _received_fingerprint(twin):
        problems.append("received bit streams diverged")
    if tuple(cached.sim.positions) != tuple(twin.sim.positions):
        problems.append("final configurations diverged")
    return [
        Violation(
            "transparency",
            -1,
            f"caching on/off runs differ ({problem})",
        )
        for problem in problems
    ]


def _minimize(
    cell: Cell, seed: int, quick: bool, failing: CellResult
) -> Dict[str, int]:
    """Shrink the failing reproduction: swarm size, then step budget.

    The step budget needs no re-runs — the earliest *streaming*
    violation bounds it; end-of-run violations (receipt and friends)
    need the full run by definition.
    """
    best_size = failing.size
    for size in range(_MIN_SIZE, failing.size):
        try:
            candidate = build_run(cell, seed, quick=quick, size_override=size)
            attach(candidate.sim, candidate.monitors)
            drive(candidate)
        except Exception:
            continue
        if any(m.violations for m in candidate.monitors):
            best_size = size
            break
    streamed = [v.time for v in failing.violations if v.time >= 0]
    best_steps = (min(streamed) + 1) if streamed else failing.steps
    return {"seed": seed, "size": best_size, "steps": best_steps}


def _dump_obs(
    cell: Cell, seed: int, quick: bool, failing: CellResult, dump_dir: str
) -> Optional[str]:
    """Replay the (minimized) failing repro instrumented; dump JSONL.

    Best-effort by design: the dump must never turn a clean failure
    report into an engine crash, so any exception yields ``None``.
    """
    from repro.obs.export import dump_run
    from repro.obs.recorder import ObsRecorder

    try:
        size = failing.minimized["size"] if failing.minimized else None
        steps = failing.minimized["steps"] if failing.minimized else None
        run = build_run(
            cell,
            seed,
            quick=quick,
            size_override=size,
            max_steps_override=steps,
        )
        recorder = ObsRecorder(
            meta={
                "protocol": cell.protocol,
                "scheduler": cell.scheduler,
                "seed": seed,
                "quick": quick,
                "minimized": dict(failing.minimized) if failing.minimized else None,
                "violations": [str(v) for v in failing.violations],
            }
        )
        recorder.attach(run.sim)
        attach(run.sim, run.monitors)
        drive(run)
        recorder.detach(run.sim)
        os.makedirs(dump_dir, exist_ok=True)
        path = os.path.join(
            dump_dir, f"{cell.protocol}-{cell.scheduler}-seed{seed}.jsonl"
        )
        return dump_run(recorder.to_run(), path)
    except Exception:  # pragma: no cover - dump is best-effort
        return None


def run_cell(
    cell: Cell,
    seed: int,
    *,
    quick: bool = False,
    transparency: bool = True,
    minimize: bool = True,
    obs_dump_dir: Optional[str] = None,
) -> CellResult:
    """Verify one cell at one seed; see the module docstring."""
    result = CellResult(cell.protocol, cell.scheduler, seed)
    try:
        run = build_run(cell, seed, caching=True, quick=quick)
        result.size = run.size
        attach(run.sim, run.monitors)
        result.steps = drive(run)
        for monitor in run.monitors:
            result.violations.extend(monitor.violations)
        if transparency:
            result.violations.extend(
                _check_transparency(cell, seed, quick, run, result.steps)
            )
    except Exception:
        result.error = traceback.format_exc(limit=8)
        return result
    if result.violations and minimize and cell.protocol not in ("sync_two", "async_two"):
        try:
            result.minimized = _minimize(cell, seed, quick, result)
        except Exception:  # pragma: no cover - minimization is best-effort
            pass
    if result.violations and obs_dump_dir is not None:
        result.obs_dump = _dump_obs(cell, seed, quick, result, obs_dump_dir)
    return result


@dataclass
class Report:
    """Aggregate outcome of a matrix sweep."""

    results: List[CellResult] = field(default_factory=list)
    skipped: List[Tuple[str, str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failures(self) -> List[CellResult]:
        return [r for r in self.results if not r.ok]

    def to_json(self) -> Dict[str, object]:
        """JSON-ready dict of the whole sweep (results and skips)."""
        return {
            "ok": self.ok,
            "runs": len(self.results),
            "failures": len(self.failures),
            "skipped": [
                {"protocol": p, "scheduler": s, "reason": reason}
                for p, s, reason in self.skipped
            ],
            "results": [r.to_json() for r in self.results],
        }

    def format(self, verbose: bool = False) -> str:
        """Human-readable per-cell summary with violation details."""
        lines: List[str] = []
        by_cell: Dict[Tuple[str, str], List[CellResult]] = {}
        for r in self.results:
            by_cell.setdefault((r.protocol, r.scheduler), []).append(r)
        for (protocol, scheduler), runs in sorted(by_cell.items()):
            bad = [r for r in runs if not r.ok]
            status = "ok" if not bad else f"FAIL ({len(bad)}/{len(runs)} seeds)"
            lines.append(f"{protocol:14s} x {scheduler:15s} {len(runs):4d} seeds  {status}")
            for r in bad:
                for v in r.violations:
                    lines.append(f"    seed {r.seed}: {v}")
                if r.error is not None:
                    first = r.error.strip().splitlines()[-1]
                    lines.append(f"    seed {r.seed}: engine error: {first}")
                if r.minimized:
                    m = r.minimized
                    lines.append(
                        f"    seed {r.seed}: minimized repro: seed={m['seed']} "
                        f"size={m['size']} steps={m['steps']}"
                    )
                if r.obs_dump:
                    lines.append(
                        f"    seed {r.seed}: obs trace: {r.obs_dump} "
                        f"(open with `python -m repro.obs report`)"
                    )
        if verbose and self.skipped:
            lines.append("")
            for protocol, scheduler, reason in self.skipped:
                lines.append(f"skip {protocol} x {scheduler}: {reason}")
        total = len(self.results)
        bad_total = len(self.failures)
        lines.append("")
        lines.append(
            f"{total} runs, {bad_total} failures, {len(self.skipped)} cells "
            f"skipped (out of envelope)"
        )
        return "\n".join(lines)


def run_matrix(
    protocols: Optional[Sequence[str]] = None,
    schedulers: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = range(10),
    *,
    quick: bool = False,
    transparency: bool = True,
    minimize: bool = True,
    obs_dump_dir: Optional[str] = None,
    progress: Optional[Callable[[CellResult], None]] = None,
) -> Report:
    """Sweep the matrix: every matching cell x every seed."""
    report = Report()
    wanted_p = set(protocols) if protocols else None
    wanted_s = set(schedulers) if schedulers else None
    for (p, s), reason in sorted(SKIPS.items()):
        if (wanted_p is None or p in wanted_p) and (wanted_s is None or s in wanted_s):
            report.skipped.append((p, s, reason))
    for cell in cells_for(protocols, schedulers):
        for seed in seeds:
            result = run_cell(
                cell,
                seed,
                quick=quick,
                transparency=transparency,
                minimize=minimize,
                obs_dump_dir=obs_dump_dir,
            )
            report.results.append(result)
            if progress is not None:
                progress(result)
    return report
