"""The adversarial scheduler zoo.

The paper's proofs quantify over *every* SSM schedule: the adversary
may activate any nonempty subset of robots at each instant, subject
only to fairness.  The built-in schedulers
(:mod:`repro.model.scheduler`) sample the benign middle of that
spectrum; the zoo here walks its edges:

* :class:`BoundedUnfairScheduler` — the *meanest legal* fair
  scheduler: every robot is starved for exactly its fairness window
  before being forced to run, and otherwise a single seeded robot
  hogs the schedule.
* :class:`BurstScheduler` — one robot at a time, in long exclusive
  bursts (fairness bound ``count * burst_length``); stresses
  acknowledgement counting and excursion phases that the round-robin
  scheduler inter-leaves gently.
* :class:`CrashScheduler` — wraps any scheduler and permanently stops
  activating a victim set from a given instant: a crashed robot in
  the SSM sense (it never computes nor moves again).

All three are deterministic given their seed, which the verification
engine relies on for its paired caching-on/off transparency runs.
"""

from __future__ import annotations

import random
from typing import FrozenSet, List, Optional, Sequence

from repro.errors import SchedulerError
from repro.model.scheduler import Scheduler

__all__ = [
    "BoundedUnfairScheduler",
    "BurstScheduler",
    "CrashScheduler",
]


class BoundedUnfairScheduler(Scheduler):
    """The worst fair schedule: starve everyone to the exact bound.

    At each instant the activation set is exactly:

    * every robot whose inactivity streak has reached
      ``fairness_bound`` (it *must* run now for the schedule to stay
      legal), plus
    * when nobody is forced, one seeded "favourite" robot — kept the
      same for ``stickiness`` consecutive instants so the rest of the
      swarm is starved in the longest legal stretches.

    This is still a fair SSM schedule (every robot is active at least
    once in every window of ``fairness_bound`` instants, the same
    contract as :class:`repro.model.scheduler.FairAsynchronousScheduler`)
    but with none of the probabilistic slack of the built-in one.

    Args:
        fairness_bound: the adversary's fairness window (``>= 1``).
        seed: RNG seed for favourite selection.
        stickiness: instants a favourite keeps the schedule to itself.
        activate_all_first: when True, instant 0 activates everyone
            (the Section 4.2 "all awake at t0" assumption).
    """

    def __init__(
        self,
        fairness_bound: int = 4,
        seed: int = 0,
        stickiness: int = 2,
        activate_all_first: bool = True,
    ) -> None:
        if fairness_bound < 1:
            raise SchedulerError(f"fairness_bound must be >= 1, got {fairness_bound}")
        if stickiness < 1:
            raise SchedulerError(f"stickiness must be >= 1, got {stickiness}")
        self.fairness_bound = fairness_bound
        self.stickiness = stickiness
        self.activate_all_first = activate_all_first
        self._rng = random.Random(seed)
        self._last_active: Optional[List[int]] = None
        self._favourite = 0
        self._favourite_left = 0
        self._expected_time = 0

    def activations(self, time: int, count: int) -> FrozenSet[int]:
        if count < 1:
            raise SchedulerError("cannot schedule an empty swarm")
        if time != self._expected_time:
            raise SchedulerError(
                f"scheduler driven out of order: expected t={self._expected_time}, "
                f"got t={time}"
            )
        self._expected_time += 1
        if self._last_active is None:
            self._last_active = [-1] * count
        elif len(self._last_active) != count:
            raise SchedulerError("robot count changed mid-run")

        if time == 0 and self.activate_all_first:
            active = set(range(count))
        else:
            active = {
                i
                for i in range(count)
                if time - self._last_active[i] >= self.fairness_bound
            }
            if not active:
                if self._favourite_left <= 0 or not (0 <= self._favourite < count):
                    self._favourite = self._rng.randrange(count)
                    self._favourite_left = self.stickiness
                self._favourite_left -= 1
                active = {self._favourite}
        for i in active:
            self._last_active[i] = time
        return frozenset(active)


class BurstScheduler(Scheduler):
    """One robot at a time, in exclusive seeded bursts.

    The activation order cycles through a seeded permutation of the
    swarm; each robot runs ``burst_length`` consecutive instants while
    everyone else is frozen.  Equivalent fairness bound:
    ``count * burst_length`` — fair, but with the longest legal
    exclusive stretches, the regime where phase-based decoding and
    change-counting acknowledgements are most brittle.

    Args:
        burst_length: instants per exclusive burst (``>= 1``).
        seed: seed for the cycling permutation.
        activate_all_first: when True, instant 0 activates everyone.
    """

    def __init__(
        self,
        burst_length: int = 3,
        seed: int = 0,
        activate_all_first: bool = True,
    ) -> None:
        if burst_length < 1:
            raise SchedulerError(f"burst_length must be >= 1, got {burst_length}")
        self.burst_length = burst_length
        self.activate_all_first = activate_all_first
        self._seed = seed
        self._order: Optional[List[int]] = None

    def activations(self, time: int, count: int) -> FrozenSet[int]:
        if count < 1:
            raise SchedulerError("cannot schedule an empty swarm")
        if self._order is None:
            self._order = list(range(count))
            random.Random(self._seed).shuffle(self._order)
        elif len(self._order) != count:
            raise SchedulerError("robot count changed mid-run")
        if time == 0 and self.activate_all_first:
            return frozenset(range(count))
        offset = time - 1 if self.activate_all_first else time
        slot = (offset // self.burst_length) % count
        return frozenset({self._order[slot]})


class CrashScheduler(Scheduler):
    """Crash-at-instant: victims stop being activated, permanently.

    In the SSM a robot that is never activated never observes,
    computes, or moves — the standard crash fault.  The wrapper
    filters the victims out of the inner scheduler's activation sets
    from ``crash_time`` on; if that empties a set entirely, the live
    robot with the lowest index runs instead (the model requires a
    nonempty activation at every instant).

    Args:
        inner: the schedule the live robots follow.
        crash_time: first instant at which the victims are dead.
        victims: tracking indices that crash (at least one robot must
            survive).
    """

    def __init__(
        self, inner: Scheduler, crash_time: int, victims: Sequence[int]
    ) -> None:
        if crash_time < 0:
            raise SchedulerError(f"crash_time must be >= 0, got {crash_time}")
        if not victims:
            raise SchedulerError("need at least one crash victim")
        self.inner = inner
        self.crash_time = crash_time
        self.victims: FrozenSet[int] = frozenset(victims)

    def activations(self, time: int, count: int) -> FrozenSet[int]:
        if len(self.victims) >= count:
            raise SchedulerError("crashing every robot leaves nobody to schedule")
        active = self.inner.activations(time, count)
        if time < self.crash_time:
            return active
        live = active - self.victims
        if not live:
            live = frozenset(
                {min(i for i in range(count) if i not in self.victims)}
            )
        return live
