"""Intentionally-buggy protocol mutants: the verifier's self-test.

A monitor that never fires proves nothing.  Each mutant here breaks
exactly one of the paper's guarantees on purpose; the self-test runs
the standard monitor suite over every mutant and asserts the *expected*
invariant is reported violated.  A silent monitor is a bug in the
verifier, and ``python -m repro.verify --self-test`` fails the build.

The mutants are deliberately minimal edits of the real protocols —
the kind of regression a refactor could plausibly introduce:

==============  ====================================================
``chatty``      idle robots fidget (breaks *silence*)
``deaf``        the decoder returns nothing (breaks *receipt*)
``liar``        every queued bit is flipped at send time (*receipt*)
``forger``      the receiver invents an extra bit (*no-forged-bits*)
``slow``        the sender holds excursions twice as long (*two-per-bit*)
``rammer``      one robot steers onto another (*collision*)
``starver``     a scheduler breaks its declared fairness (*scheduler*)
``amnesiac``    a stale-look engine rewinds look times (*staleness*)
==============  ====================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.geometry.frames import make_frames
from repro.geometry.vec import Vec2
from repro.model.observation import Observation
from repro.model.protocol import BitEvent
from repro.model.robot import Robot
from repro.model.scheduler import Scheduler, SynchronousScheduler
from repro.model.simulator import Simulator
from repro.protocols.sync_granular import SyncGranularProtocol
from repro.verify.adversaries import SawtoothStaleLookSimulator
from repro.verify.monitors import (
    CollisionFreedomMonitor,
    InvariantMonitor,
    NoForgedBitsMonitor,
    ReceiptMonitor,
    SchedulerContractMonitor,
    SilenceMonitor,
    StalenessContractMonitor,
    TwoInstantsPerBitMonitor,
    Violation,
    attach,
)

__all__ = ["MUTANTS", "MutantResult", "run_mutant", "run_self_test"]

_PAYLOAD = [1, 0, 1]
_STEPS = 60
_SRC, _DST = 0, 1


# ----------------------------------------------------------------------
# The buggy protocols
# ----------------------------------------------------------------------

class _ChattyGranular(SyncGranularProtocol):
    """Idle robots fidget by a sub-threshold amount.

    The offset is far below the decoder's off-home threshold, so peers
    still read the robot as idle — only the silence monitor can see
    the movement.  (Exactly the regression a sloppy 'return home'
    epsilon would introduce.)
    """

    def _compute(self, observation: Observation) -> Vec2:
        target = super()._compute(observation)
        if self.pending_bits == 0:
            # Alternate the sign so the fidget never accumulates past
            # the decoder's off-home epsilon.
            sign = 1.0 if self.activations % 2 else -1.0
            return target + Vec2(sign * 1e-8, 0.0)
        return target


class _DeafGranular(SyncGranularProtocol):
    """The decoder went missing: nothing is ever received."""

    def _decode(self, observation: Observation) -> List[BitEvent]:
        super()._decode(observation)  # keep sender-side state moving
        return []


class _LiarGranular(SyncGranularProtocol):
    """Every queued bit is flipped on its way into the queue."""

    def send_bit(self, dst: int, bit: int) -> None:
        super().send_bit(dst, 1 - bit)


class _ForgerGranular(SyncGranularProtocol):
    """The receiver invents one extra bit it was never sent."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._forged_once = False

    def _decode(self, observation: Observation) -> List[BitEvent]:
        events = super()._decode(observation)
        if events and not self._forged_once:
            self._forged_once = True
            first = events[0]
            events.append(
                BitEvent(time=first.time, src=first.src, dst=first.dst, bit=1)
            )
        return events


class _RammerGranular(SyncGranularProtocol):
    """Robot 2 steers straight onto robot 3's observed position."""

    def _compute(self, observation: Observation) -> Vec2:
        if self.info.index == 2:
            return observation.position_of(3)
        return super()._compute(observation)


class _StarvingScheduler(Scheduler):
    """Claims fairness but only ever activates robot 0 after t=0."""

    def activations(self, time: int, count: int) -> FrozenSet[int]:
        if time == 0:
            return frozenset(range(count))
        return frozenset({0})


class _AmnesiacStaleSimulator(SawtoothStaleLookSimulator):
    """Periodically rewinds a robot's look clock: the robot un-sees."""

    def _config_for_observation(self, index: int):
        config = super()._config_for_observation(index)
        if self.time >= 4 and self.time % 4 == 0:
            self._look_times[index] = 0
        return config


# ----------------------------------------------------------------------
# Scaffold
# ----------------------------------------------------------------------

def _swarm(
    factory: Callable[[], SyncGranularProtocol],
    *,
    sigma: float = 12.0,
    seed: int = 11,
) -> List[Robot]:
    rng = random.Random(seed)
    positions: List[Vec2] = []
    while len(positions) < 4:
        p = Vec2(rng.uniform(-15.0, 15.0), rng.uniform(-15.0, 15.0))
        if all(p.distance_to(q) >= 5.0 for q in positions):
            positions.append(p)
    frames = make_frames(4, "sense_of_direction", seed=seed)
    return [
        Robot(position=p, protocol=factory(), frame=frames[i], sigma=sigma,
              observable_id=i)
        for i, p in enumerate(positions)
    ]


def _standard_monitors(
    sent: Dict[Tuple[int, int], List[int]],
    fairness: Optional[int] = 1,
) -> List[InvariantMonitor]:
    return [
        CollisionFreedomMonitor(),
        SilenceMonitor(senders={_SRC}),
        ReceiptMonitor(sent),
        NoForgedBitsMonitor(sent),
        TwoInstantsPerBitMonitor(sent),
        SchedulerContractMonitor(fairness_bound=fairness),
    ]


def _build(mutant: str) -> Tuple[Simulator, List[InvariantMonitor]]:
    sent = {(_SRC, _DST): list(_PAYLOAD)}

    if mutant == "starver":
        robots = _swarm(lambda: SyncGranularProtocol(naming="identified"))
        sim: Simulator = Simulator(robots, _StarvingScheduler())
        # The scheduler *claims* the built-in fairness window of 4.
        monitors = _standard_monitors(sent, fairness=4)
        # Under starvation nothing is delivered; receipt/rate noise
        # would mask the scheduler violation we are testing for.
        monitors = [
            m for m in monitors
            if m.name not in ("receipt", "two-per-bit", "silence")
        ]
    elif mutant == "amnesiac":
        robots = _swarm(
            lambda: SyncGranularProtocol(naming="identified", dilation=3)
        )
        sim = _AmnesiacStaleSimulator(robots, 2, scheduler=SynchronousScheduler())
        monitors = [StalenessContractMonitor()]
    else:
        protocol_cls = {
            "chatty": _ChattyGranular,
            "deaf": _DeafGranular,
            "liar": _LiarGranular,
            "forger": _ForgerGranular,
            "slow": None,  # real protocol, wrong dilation
            "rammer": _RammerGranular,
        }[mutant]
        if mutant == "slow":
            factory: Callable[[], SyncGranularProtocol] = (
                lambda: SyncGranularProtocol(naming="identified", dilation=2)
            )
        elif mutant == "rammer":
            # Peers cannot classify the rammer's rogue trajectory; let
            # them shrug it off so the collision itself is what fails.
            factory = lambda: protocol_cls(
                naming="identified", tolerate_ambiguity=True
            )
        else:
            factory = lambda: protocol_cls(naming="identified")
        sigma = 60.0 if mutant == "rammer" else 12.0
        robots = _swarm(factory, sigma=sigma)
        sim = Simulator(robots, SynchronousScheduler())
        monitors = _standard_monitors(sent)
        if mutant == "rammer":
            # The rammer moves without traffic by design; silence noise
            # would mask the collision we are testing for.
            monitors = [m for m in monitors if m.name != "silence"]

    sim.protocol_of(_SRC).send_bits(_DST, _PAYLOAD)
    return sim, monitors


#: mutant name -> (description, the invariant its bug must trip)
MUTANTS: Dict[str, Tuple[str, str]] = {
    "chatty": ("idle robots fidget below the decode threshold", "silence"),
    "deaf": ("the decoder returns nothing", "receipt"),
    "liar": ("queued bits are flipped at send time", "receipt"),
    "forger": ("the receiver invents an extra bit", "no-forged-bits"),
    "slow": ("excursions held twice as long as claimed", "two-per-bit"),
    "rammer": ("one robot steers onto another", "collision"),
    "starver": ("the scheduler breaks its declared fairness", "scheduler"),
    "amnesiac": ("the stale-look engine rewinds look times", "staleness"),
}


@dataclass
class MutantResult:
    """Outcome of running the monitors over one buggy mutant."""

    name: str
    expected: str
    violations: List[Violation]

    @property
    def caught(self) -> bool:
        return any(v.invariant == self.expected for v in self.violations)


def run_mutant(name: str) -> MutantResult:
    """Run one mutant under the standard monitors."""
    if name not in MUTANTS:
        raise KeyError(
            f"unknown mutant {name!r} (choose from {sorted(MUTANTS)})"
        )
    sim, monitors = _build(name)
    attach(sim, monitors)
    for _ in range(_STEPS):
        sim.step()
    for monitor in monitors:
        monitor.finish(sim)
    violations = [v for m in monitors for v in m.violations]
    return MutantResult(name, MUTANTS[name][1], violations)


def run_self_test() -> List[MutantResult]:
    """Run every mutant; each must be caught by its expected monitor."""
    return [run_mutant(name) for name in MUTANTS]
