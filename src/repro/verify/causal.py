"""Causality invariant oracle over the protocol x scheduler matrix.

The causal tracer (:mod:`repro.obs.causal`) promises that every
recorded run yields a clean happens-before structure: receipts
happen-after encodes, acks happen-after receipts, the per-flow DAG is
acyclic, every overheard decode is downstream of an encoding move —
and the critical path's edge durations telescope to *exactly* the
flow's end-to-end latency (attribution is always 100% of the measured
cost).  This module turns that promise into a sweepable oracle,
mirroring the backend and event oracles: every executable cell of the
scenario matrix is driven with an :class:`~repro.obs.recorder.
ObsRecorder` attached — on the round engine *and* the event engine in
round-emulation mode — and the resulting trace is rebuilt into its
causal DAG and checked.

Ack ordering is only enforced (``strict_acks``) in cells whose
invariant list claims receipt: under adversaries that may starve the
addressee, a rhythm-based sender can legitimately advance before the
receipt lands, and the matrix documents that envelope rather than
fighting it.

CLI: ``python -m repro.verify --causal-oracle`` (pure python).
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.verify.scenarios import (
    EVENT_ADVERSARIES,
    SKIPS,
    Cell,
    build_run,
    cells_for,
)
from repro.verify.engine import drive

__all__ = [
    "CAUSAL_ORACLE_SKIPS",
    "CausalCellResult",
    "CausalOracleReport",
    "check_cell",
    "run_causal_matrix",
]

#: Engine twins the oracle cannot run, with the reason — reported as
#: skips exactly like the matrix's own ``SKIPS``.  (These mirror the
#: event oracle: the stale-look adversary is a round-engine Simulator
#: subclass, and the ``event_*`` adversaries exist only on the event
#: engine — each such cell is simply checked on its one native engine.)
CAUSAL_ORACLE_SKIPS: Dict[str, str] = {
    "worst_stale": (
        "round engine only: the stale-look adversary is a round-engine "
        "Simulator subclass with no event twin"
    ),
}

#: Protocols whose sender advances on a framing *rhythm* rather than
#: the implicit acknowledgement of Lemma 4.1, with the reason strict
#: ack ordering is not checked for them: the addressee commits a bit
#: only once the whole unit lands, so the ack event (sender advanced)
#: legitimately precedes the receipt event (decode committed).
RHYTHM_ADVANCING: Dict[str, str] = {
    "sync_logk": (
        "the Section 3.3 sender starts the next address/digit block on "
        "the synchronous rhythm; the addressee commits the bit only at "
        "block end, so acks are not receipt-gated"
    ),
}

#: tolerance for the critical-path telescoping identity (floats on the
#: event engine's continuous clock).
_EPS = 1e-9


def _engines_for(cell: Cell) -> Tuple[str, ...]:
    if cell.scheduler in EVENT_ADVERSARIES:
        # Inherently event-engine cells: build_run ignores engine=.
        return ("events",)
    if cell.scheduler in CAUSAL_ORACLE_SKIPS:
        return ("rounds",)
    return ("rounds", "events")


@dataclass
class CausalCellResult:
    """Outcome of one instrumented run's causality check."""

    protocol: str
    scheduler: str
    engine: str
    seed: int
    size: int = 0
    steps: int = 0
    #: flows with at least one bit-lifecycle event in the trace.
    flows: int = 0
    #: causality violations (empty = the happens-before DAG is clean).
    violations: List[str] = field(default_factory=list)
    #: populated when the build/drive itself crashed.
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the run produced a clean causal structure."""
        return self.error is None and not self.violations

    def to_json(self) -> Dict[str, object]:
        """JSON-ready dict: run coordinates plus any violations."""
        payload: Dict[str, object] = {
            "protocol": self.protocol,
            "scheduler": self.scheduler,
            "engine": self.engine,
            "seed": self.seed,
            "size": self.size,
            "steps": self.steps,
            "flows": self.flows,
            "ok": self.ok,
        }
        if self.violations:
            payload["violations"] = list(self.violations)
        if self.error is not None:
            payload["error"] = self.error
        return payload


def check_cell(
    cell: Cell,
    seed: int,
    engine: str,
    *,
    quick: bool = False,
) -> CausalCellResult:
    """Drive one instrumented cell and check its causal structure."""
    from repro.obs.causal import build_causal, check_invariants, critical_path
    from repro.obs.recorder import ObsRecorder

    result = CausalCellResult(cell.protocol, cell.scheduler, engine, seed)
    recorder = ObsRecorder(
        meta={
            "protocol": cell.protocol,
            "scheduler": cell.scheduler,
            "seed": seed,
        }
    )
    try:
        run = build_run(cell, seed, quick=quick, engine=engine)
        recorder.attach(run.sim)
        try:
            result.size = run.size
            result.steps = drive(run)
        finally:
            recorder.detach(run.sim)
    except Exception as exc:
        result.error = (
            f"{type(exc).__name__}: {exc}\n"
            + "".join(traceback.format_exception(exc, limit=6))
        )
        return result
    trace = build_causal(recorder.to_run())
    result.flows = len(trace.flows)
    strict = (
        "receipt" in cell.invariants
        and cell.protocol not in RHYTHM_ADVANCING
    )
    result.violations.extend(check_invariants(trace, strict_acks=strict))
    # Attribution completeness: the critical path's edge durations must
    # telescope to exactly the wall span it covers — 100% of the
    # latency lands on named edges, never a remainder.
    for flow, graph in trace.flows.items():
        path = critical_path(graph)
        if not path.edges:
            continue
        span = path.nodes[-1].wall - path.nodes[0].wall
        if abs(path.total - span) > _EPS:
            result.violations.append(
                f"flow {flow[0]}->{flow[1]}: critical path attribution "
                f"({path.total!r}) does not telescope to its wall span "
                f"({span!r})"
            )
    return result


@dataclass
class CausalOracleReport:
    """Aggregate outcome of a causal oracle sweep."""

    results: List[CausalCellResult] = field(default_factory=list)
    skipped: List[Tuple[str, str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every instrumented run was causally clean."""
        return all(r.ok for r in self.results)

    @property
    def failures(self) -> List[CausalCellResult]:
        """The runs whose causal structure was violated (or crashed)."""
        return [r for r in self.results if not r.ok]

    def to_json(self) -> Dict[str, object]:
        """JSON-ready dict of the whole sweep (results and skips)."""
        return {
            "ok": self.ok,
            "runs": len(self.results),
            "failures": len(self.failures),
            "skipped": [
                {"protocol": p, "scheduler": s, "reason": reason}
                for p, s, reason in self.skipped
            ],
            "results": [r.to_json() for r in self.results],
        }

    def format(self, verbose: bool = False) -> str:
        """Human-readable per-cell summary with violation details."""
        lines: List[str] = []
        by_cell: Dict[Tuple[str, str, str], List[CausalCellResult]] = {}
        for r in self.results:
            by_cell.setdefault((r.protocol, r.scheduler, r.engine), []).append(r)
        for (protocol, scheduler, engine), runs in sorted(by_cell.items()):
            bad = [r for r in runs if not r.ok]
            status = "ok" if not bad else f"FAIL ({len(bad)}/{len(runs)} seeds)"
            lines.append(
                f"{protocol:14s} x {scheduler:17s} [{engine:6s}] "
                f"{len(runs):4d} seeds  {status}"
            )
            for r in bad:
                for violation in r.violations:
                    lines.append(f"    seed {r.seed}: {violation}")
                if r.error is not None:
                    first = r.error.strip().splitlines()[0]
                    lines.append(f"    seed {r.seed}: {first}")
        if verbose and self.skipped:
            lines.append("")
            for protocol, scheduler, reason in self.skipped:
                lines.append(f"skip {protocol} x {scheduler}: {reason}")
        total = len(self.results)
        bad_total = len(self.failures)
        violations = sum(len(r.violations) for r in self.results)
        lines.append("")
        lines.append(
            f"{total} instrumented runs, {violations} causality violations, "
            f"{bad_total} failures, {len(self.skipped)} cells skipped"
        )
        return "\n".join(lines)


def run_causal_matrix(
    protocols: Optional[Sequence[str]] = None,
    schedulers: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = range(5),
    *,
    quick: bool = False,
    progress: Optional[Callable[[CausalCellResult], None]] = None,
) -> CausalOracleReport:
    """Sweep the causality oracle over the scenario matrix.

    Every executable cell runs instrumented on both engines (the
    ``event_*`` adversaries and ``worst_stale`` on their one native
    engine); the recorded trace must rebuild into a clean
    happens-before DAG with telescoping critical-path attribution.
    """
    report = CausalOracleReport()
    wanted_p = set(protocols) if protocols else None
    wanted_s = set(schedulers) if schedulers else None
    for (p, s), reason in sorted(SKIPS.items()):
        if (wanted_p is None or p in wanted_p) and (wanted_s is None or s in wanted_s):
            report.skipped.append((p, s, reason))
    for cell in cells_for(protocols, schedulers):
        if cell.scheduler in CAUSAL_ORACLE_SKIPS:
            report.skipped.append(
                (
                    cell.protocol,
                    cell.scheduler,
                    CAUSAL_ORACLE_SKIPS[cell.scheduler],
                )
            )
        for engine in _engines_for(cell):
            for seed in seeds:
                result = check_cell(cell, seed, engine, quick=quick)
                report.results.append(result)
                if progress is not None:
                    progress(result)
    return report
