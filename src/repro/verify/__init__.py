"""Adversarial-scheduler verification for the movement protocols.

The paper proves its protocols against *every* legal SSM schedule; the
test suite, by construction, only ever runs a handful of benign ones.
This package closes that gap with a seeded property-test harness:

* a zoo of adversarial schedulers and observation adversaries
  (:mod:`repro.verify.schedulers`, :mod:`repro.verify.adversaries`)
  plus displacement fault plans (:mod:`repro.faults.transient`);
* protocol-agnostic invariant monitors over the live trace stream
  (:mod:`repro.verify.monitors`);
* a protocol x adversary matrix with per-cell envelopes
  (:mod:`repro.verify.scenarios`) and the seeded engine that sweeps
  it, checks caching transparency, and minimizes failing reproductions
  (:mod:`repro.verify.engine`);
* intentionally-buggy mutants that prove the monitors actually fire
  (:mod:`repro.verify.mutants`).

Command line::

    python -m repro.verify --seeds 50 --protocol all
    python -m repro.verify --self-test
    python -m repro.verify --list
"""

from repro.verify.adversaries import SawtoothStaleLookSimulator
from repro.verify.engine import CellResult, Report, drive, run_cell, run_matrix
from repro.verify.monitors import (
    CollisionFreedomMonitor,
    InvariantMonitor,
    NoForgedBitsMonitor,
    ReceiptMonitor,
    SchedulerContractMonitor,
    SilenceMonitor,
    StalenessContractMonitor,
    TwoInstantsPerBitMonitor,
    Violation,
    attach,
)
from repro.verify.mutants import MUTANTS, MutantResult, run_mutant, run_self_test
from repro.verify.scenarios import (
    CELLS,
    PROTOCOLS,
    SCHEDULERS,
    SKIPS,
    Cell,
    ScenarioRun,
    build_run,
    cells_for,
)
from repro.verify.schedulers import (
    BoundedUnfairScheduler,
    BurstScheduler,
    CrashScheduler,
)

__all__ = [
    # engine
    "CellResult",
    "Report",
    "drive",
    "run_cell",
    "run_matrix",
    # matrix
    "CELLS",
    "PROTOCOLS",
    "SCHEDULERS",
    "SKIPS",
    "Cell",
    "ScenarioRun",
    "build_run",
    "cells_for",
    # monitors
    "InvariantMonitor",
    "Violation",
    "attach",
    "CollisionFreedomMonitor",
    "SilenceMonitor",
    "ReceiptMonitor",
    "NoForgedBitsMonitor",
    "TwoInstantsPerBitMonitor",
    "SchedulerContractMonitor",
    "StalenessContractMonitor",
    # adversaries
    "BoundedUnfairScheduler",
    "BurstScheduler",
    "CrashScheduler",
    "SawtoothStaleLookSimulator",
    # mutants
    "MUTANTS",
    "MutantResult",
    "run_mutant",
    "run_self_test",
]
