"""The verification matrix: protocol x adversary cells.

A *cell* pairs one of the six protocols with one adversarial schedule
and declares which invariants the paper's claims entitle us to check
there.  Cells outside a protocol's stated envelope are **skipped with
a reason** rather than silently dropped — the CLI prints the reason,
so the matrix documents the envelope as much as it checks it.

Scenario builders are fully seeded: the same ``(cell, seed)`` pair
always produces the identical swarm, schedule, payload and fault
plan.  The engine relies on this to run each cell twice (hot-path
caching on and off) and require bit-identical traces — the
``transparency`` invariant.
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.corda.simulator import StaleLookSimulator
from repro.errors import ModelError
from repro.faults.transient import TransientDisplacementFault
from repro.geometry.frames import make_frames
from repro.geometry.vec import Vec2
from repro.model.protocol import Protocol
from repro.model.robot import Robot
from repro.model.scheduler import (
    FairAsynchronousScheduler,
    Scheduler,
    SynchronousScheduler,
)
from repro.model.simulator import Simulator
from repro.protocols.async_n import AsyncNProtocol
from repro.protocols.async_two import AsyncTwoProtocol
from repro.protocols.flocking import FlockingProtocol
from repro.protocols.sync_granular import SyncGranularProtocol
from repro.protocols.sync_logk import SyncLogKProtocol
from repro.protocols.sync_two import SyncTwoProtocol
from repro.verify.adversaries import SawtoothStaleLookSimulator
from repro.verify.monitors import (
    CollisionFreedomMonitor,
    InvariantMonitor,
    NoForgedBitsMonitor,
    ReceiptMonitor,
    SchedulerContractMonitor,
    SilenceMonitor,
    StalenessContractMonitor,
    TrafficMap,
    TwoInstantsPerBitMonitor,
)
from repro.verify.schedulers import (
    BoundedUnfairScheduler,
    BurstScheduler,
    CrashScheduler,
)

__all__ = [
    "PROTOCOLS",
    "SCHEDULERS",
    "EVENT_ADVERSARIES",
    "Cell",
    "CELLS",
    "SKIPS",
    "ScenarioRun",
    "build_run",
    "cells_for",
]

#: Protocol keys, in the paper's order of presentation.
PROTOCOLS: Tuple[str, ...] = (
    "sync_two",
    "sync_granular",
    "sync_logk",
    "async_two",
    "async_n",
    "flocking",
)

#: Adversary keys: the scheduler zoo plus the non-scheduler adversaries.
#: The ``event_*`` keys are continuous-time adversaries hosted by the
#: free-running event engine (:mod:`repro.events`) — no round
#: scheduler is involved at all.
SCHEDULERS: Tuple[str, ...] = (
    "synchronous",
    "bounded_unfair",
    "burst",
    "crash",
    "worst_stale",
    "displacement",
    "event_heavy_tail",
    "event_delay_spike",
)

#: The adversaries executed on the free-running event engine.
EVENT_ADVERSARIES: Tuple[str, ...] = ("event_heavy_tail", "event_delay_spike")

#: Maximum Look staleness used by every ``worst_stale`` cell.
STALE_MAX_DELAY = 2


@dataclass(frozen=True)
class Cell:
    """One executable protocol x adversary combination.

    Attributes:
        protocol: protocol key (see :data:`PROTOCOLS`).
        scheduler: adversary key (see :data:`SCHEDULERS`).
        invariants: the invariant names checked in this cell; what is
            *not* listed is outside the protocol's envelope under this
            adversary (e.g. no ``receipt`` under schedules the
            protocol does not claim to deliver under).
        max_steps: instant budget for a full run.
        quick_steps: instant budget under ``--quick``.
    """

    protocol: str
    scheduler: str
    invariants: Tuple[str, ...]
    max_steps: int
    quick_steps: int


# Shorthands so the matrix below stays readable.
_C = "collision"
_S = "silence"
_R = "receipt"
_F = "no-forged-bits"
_T2 = "two-per-bit"
_SC = "scheduler"
_ST = "staleness"


def _cell(p: str, s: str, invariants: Sequence[str], steps: int, quick: int) -> Cell:
    return Cell(p, s, tuple(invariants), steps, quick)


#: The executable matrix.  Every cell also gets the engine-level
#: ``transparency`` check (caching on/off A/B) — it is not listed.
CELLS: Dict[Tuple[str, str], Cell] = {
    (c.protocol, c.scheduler): c
    for c in (
        # -- SyncTwo (Section 3.1): a synchronous pair ------------------
        _cell("sync_two", "synchronous", (_C, _S, _R, _F, _T2, _SC), 120, 60),
        _cell("sync_two", "bounded_unfair", (_C, _S, _F, _SC), 250, 120),
        _cell("sync_two", "burst", (_C, _S, _F, _SC), 250, 120),
        _cell("sync_two", "worst_stale", (_C, _S, _F, _ST, _SC), 120, 60),
        # -- SyncGranular (Section 3.2): the full synchronous swarm -----
        _cell("sync_granular", "synchronous", (_C, _S, _R, _F, _T2, _SC), 120, 60),
        _cell("sync_granular", "bounded_unfair", (_C, _S, _F, _SC), 250, 120),
        _cell("sync_granular", "burst", (_C, _S, _F, _SC), 250, 120),
        _cell("sync_granular", "crash", (_C, _S, _R, _F, _T2, _SC), 120, 60),
        _cell("sync_granular", "worst_stale", (_C, _S, _R, _F, _ST, _SC), 240, 120),
        _cell("sync_granular", "displacement", (_C, _S, _R, _F, _SC), 160, 80),
        # -- SyncLogK (Section 3.3): addressed digit blocks -------------
        _cell("sync_logk", "synchronous", (_C, _S, _R, _F, _SC), 160, 80),
        _cell("sync_logk", "crash", (_C, _S, _R, _F, _SC), 160, 80),
        # -- AsyncTwo (Section 4.1/4.2): the asynchronous pair ----------
        _cell("async_two", "synchronous", (_C, _R, _F, _SC), 1200, 400),
        _cell("async_two", "bounded_unfair", (_C, _R, _F, _SC), 2500, 800),
        _cell("async_two", "burst", (_C, _R, _F, _SC), 2500, 800),
        _cell("async_two", "worst_stale", (_C, _R, _F, _ST, _SC), 600, 250),
        _cell("async_two", "event_heavy_tail", (_C, _R, _F), 4000, 1500),
        # Like async_n below: a targeted visibility spike can park the
        # implicit-ack handshake (the ack *is* a movement observation;
        # a victim that cannot see it yet keeps the sender waiting)
        # beyond any fixed budget, so this cell checks *safety only*.
        _cell("async_two", "event_delay_spike", (_C, _F), 1200, 600),
        # -- AsyncN (Section 4.3): n asynchronous robots ----------------
        _cell("async_n", "synchronous", (_C, _R, _F, _SC), 1200, 400),
        _cell("async_n", "bounded_unfair", (_C, _R, _F, _SC), 2500, 800),
        _cell("async_n", "burst", (_C, _R, _F, _SC), 3000, 1000),
        _cell("async_n", "crash", (_C, _F, _SC), 250, 150),
        _cell("async_n", "worst_stale", (_C, _R, _F, _ST, _SC), 600, 250),
        _cell("async_n", "displacement", (_C, _R, _F, _SC), 600, 250),
        _cell("async_n", "event_heavy_tail", (_C, _R, _F), 8000, 2500),
        # Targeted delay spikes can stall the n-robot handshake
        # indefinitely (the victim's looks mix visibility epochs, which
        # the SEC-naming decode does not claim to survive), so this
        # cell checks *safety only*: no collisions, no forged bits —
        # delivery is explicitly not claimed here.
        _cell("async_n", "event_delay_spike", (_C, _F), 1200, 600),
        # -- Flocking (Section 4.4): chatting while moving --------------
        _cell("flocking", "synchronous", (_C, _R, _F, _T2, _SC), 150, 80),
        _cell("flocking", "crash", (_C, _R, _F, _SC), 250, 120),
        _cell("flocking", "displacement", (_C, _F, _SC), 300, 150),
    )
}

#: Out-of-envelope cells, with the reason they are not run.  The CLI
#: reports these so the matrix documents the paper's assumptions.
SKIPS: Dict[Tuple[str, str], str] = {
    ("sync_two", "crash"): (
        "a two-robot channel cannot lose either endpoint; the paper's "
        "crash discussion (Remark 4.3) starts at n >= 3"
    ),
    ("sync_two", "displacement"): (
        "the side-step decoder has no ambiguity tolerance: a teleported "
        "peer reads as a corrupt symbol by design"
    ),
    ("sync_logk", "bounded_unfair"): (
        "the Section 3.3 address/digit framing assumes full synchrony; "
        "partial activation desynchronizes the digit blocks and the "
        "decoder raises by design"
    ),
    ("sync_logk", "burst"): (
        "the Section 3.3 address/digit framing assumes full synchrony; "
        "exclusive bursts desynchronize the digit blocks"
    ),
    ("sync_logk", "worst_stale"): (
        "the undilated digit framing cannot survive skipped looks; only "
        "the dilated granular protocol claims staleness tolerance"
    ),
    ("sync_logk", "displacement"): (
        "the log-K slice classifier has no ambiguity tolerance; an "
        "out-of-band sighting raises by design"
    ),
    ("async_two", "crash"): (
        "a two-robot channel cannot lose either endpoint; the paper's "
        "crash discussion (Remark 4.3) starts at n >= 3"
    ),
    ("async_two", "displacement"): (
        "with n = 2 either robot is an endpoint of the only flow; "
        "displacing one corrupts the channel frame itself"
    ),
    ("flocking", "bounded_unfair"): (
        "the Section 4.4 drift overlay assumes every robot executes the "
        "common drift schedule at every instant (full synchrony)"
    ),
    ("flocking", "burst"): (
        "the Section 4.4 drift overlay assumes every robot executes the "
        "common drift schedule at every instant (full synchrony)"
    ),
    ("flocking", "worst_stale"): (
        "stale looks break the drift schedule agreement the overlay "
        "de-drifts against; out of the Section 4.4 envelope"
    ),
    ("sync_two", "event_heavy_tail"): (
        "the Section 3 framing assumes round-aligned activations; the "
        "free-running continuous-time engine is outside the synchronous "
        "envelope (the async protocols are its natural hosts)"
    ),
    ("sync_two", "event_delay_spike"): (
        "the Section 3 framing assumes round-aligned activations and "
        "instantaneous visibility; delayed looks are outside the "
        "synchronous envelope"
    ),
    ("sync_granular", "event_heavy_tail"): (
        "the Section 3 framing assumes round-aligned activations; the "
        "free-running continuous-time engine is outside the synchronous "
        "envelope"
    ),
    ("sync_granular", "event_delay_spike"): (
        "the Section 3 framing assumes round-aligned activations and "
        "instantaneous visibility; delayed looks are outside the "
        "synchronous envelope"
    ),
    ("sync_logk", "event_heavy_tail"): (
        "the Section 3.3 address/digit framing assumes full synchrony; "
        "free-running activations desynchronize the digit blocks"
    ),
    ("sync_logk", "event_delay_spike"): (
        "the Section 3.3 address/digit framing assumes full synchrony "
        "and instantaneous visibility"
    ),
    ("flocking", "event_heavy_tail"): (
        "the Section 4.4 drift overlay assumes every robot executes the "
        "common drift schedule at every instant (full synchrony)"
    ),
    ("flocking", "event_delay_spike"): (
        "the Section 4.4 drift overlay assumes every robot executes the "
        "common drift schedule at every instant (full synchrony)"
    ),
}

# Sanity: the matrix plus the skip list must tile the full grid.
assert not (set(CELLS) & set(SKIPS)), "a cell cannot both run and be skipped"
assert set(CELLS) | set(SKIPS) == {
    (p, s) for p in PROTOCOLS for s in SCHEDULERS
}, "matrix does not tile the protocol x scheduler grid"


@dataclass
class ScenarioRun:
    """One fully-built, ready-to-step verification run.

    The engine drives it: inject faults, step, early-stop on delivery
    (when the cell checks receipt), then hand the monitors their
    ``finish`` pass.
    """

    cell: Cell
    seed: int
    size: int
    sim: Simulator
    monitors: List[InvariantMonitor]
    sent: TrafficMap
    max_steps: int
    #: run at least this many instants before early-stopping (cells
    #: without a receipt claim set it to ``max_steps``: there is no
    #: delivery event to stop on, the budget *is* the experiment).
    min_steps: int
    fault: Optional[TransientDisplacementFault] = None

    @property
    def check_receipt(self) -> bool:
        return _R in self.cell.invariants

    def delivered(self) -> bool:
        """Has every declared flow received its full payload?"""
        for (src, dst), bits in self.sent.items():
            got = sum(1 for e in self.sim.protocol_of(dst).received if e.src == src)
            if got < len(bits):
                return False
        return True

    def descriptor(self) -> Dict[str, object]:
        """Reproduction coordinates for reports and the seed corpus."""
        return {
            "protocol": self.cell.protocol,
            "scheduler": self.cell.scheduler,
            "seed": self.seed,
            "size": self.size,
        }


def cells_for(
    protocols: Optional[Sequence[str]] = None,
    schedulers: Optional[Sequence[str]] = None,
) -> List[Cell]:
    """The executable cells matching a protocol/scheduler filter."""
    ps = tuple(protocols) if protocols else PROTOCOLS
    ss = tuple(schedulers) if schedulers else SCHEDULERS
    for p in ps:
        if p not in PROTOCOLS:
            raise ModelError(f"unknown protocol {p!r} (choose from {PROTOCOLS})")
    for s in ss:
        if s not in SCHEDULERS:
            raise ModelError(f"unknown scheduler {s!r} (choose from {SCHEDULERS})")
    return [CELLS[(p, s)] for p in ps for s in ss if (p, s) in CELLS]


# ----------------------------------------------------------------------
# Seeded geometry
# ----------------------------------------------------------------------

def _scatter(rng: random.Random, count: int, spread: float = 18.0,
             min_sep: float = 4.0) -> List[Vec2]:
    """``count`` seeded positions with a minimum pairwise separation."""
    positions: List[Vec2] = []
    attempts = 0
    sep = min_sep
    while len(positions) < count:
        p = Vec2(rng.uniform(-spread, spread), rng.uniform(-spread, spread))
        if all(p.distance_to(q) >= sep for q in positions):
            positions.append(p)
        attempts += 1
        if attempts > 500 * count:  # pragma: no cover - ample head-room
            sep *= 0.5
            attempts = 0
    return positions


def _pair(rng: random.Random) -> Tuple[List[Vec2], float]:
    """A seeded two-robot placement; returns positions and distance."""
    d = rng.uniform(8.0, 14.0)
    angle = rng.uniform(0.0, 2.0 * math.pi)
    center = Vec2(rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0))
    return [center, center + Vec2.from_polar(d, angle)], d


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------

@dataclass
class _Blueprint:
    """Everything a cell build produces before engine assembly."""

    positions: List[Vec2]
    factory: Callable[[], Protocol]
    identified: bool
    frame_regime: str
    sigma: float
    flows: List[Tuple[int, int]]
    payload: List[int]


def _payload(rng: random.Random, sync: bool, quick: bool) -> List[int]:
    length = 2 if quick else (rng.randint(3, 5) if sync else rng.randint(2, 3))
    return [rng.randrange(2) for _ in range(length)]


def _pick_flow(rng: random.Random, count: int) -> Tuple[int, int]:
    src = rng.randrange(count)
    dst = rng.randrange(count - 1)
    if dst >= src:
        dst += 1
    return src, dst


def _blueprint(cell: Cell, rng: random.Random, quick: bool,
               size_override: Optional[int]) -> _Blueprint:
    p, adv = cell.protocol, cell.scheduler

    if p in ("sync_two", "async_two"):
        positions, _ = _pair(rng)
        sigma = 0.6 * positions[0].distance_to(positions[1])
        src = rng.randrange(2)
        flows = [(src, 1 - src)]
        if p == "sync_two":
            factory: Callable[[], Protocol] = lambda: SyncTwoProtocol()
        else:
            factory = lambda: AsyncTwoProtocol(bounded=True)
        return _Blueprint(positions, factory, False, "sense_of_direction",
                          sigma, flows, _payload(rng, p == "sync_two", quick))

    if p == "sync_granular":
        size = size_override or (4 if quick else rng.randint(4, 7))
        positions = _scatter(rng, size)
        dilation = STALE_MAX_DELAY + 1 if adv == "worst_stale" else 1
        tolerant = adv == "displacement"
        factory = lambda: SyncGranularProtocol(
            naming="identified", dilation=dilation, tolerate_ambiguity=tolerant
        )
        return _Blueprint(positions, factory, True, "sense_of_direction",
                          12.0, [_pick_flow(rng, size)], _payload(rng, True, quick))

    if p == "sync_logk":
        size = size_override or (4 if quick else rng.randint(4, 6))
        positions = _scatter(rng, size)
        factory = lambda: SyncLogKProtocol(k=2, naming="identified")
        return _Blueprint(positions, factory, True, "sense_of_direction",
                          12.0, [_pick_flow(rng, size)], _payload(rng, True, quick))

    if p == "async_n":
        size = size_override or (4 if quick else rng.randint(4, 5))
        positions = _scatter(rng, size)
        tolerant = adv == "displacement"
        factory = lambda: AsyncNProtocol(
            naming="sec", tolerate_ambiguity=tolerant
        )
        return _Blueprint(positions, factory, False, "chirality",
                          12.0, [_pick_flow(rng, size)], _payload(rng, False, quick))

    if p == "flocking":
        size = size_override or (4 if quick else rng.randint(4, 5))
        positions = _scatter(rng, size)
        angle = rng.uniform(0.0, 2.0 * math.pi)
        direction = Vec2(math.cos(angle), math.sin(angle))
        tolerant = adv in ("crash", "displacement")
        factory = lambda: FlockingProtocol(
            SyncGranularProtocol(
                naming="identified", tolerate_ambiguity=tolerant
            ),
            direction=direction,
            speed_fraction=0.01,
        )
        return _Blueprint(positions, factory, True, "sense_of_direction",
                          12.0, [_pick_flow(rng, size)], _payload(rng, True, quick))

    raise ModelError(f"unknown protocol {p!r}")  # pragma: no cover


def _pick_victim(rng: random.Random, count: int,
                 flows: Sequence[Tuple[int, int]]) -> int:
    """A robot that is endpoint of no declared flow."""
    endpoints = {i for flow in flows for i in flow}
    candidates = [i for i in range(count) if i not in endpoints]
    if not candidates:
        raise ModelError("no crash/displacement victim available")
    return rng.choice(candidates)


def build_run(
    cell: Cell,
    seed: int,
    *,
    caching: bool = True,
    quick: bool = False,
    size_override: Optional[int] = None,
    max_steps_override: Optional[int] = None,
    backend: str = "scalar",
    engine: str = "rounds",
    scheduler_factory: Optional[Callable[[], Scheduler]] = None,
) -> ScenarioRun:
    """Materialize one cell at one seed.

    Fully deterministic: the same arguments (except ``caching``, which
    must not matter — that is the transparency invariant) produce the
    identical run.

    ``backend`` selects the simulator implementation (``"scalar"`` or
    ``"batch"``); every RNG draw happens before the simulator is
    constructed, so the two backends see the identical scenario — that
    is what makes :mod:`repro.verify.backends` a differential oracle.
    ``engine`` selects ``"rounds"`` (the classic instant-stepped
    engine) or ``"events"`` (the event engine in round-emulation mode:
    unit phase durations, zero delay) — the twin axis of the
    :mod:`repro.verify.events` oracle.  The ``event_*`` adversary cells
    are *inherently* event-engine runs (free-running timing, delay
    models) and ignore the ``engine`` argument.
    ``scheduler_factory``, when given, replaces the cell's scheduler
    after all seeding draws (the backend oracle uses it to sweep the
    fair-asynchronous scheduler over cells the static matrix pins to
    full synchrony).
    """
    # zlib.crc32, not hash(): string hashing is salted per process and
    # would make the "same seed, same run" reproduction promise a lie.
    cell_tag = zlib.crc32(f"{cell.protocol}/{cell.scheduler}".encode("ascii"))
    rng = random.Random((seed * 1_000_003) ^ cell_tag)
    bp = _blueprint(cell, rng, quick, size_override)
    count = len(bp.positions)
    adv = cell.scheduler

    # -- adversary wiring (all draws below stay on the same rng so the
    #    caching on/off pair sees the identical sequence) --------------
    fairness: Optional[int] = None
    crashed: Optional[set] = None
    crash_time: Optional[int] = None
    fault: Optional[TransientDisplacementFault] = None
    event_timing = None
    event_delay = None
    scheduler: Optional[Scheduler]
    if adv in EVENT_ADVERSARIES:
        from repro.events.delay import TargetedSpikeDelay, ZeroDelay
        from repro.events.distributions import Exponential, Pareto, Uniform
        from repro.events.timing import TimingModel

        # Free-running continuous time: the engine owns the schedule.
        scheduler = None
        if adv == "event_heavy_tail":
            # Phase durations with infinite variance (alpha < 2): any
            # robot can occasionally stall mid-cycle for a long time
            # while the gap clamp keeps every window fair.
            heavy = lambda: Pareto(alpha=1.4, scale=0.3)
            event_timing = TimingModel.free(
                look=heavy(),
                compute=heavy(),
                move=heavy(),
                gap=Exponential(mean=1.0),
                max_gap=8.0,
            )
            event_delay = ZeroDelay()
        else:
            # Benign timing, adversarial visibility: one robot — the
            # declared flow's receiver — suffers recurring delay
            # spikes, so its looks lag far behind the sender's moves.
            victim = bp.flows[0][1]
            event_timing = TimingModel.free(
                look=Uniform(0.5, 1.5),
                compute=Uniform(0.5, 1.5),
                move=Uniform(0.5, 1.5),
                gap=Exponential(mean=1.0),
                max_gap=6.0,
            )
            event_delay = TargetedSpikeDelay(
                victim, spike=10.0, period=40.0, width=8.0
            )
    elif adv == "synchronous" or adv == "worst_stale" or adv == "displacement":
        scheduler = SynchronousScheduler()
        fairness = 1
    elif adv == "bounded_unfair":
        fairness = 4
        scheduler = BoundedUnfairScheduler(
            fairness_bound=fairness, seed=seed * 31 + 7, stickiness=2
        )
    elif adv == "burst":
        burst = 3
        scheduler = BurstScheduler(burst_length=burst, seed=seed * 17 + 3)
        fairness = (count - 1) * burst + 1
    elif adv == "crash":
        crash_time = rng.randint(2, 5)
        victim = _pick_victim(rng, count, bp.flows)
        crashed = {victim}
        if cell.protocol == "async_n":
            inner: Scheduler = FairAsynchronousScheduler(
                fairness_bound=3, activation_probability=0.6, seed=seed * 13 + 5
            )
            fairness = 3
        else:
            inner = SynchronousScheduler()
            fairness = 1
        scheduler = CrashScheduler(inner, crash_time, [victim])
    else:
        raise ModelError(f"unknown adversary {adv!r}")  # pragma: no cover

    if adv == "displacement":
        victim = _pick_victim(rng, count, bp.flows)
        first = rng.randint(2, 8)
        second = first + rng.randint(6, 12)
        fault = TransientDisplacementFault(
            victim, times=(first, second), seed=seed * 7 + 1
        )

    # -- swarm ----------------------------------------------------------
    frames = make_frames(count, bp.frame_regime, seed=seed)  # type: ignore[arg-type]
    robots = [
        Robot(
            position=pos,
            protocol=bp.factory(),
            frame=frames[i],
            sigma=bp.sigma,
            observable_id=i if bp.identified else None,
        )
        for i, pos in enumerate(bp.positions)
    ]
    if scheduler_factory is not None and scheduler is not None:
        scheduler = scheduler_factory()
    if engine not in ("rounds", "events"):
        raise ModelError(f"unknown engine {engine!r} (choose rounds or events)")
    if adv in EVENT_ADVERSARIES:
        from repro.events.engine import EventSimulator

        if backend != "scalar":
            raise ModelError(
                f"the {adv} adversary runs on the event engine, which is "
                f"scalar-only; backend {backend!r} has no twin"
            )
        sim: Simulator = EventSimulator(
            robots,
            None,
            timing=event_timing,
            delay=event_delay,
            seed=seed * 9_176 + 5,
            caching=caching,
        )
    elif adv == "worst_stale":
        if backend != "scalar":
            raise ModelError(
                "the worst_stale adversary is a scalar Simulator subclass; "
                f"backend {backend!r} has no stale-look twin"
            )
        if engine == "events":
            from repro.verify.adversaries import SawtoothStaleEventSimulator

            sim = SawtoothStaleEventSimulator(
                robots, STALE_MAX_DELAY, scheduler=scheduler, caching=caching
            )
        else:
            sim = SawtoothStaleLookSimulator(
                robots, STALE_MAX_DELAY, scheduler=scheduler, caching=caching
            )
    elif engine == "events":
        from repro.events.engine import EventSimulator
        from repro.events.timing import TimingModel

        if backend != "scalar":
            raise ModelError(
                "engine='events' runs on the scalar backend only; "
                f"got backend {backend!r}"
            )
        sim = EventSimulator(
            robots,
            scheduler,
            timing=TimingModel.round_emulation(),
            caching=caching,
        )
    elif backend == "batch":
        from repro.batch.engine import BatchSimulator

        sim = BatchSimulator(robots, scheduler, caching=caching)
    elif backend == "scalar":
        sim = Simulator(robots, scheduler, caching=caching)
    else:
        raise ModelError(f"unknown backend {backend!r} (choose scalar or batch)")

    # -- traffic --------------------------------------------------------
    sent: TrafficMap = {}
    for src, dst in bp.flows:
        sim.protocol_of(src).send_bits(dst, bp.payload)
        sent[(src, dst)] = list(bp.payload)

    # -- monitors -------------------------------------------------------
    senders = {src for src, _ in bp.flows}
    displaced = {fault.victim} if fault is not None else set()
    monitors: List[InvariantMonitor] = []
    for name in cell.invariants:
        if name == _C:
            monitors.append(CollisionFreedomMonitor())
        elif name == _S:
            monitors.append(SilenceMonitor(senders, displaced))
        elif name == _R:
            monitors.append(ReceiptMonitor(sent))
        elif name == _F:
            monitors.append(NoForgedBitsMonitor(sent))
        elif name == _T2:
            monitors.append(TwoInstantsPerBitMonitor(sent))
        elif name == _SC:
            monitors.append(SchedulerContractMonitor(fairness, crashed, crash_time))
        elif name == _ST:
            monitors.append(StalenessContractMonitor())
        else:  # pragma: no cover - matrix is static
            raise ModelError(f"cell declares unknown invariant {name!r}")

    max_steps = max_steps_override or (cell.quick_steps if quick else cell.max_steps)
    if _R in cell.invariants:
        floors = [0]
        if crash_time is not None:
            floors.append(crash_time + 4)
        if fault is not None:
            floors.append(max(fault.times) + 6)
        min_steps = min(max_steps, max(floors))
    else:
        # No delivery event to stop on: the budget is the experiment.
        min_steps = max_steps

    return ScenarioRun(
        cell=cell,
        seed=seed,
        size=count,
        sim=sim,
        monitors=monitors,
        sent=sent,
        max_steps=max_steps,
        min_steps=min_steps,
        fault=fault,
    )
