"""Self-stabilizing communication (Section 5, "Stabilization").

    "It seems that, in our case, stabilization can be achieved in the
    synchronous case by carefully adapting the protocols proposed in
    Section 3; say by assuming a global clock [...] returning to the
    initial location and (re)computing the preprocessing phase every
    round timestamp."

:class:`~repro.stabilization.epoch.EpochGranularProtocol` implements
that sketch: synchronous time is divided into fixed-length *epochs*; at
every epoch boundary each robot re-runs the Section 3 preprocessing
(Voronoi, granulars, naming) from the configuration it currently
observes, so any transient corruption — arbitrary displacement of
robots, garbled protocol state — is washed out at the next boundary.
Traffic in the corrupted epoch may be lost or garbled; every message
submitted after the last fault is delivered.  Tests inject faults with
:meth:`repro.model.simulator.Simulator.displace`.
"""

from repro.stabilization.epoch import EpochGranularProtocol

__all__ = ["EpochGranularProtocol"]
