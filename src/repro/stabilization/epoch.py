"""Epoch-based self-stabilizing granular communication.

The synchronous granular protocol (Section 3.2-3.4) computes its
preprocessing — Voronoi cells, granular discs, naming — exactly once,
at ``t_0``.  A transient fault that moves a robot (or corrupts a
protocol's memory) therefore poisons the run forever: the victim keeps
transmitting from a home nobody agrees on.

Following the paper's stabilization sketch, :class:`EpochGranular
Protocol` re-runs the whole preprocessing every ``epoch_length``
instants, using the *currently observed* configuration as the new
``P(t_0)``.  The global clock the sketch assumes is the synchronous
instant counter (all robots see the same ``observation.time``), so all
robots switch epochs simultaneously.

Guarantees (and honest non-guarantees):

* bits handed to the in-epoch engine are transmitted within that
  epoch (the wrapper feeds at most ``epoch_length // 2`` bits each
  epoch — one excursion+return pair per bit);
* after the last transient fault, every subsequently submitted bit is
  delivered correctly — *self-stabilization of the channel*;
* bits in flight during a faulty epoch may be lost or garbled; the
  wrapper does not pretend otherwise (no acknowledgements exist in the
  synchronous model, and none are needed for stabilization).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ProtocolError, ReproError
from repro.geometry.vec import Vec2
from repro.model.observation import Observation
from repro.model.protocol import BindingInfo, BitEvent, Protocol
from repro.protocols.sync_granular import NamingMode, SyncGranularProtocol

__all__ = ["EpochGranularProtocol"]


class EpochGranularProtocol(Protocol):
    """Self-stabilizing wrapper around the granular protocol.

    Args:
        epoch_length: instants per epoch; must be at least 4 (one
            preprocessing instant plus at least one bit).
        naming: naming mode of the inner protocol.
        excursion_fraction: forwarded to the inner protocol.
    """

    def __init__(
        self,
        epoch_length: int = 32,
        naming: NamingMode = "identified",
        excursion_fraction: float = 0.45,
    ) -> None:
        super().__init__()
        if epoch_length < 4:
            raise ProtocolError(f"epoch_length must be >= 4, got {epoch_length}")
        self._epoch_length = epoch_length
        self._naming: NamingMode = naming
        self._excursion_fraction = excursion_fraction
        self._inner: Optional[SyncGranularProtocol] = None
        self._epoch = -1
        self._archived_received: List[BitEvent] = []
        self._archived_overheard: List[BitEvent] = []
        self._decode_failures = 0

    @property
    def epoch(self) -> int:
        """The current epoch number (-1 before the first activation)."""
        return self._epoch

    @property
    def decode_failures(self) -> int:
        """Activations where decoding broke down (symptom of a fault)."""
        return self._decode_failures

    @property
    def epoch_capacity(self) -> int:
        """Bits transmittable per epoch."""
        return (self._epoch_length - 1) // 2

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_activate(self, observation: Observation) -> Vec2:
        info = self._require_info()
        if observation.self_index != info.index:
            raise ProtocolError("observation delivered to the wrong robot")
        self._activations += 1

        epoch = observation.time // self._epoch_length
        if epoch != self._epoch:
            self._start_epoch(epoch, observation)
            # The boundary instant is spent on preprocessing: return to
            # the (new) home — which is the current position, so the
            # robot stays put for this instant.
            return observation.self_position

        assert self._inner is not None
        try:
            return self._inner.on_activate(observation)
        except ReproError:
            # A transient fault corrupted what we observe (e.g. a robot
            # was displaced mid-excursion and no longer classifies).
            # Swallow, stay put; the next epoch boundary heals us.
            self._decode_failures += 1
            return observation.self_position

    def _start_epoch(self, epoch: int, observation: Observation) -> None:
        info = self._require_info()
        self._epoch = epoch
        if self._inner is not None:
            self._archived_received.extend(self._inner.received)
            self._archived_overheard.extend(self._inner.overheard)

        # Re-run the Section 3 preprocessing from the *current*
        # configuration: the observed positions become the new P(t0).
        positions: Tuple[Vec2, ...] = observation.positions()
        if len(positions) != info.count:
            raise ProtocolError(
                "epoch preprocessing needs full visibility of the swarm"
            )
        inner = SyncGranularProtocol(
            naming=self._naming, excursion_fraction=self._excursion_fraction
        )
        inner.bind(
            BindingInfo(
                index=info.index,
                count=info.count,
                sigma=info.sigma,
                initial_positions=positions,
                observable_ids=info.observable_ids,
            )
        )
        # Hand the new engine this epoch's bit budget.
        for _ in range(self.epoch_capacity):
            queued = self._next_outgoing()
            if queued is None:
                break
            inner.send_bit(*queued)
        self._inner = inner

    # ------------------------------------------------------------------
    # Logs: archived epochs + the live engine
    # ------------------------------------------------------------------
    @property
    def received(self) -> Tuple[BitEvent, ...]:
        live = self._inner.received if self._inner is not None else ()
        return tuple(self._archived_received) + tuple(live)

    @property
    def overheard(self) -> Tuple[BitEvent, ...]:
        live = self._inner.overheard if self._inner is not None else ()
        return tuple(self._archived_overheard) + tuple(live)

    # The base-class hooks are bypassed by the on_activate override.
    def _decode(self, observation: Observation) -> List[BitEvent]:  # pragma: no cover
        raise ProtocolError("EpochGranularProtocol delegates decoding to its engine")

    def _compute(self, observation: Observation) -> Vec2:  # pragma: no cover
        raise ProtocolError("EpochGranularProtocol delegates movement to its engine")
