"""The persistent, content-addressed campaign result store.

Layout of a store directory::

    <store>/
      campaign.json        # which campaign lives here: name, spec hash,
                           # git commit, the ordered cell list
      results/<id>.json    # one deterministic JSON doc per finished cell,
                           # named by the cell's content hash
      journal.jsonl        # append-only event log: attempts, retries,
                           # timings, worker deaths, resume skips
      index.db             # SQLite index over results/ (derived; rebuilt
                           # on demand, safe to delete)
      obs/                 # optional repro-obs-v1 trace dumps

Design rules:

* **The result files are the truth.**  The journal and the SQLite
  index are derived conveniences; resume scans ``results/`` and
  nothing else, so a crash between a result write and a journal
  append cannot lose or duplicate work.
* **Result files are deterministic.**  Payloads are pure functions of
  the cell identity, serialized with sorted keys — an interrupted
  campaign resumed with ``--resume`` reproduces the uninterrupted
  store byte-for-byte.  Timing goes in the journal only.
* **Writes are atomic.**  Each result is written to a temp file and
  ``rename``d into place, so a SIGKILL mid-write leaves no torn file
  and at most one result ever exists per cell.
"""

from __future__ import annotations

import json
import os
import pathlib
import sqlite3
import subprocess
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.campaign.spec import SPEC_SCHEMA, SPEC_VERSION, CampaignSpec, CellSpec
from repro.errors import CampaignError

__all__ = ["CellRecord", "ResultStore", "current_git_commit"]

#: schema tag of one result document.
RESULT_SCHEMA = "repro-campaign-result"
RESULT_VERSION = 1

#: how long a connection waits on a locked index before giving up.
#: The serving layer checkpoints sessions into a store while
#: ``campaign status`` style readers rebuild/query the index; without
#: a budget the loser of that race dies with ``database is locked``.
INDEX_BUSY_TIMEOUT_S = 5.0


def _connect(path: pathlib.Path) -> sqlite3.Connection:
    """Open the index in WAL mode with a busy timeout.

    WAL lets readers proceed under a concurrent writer (each sees a
    consistent snapshot); the busy timeout turns the residual
    writer-vs-writer collisions into short waits instead of immediate
    ``database is locked`` errors.  The journal mode is persistent —
    set when the index is built, inherited by every later reader.
    """
    conn = sqlite3.connect(path, timeout=INDEX_BUSY_TIMEOUT_S)
    conn.execute("PRAGMA journal_mode=WAL")
    conn.execute(f"PRAGMA busy_timeout={int(INDEX_BUSY_TIMEOUT_S * 1000)}")
    return conn


def current_git_commit(cwd: Optional[str] = None) -> Optional[str]:
    """The enclosing checkout's HEAD commit, or ``None`` outside git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=cwd,
        )
    except Exception:
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


@dataclass
class CellRecord:
    """One finished cell as stored on disk.

    ``status`` is the *execution* outcome: ``ok`` means the executor
    returned a payload, ``failed`` means every attempt errored, timed
    out, or died.  A verify cell whose invariants were violated is
    ``ok`` at this level — the violation is the payload's finding,
    carried in ``payload["ok"]``.
    """

    cell_id: str
    kind: str
    params: Dict[str, object]
    status: str
    attempts: int
    payload: Optional[Dict[str, object]] = None
    error: Optional[str] = None

    @property
    def payload_ok(self) -> bool:
        """Execution succeeded *and* the payload reports no finding."""
        if self.status != "ok":
            return False
        if isinstance(self.payload, dict) and self.payload.get("ok") is False:
            return False
        return True

    def to_json(self) -> Dict[str, object]:
        """The deterministic on-disk form of this record."""
        doc: Dict[str, object] = {
            "schema": RESULT_SCHEMA,
            "version": RESULT_VERSION,
            "cell_id": self.cell_id,
            "kind": self.kind,
            "params": dict(self.params),
            "status": self.status,
            "attempts": self.attempts,
        }
        if self.payload is not None:
            doc["payload"] = self.payload
        if self.error is not None:
            doc["error"] = self.error
        return doc

    @classmethod
    def from_json(cls, doc: Dict[str, object]) -> "CellRecord":
        """Parse a result document (inverse of :meth:`to_json`)."""
        if doc.get("schema") != RESULT_SCHEMA:
            raise CampaignError(
                f"not a campaign result document (schema={doc.get('schema')!r})"
            )
        return cls(
            cell_id=str(doc["cell_id"]),
            kind=str(doc["kind"]),
            params=dict(doc["params"]),  # type: ignore[arg-type]
            status=str(doc["status"]),
            attempts=int(doc.get("attempts", 1)),  # type: ignore[arg-type]
            payload=doc.get("payload"),  # type: ignore[arg-type]
            error=doc.get("error"),  # type: ignore[arg-type]
        )


class ResultStore:
    """One campaign's durable results, rooted at a directory."""

    def __init__(self, root: str) -> None:
        self.root = pathlib.Path(root)
        self.results_dir = self.root / "results"
        self.campaign_path = self.root / "campaign.json"
        self.journal_path = self.root / "journal.jsonl"
        self.index_path = self.root / "index.db"

    # ------------------------------------------------------------------
    # Campaign header
    # ------------------------------------------------------------------
    def initialize(
        self,
        spec: CampaignSpec,
        *,
        resume: bool = False,
        git_commit: Optional[str] = None,
    ) -> None:
        """Bind this store to ``spec`` (creating directories as needed).

        A store only ever holds one campaign: re-initializing with a
        different spec hash is an error, and re-initializing a store
        that already has results requires ``resume=True`` so completed
        work is never silently clobbered or mixed.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        self.results_dir.mkdir(exist_ok=True)
        if self.campaign_path.exists():
            header = self.read_header()
            if header.get("spec_hash") != spec.spec_hash():
                raise CampaignError(
                    f"store {self.root} already holds campaign "
                    f"{header.get('name')!r} (spec {header.get('spec_hash')}); "
                    f"refusing to run {spec.name!r} ({spec.spec_hash()}) into it"
                )
            if not resume and any(self.iter_results()):
                raise CampaignError(
                    f"store {self.root} already has results; pass --resume "
                    f"to continue, or point at a fresh directory"
                )
            return
        header = {
            "schema": SPEC_SCHEMA,
            "version": SPEC_VERSION,
            "name": spec.name,
            "spec_hash": spec.spec_hash(),
            "git_commit": git_commit,
            "defaults": {
                "timeout_s": spec.timeout_s,
                "max_attempts": spec.max_attempts,
                "backoff_s": spec.backoff_s,
            },
            "cells": [
                {"cell_id": cell.cell_id(), **cell.to_json()}
                for cell in spec.cells
            ],
        }
        self._atomic_write(
            self.campaign_path, json.dumps(header, indent=2, sort_keys=True) + "\n"
        )

    def read_header(self) -> Dict[str, object]:
        """The ``campaign.json`` header; errors if the store is unbound."""
        try:
            return json.loads(self.campaign_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise CampaignError(
                f"{self.root} is not a campaign store (no campaign.json)"
            ) from None
        except json.JSONDecodeError as exc:
            raise CampaignError(
                f"corrupt campaign.json in {self.root}: {exc}"
            ) from exc

    def expected_cells(self) -> List[Dict[str, object]]:
        """The campaign's full cell list, from the header."""
        cells = self.read_header().get("cells", [])
        return list(cells)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def result_path(self, cell_id: str) -> pathlib.Path:
        """Where the result for ``cell_id`` lives (or would live)."""
        return self.results_dir / f"{cell_id}.json"

    def has_result(self, cell_id: str) -> bool:
        """Is there a finished result for this cell already?"""
        return self.result_path(cell_id).exists()

    def write_result(self, record: CellRecord) -> pathlib.Path:
        """Atomically persist one finished cell (write-temp + rename)."""
        path = self.result_path(record.cell_id)
        self._atomic_write(
            path, json.dumps(record.to_json(), indent=2, sort_keys=True) + "\n"
        )
        return path

    def read_result(self, cell_id: str) -> CellRecord:
        """Load one finished cell by its hash."""
        path = self.result_path(cell_id)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise CampaignError(f"no result for cell {cell_id} in {self.root}") from None
        except json.JSONDecodeError as exc:
            raise CampaignError(f"corrupt result {path}: {exc}") from exc
        return CellRecord.from_json(doc)

    def iter_results(self) -> Iterator[CellRecord]:
        """Every finished cell, in deterministic (hash) order."""
        if not self.results_dir.is_dir():
            return
        for path in sorted(self.results_dir.glob("*.json")):
            doc = json.loads(path.read_text(encoding="utf-8"))
            yield CellRecord.from_json(doc)

    def completed_ids(self) -> Dict[str, str]:
        """``cell_id -> status`` for every finished cell (resume scan)."""
        out: Dict[str, str] = {}
        for record in self.iter_results():
            out[record.cell_id] = record.status
        return out

    # ------------------------------------------------------------------
    # Journal
    # ------------------------------------------------------------------
    def journal(self, event: str, **fields: object) -> None:
        """Append one event line to the JSONL journal (flushed)."""
        entry = {"event": event, "wall_time": time.time(), **fields}
        with open(self.journal_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def read_journal(self) -> List[Dict[str, object]]:
        """Every journal event, oldest first (empty if none yet)."""
        try:
            text = self.journal_path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return []
        out: List[Dict[str, object]] = []
        for line in text.splitlines():
            if line.strip():
                out.append(json.loads(line))
        return out

    def cell_timings(self) -> Dict[str, float]:
        """Wall-clock seconds per cell, summed over recorded attempts."""
        timings: Dict[str, float] = {}
        for entry in self.read_journal():
            if entry.get("event") == "attempt_done" and "elapsed_s" in entry:
                cid = str(entry.get("cell_id"))
                timings[cid] = timings.get(cid, 0.0) + float(entry["elapsed_s"])  # type: ignore[arg-type]
        return timings

    # ------------------------------------------------------------------
    # SQLite index (derived)
    # ------------------------------------------------------------------
    def build_index(self) -> pathlib.Path:
        """(Re)build the SQLite index over ``results/``; returns its path.

        The index is a pure derivation — status/report queries go
        through it, and deleting it costs nothing but a rebuild.
        """
        tmp = self.index_path.with_suffix(".db.tmp")
        if tmp.exists():
            tmp.unlink()
        conn = _connect(tmp)
        try:
            conn.execute(
                """
                CREATE TABLE cells (
                    cell_id TEXT PRIMARY KEY,
                    kind TEXT NOT NULL,
                    status TEXT NOT NULL,
                    payload_ok INTEGER NOT NULL,
                    attempts INTEGER NOT NULL,
                    elapsed_s REAL,
                    params TEXT NOT NULL,
                    error TEXT
                )
                """
            )
            timings = self.cell_timings()
            for record in self.iter_results():
                conn.execute(
                    "INSERT OR REPLACE INTO cells VALUES (?,?,?,?,?,?,?,?)",
                    (
                        record.cell_id,
                        record.kind,
                        record.status,
                        1 if record.payload_ok else 0,
                        record.attempts,
                        timings.get(record.cell_id),
                        json.dumps(record.params, sort_keys=True),
                        record.error,
                    ),
                )
            conn.commit()
        finally:
            conn.close()
        os.replace(tmp, self.index_path)
        return self.index_path

    def query_index(self, sql: str, *args: object) -> List[tuple]:
        """Run a read-only query against a freshly built index."""
        self.build_index()
        conn = _connect(self.index_path)
        try:
            return list(conn.execute(sql, args))
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _atomic_write(self, path: pathlib.Path, text: str) -> None:
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
