"""Declarative campaign specs and their deterministic cell expansion.

A *campaign* is a declarative description of a parameter sweep —
verification cells over the protocol x adversary matrix, benchmark
tables, or the perf probes — expanded into a flat, deterministic list
of :class:`CellSpec` work items.  Every cell carries a **stable
content hash** (:meth:`CellSpec.cell_id`): the SHA-256 of its
canonical ``(kind, params)`` JSON.  The hash is the key of the result
store, which is what makes campaigns resumable — a cell that already
has a result under its hash is simply skipped.

Identity vs. policy
-------------------

Only ``kind`` and ``params`` enter the hash.  Execution *policy* —
per-cell timeout, retry budget, obs-dump directories — deliberately
does not: retuning a timeout or re-running with trace dumps enabled
must not invalidate the results already in the store.

Spec files
----------

:func:`load_spec` reads a JSON document of the form::

    {
      "name": "nightly-sweep",
      "defaults": {"timeout_s": 120, "max_attempts": 3, "backoff_s": 0.25},
      "cells": [
        {"generate": "verify", "protocols": ["sync_granular"],
         "seeds": 10, "quick": false},
        {"generate": "probes"},
        {"generate": "bench"},
        {"kind": "verify",
         "params": {"protocol": "sync_two", "scheduler": "synchronous",
                    "seed": 7, "repeat": 0, "quick": false}}
      ]
    }

``generate`` entries expand deterministically (matrix order x seed
order x repeat order); explicit entries pass through verbatim.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import CampaignError

__all__ = [
    "SPEC_SCHEMA",
    "SPEC_VERSION",
    "CellSpec",
    "CampaignSpec",
    "canonical_json",
    "verify_cells",
    "bench_cells",
    "probe_cells",
    "parse_spec",
    "load_spec",
]

#: schema tag of a campaign spec / store document.
SPEC_SCHEMA = "repro-campaign"
#: bump when a consumer-visible key changes shape.
SPEC_VERSION = 1

#: the module whose ``cells()`` registry holds the perf probes.
_PROBE_MODULE = "benchmarks.run_all"


def canonical_json(value: object) -> str:
    """The canonical (sorted, compact) JSON encoding used for hashing."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass
class CellSpec:
    """One unit of campaign work: a cell kind plus its parameters.

    Attributes:
        kind: executor key (see :mod:`repro.campaign.cells`) —
            ``verify``, ``bench``, or ``selftest``.
        params: JSON-able parameters that *identify* the cell; two
            cells with equal canonical params are the same cell.
        timeout_s: per-cell wall-clock budget; ``None`` inherits the
            campaign default.
        max_attempts: retry budget; ``None`` inherits the default.
        options: execution policy that must NOT affect identity
            (e.g. ``obs_dump_dir``); excluded from the hash.
    """

    kind: str
    params: Dict[str, object]
    timeout_s: Optional[float] = None
    max_attempts: Optional[int] = None
    options: Dict[str, object] = field(default_factory=dict)

    def cell_id(self) -> str:
        """Stable content hash of ``(kind, params)`` (16 hex chars)."""
        doc = canonical_json({"kind": self.kind, "params": self.params})
        return hashlib.sha256(doc.encode("utf-8")).hexdigest()[:16]

    def label(self) -> str:
        """A short human label for progress lines and reports."""
        parts = [self.kind]
        for key in ("protocol", "scheduler", "module", "cell", "behavior",
                    "seed", "repeat"):
            if key in self.params:
                parts.append(f"{key}={self.params[key]}")
        return " ".join(parts)

    def to_json(self) -> Dict[str, object]:
        """JSON form (spec files and the store's ``campaign.json``)."""
        doc: Dict[str, object] = {
            "kind": self.kind,
            "params": dict(self.params),
        }
        if self.timeout_s is not None:
            doc["timeout_s"] = self.timeout_s
        if self.max_attempts is not None:
            doc["max_attempts"] = self.max_attempts
        if self.options:
            doc["options"] = dict(self.options)
        return doc


@dataclass
class CampaignSpec:
    """A named campaign: cells plus campaign-wide execution defaults."""

    name: str
    cells: List[CellSpec] = field(default_factory=list)
    timeout_s: float = 120.0
    max_attempts: int = 3
    backoff_s: float = 0.25

    def __post_init__(self) -> None:
        seen: Dict[str, CellSpec] = {}
        for cell in self.cells:
            cid = cell.cell_id()
            if cid in seen:
                raise CampaignError(
                    f"duplicate cell in campaign {self.name!r}: "
                    f"{cell.label()} collides with {seen[cid].label()} "
                    f"(hash {cid}); use a 'repeat' param to distinguish "
                    f"intentional repeats"
                )
            seen[cid] = cell

    def cell_timeout(self, cell: CellSpec) -> float:
        """The effective timeout for ``cell`` (cell override or default)."""
        return cell.timeout_s if cell.timeout_s is not None else self.timeout_s

    def cell_attempts(self, cell: CellSpec) -> int:
        """The effective retry budget for ``cell``."""
        return (
            cell.max_attempts
            if cell.max_attempts is not None
            else self.max_attempts
        )

    def spec_hash(self) -> str:
        """Identity of the campaign: name plus the ordered cell hashes.

        Execution defaults are policy, not identity — retuning
        timeouts must not orphan an existing store.
        """
        doc = canonical_json(
            {"name": self.name, "cells": [c.cell_id() for c in self.cells]}
        )
        return hashlib.sha256(doc.encode("utf-8")).hexdigest()[:16]

    def to_json(self) -> Dict[str, object]:
        """JSON form of the whole spec (round-trips via :func:`parse_spec`)."""
        return {
            "schema": SPEC_SCHEMA,
            "version": SPEC_VERSION,
            "name": self.name,
            "defaults": {
                "timeout_s": self.timeout_s,
                "max_attempts": self.max_attempts,
                "backoff_s": self.backoff_s,
            },
            "cells": [cell.to_json() for cell in self.cells],
        }


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------

def _seed_list(seeds: Union[int, Sequence[int]]) -> List[int]:
    if isinstance(seeds, int):
        return list(range(seeds))
    return [int(s) for s in seeds]


def verify_cells(
    protocols: Optional[Sequence[str]] = None,
    schedulers: Optional[Sequence[str]] = None,
    seeds: Union[int, Sequence[int]] = 5,
    repeats: int = 1,
    quick: bool = False,
    minimize: bool = True,
) -> List[CellSpec]:
    """Expand the ``repro.verify`` matrix into campaign cells.

    One cell per executable ``(protocol, scheduler)`` pair x seed x
    repeat, in matrix order — out-of-envelope pairs are excluded the
    same way ``repro.verify`` skips them.  ``seeds`` is either a count
    (``5`` -> seeds 0..4) or an explicit list.
    """
    from repro.verify.scenarios import cells_for

    out: List[CellSpec] = []
    for cell in cells_for(protocols, schedulers):
        for seed in _seed_list(seeds):
            for repeat in range(repeats):
                out.append(
                    CellSpec(
                        kind="verify",
                        params={
                            "protocol": cell.protocol,
                            "scheduler": cell.scheduler,
                            "seed": seed,
                            "repeat": repeat,
                            "quick": quick,
                            "minimize": minimize,
                        },
                    )
                )
    return out


def _module_cells(module_name: str) -> List[CellSpec]:
    """The cells a single benchmark module exposes via ``cells()``."""
    import importlib

    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise CampaignError(
            f"cannot import benchmark module {module_name!r} — run from "
            f"the repository root so the 'benchmarks' package is "
            f"importable ({exc})"
        ) from exc
    if not hasattr(module, "cells") or not hasattr(module, "run_cell"):
        raise CampaignError(
            f"{module_name} does not expose the cells()/run_cell() pair"
        )
    return [
        CellSpec(kind="bench", params={"module": module_name, "cell": name})
        for name in module.cells()
    ]


def bench_cells(modules: Optional[Sequence[str]] = None) -> List[CellSpec]:
    """Campaign cells for benchmark table modules.

    With no argument, expands every module registered in
    ``benchmarks.run_all.MODULES`` (the full experiment matrix).
    """
    if modules is None:
        import importlib

        run_all = importlib.import_module(_PROBE_MODULE)
        modules = [m.__name__ for m in run_all.MODULES]
    out: List[CellSpec] = []
    for name in modules:
        out.extend(_module_cells(name))
    return out


def probe_cells() -> List[CellSpec]:
    """Campaign cells for the ``run_all`` perf/invariant probes."""
    return _module_cells(_PROBE_MODULE)


# ----------------------------------------------------------------------
# Spec file parsing
# ----------------------------------------------------------------------

_GENERATORS = {"verify", "bench", "probes"}


def _expand_entry(entry: Dict[str, object]) -> List[CellSpec]:
    if "generate" in entry:
        kind = entry["generate"]
        if kind == "verify":
            return verify_cells(
                protocols=entry.get("protocols"),
                schedulers=entry.get("schedulers"),
                seeds=entry.get("seeds", 5),
                repeats=int(entry.get("repeats", 1)),
                quick=bool(entry.get("quick", False)),
                minimize=bool(entry.get("minimize", True)),
            )
        if kind == "bench":
            return bench_cells(entry.get("modules"))
        if kind == "probes":
            return probe_cells()
        raise CampaignError(
            f"unknown generator {kind!r} (choose from {sorted(_GENERATORS)})"
        )
    if "kind" not in entry or "params" not in entry:
        raise CampaignError(
            f"a cell entry needs 'kind' and 'params' (or 'generate'): {entry!r}"
        )
    timeout = entry.get("timeout_s")
    attempts = entry.get("max_attempts")
    return [
        CellSpec(
            kind=str(entry["kind"]),
            params=dict(entry["params"]),  # type: ignore[arg-type]
            timeout_s=float(timeout) if timeout is not None else None,
            max_attempts=int(attempts) if attempts is not None else None,
            options=dict(entry.get("options", {})),  # type: ignore[arg-type]
        )
    ]


def parse_spec(doc: Dict[str, object]) -> CampaignSpec:
    """Build a :class:`CampaignSpec` from a parsed spec document."""
    if not isinstance(doc, dict):
        raise CampaignError(f"a campaign spec must be a JSON object, got {type(doc).__name__}")
    name = doc.get("name")
    if not isinstance(name, str) or not name:
        raise CampaignError("a campaign spec needs a non-empty 'name'")
    defaults = doc.get("defaults", {})
    if not isinstance(defaults, dict):
        raise CampaignError("'defaults' must be an object")
    entries = doc.get("cells", [])
    if not isinstance(entries, list) or not entries:
        raise CampaignError("'cells' must be a non-empty list")
    cells: List[CellSpec] = []
    for entry in entries:
        cells.extend(_expand_entry(entry))  # type: ignore[arg-type]
    return CampaignSpec(
        name=name,
        cells=cells,
        timeout_s=float(defaults.get("timeout_s", 120.0)),
        max_attempts=int(defaults.get("max_attempts", 3)),
        backoff_s=float(defaults.get("backoff_s", 0.25)),
    )


def load_spec(path: str) -> CampaignSpec:
    """Read and expand a JSON campaign spec file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as exc:
        raise CampaignError(f"cannot read spec {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise CampaignError(f"spec {path!r} is not valid JSON: {exc}") from exc
    return parse_spec(doc)
