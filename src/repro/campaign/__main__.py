"""``python -m repro.campaign`` — run and inspect experiment campaigns.

Examples::

    # an adversarial-verification sweep, 4 worker processes
    python -m repro.campaign run --verify --seeds 10 --workers 4 \\
        --store .campaigns/verify-sweep

    # kill it (Ctrl-C / SIGKILL / --max-cells), then pick it back up
    python -m repro.campaign run --verify --seeds 10 --workers 4 \\
        --store .campaigns/verify-sweep --resume

    # the benchmark probes as a campaign (what run_all --quick uses)
    python -m repro.campaign run --probes --store .campaigns/probes

    # inspect / compare
    python -m repro.campaign status .campaigns/verify-sweep
    python -m repro.campaign report .campaigns/verify-sweep
    python -m repro.campaign diff .campaigns/run-a .campaigns/run-b

    # feed the longitudinal metrics history (repro.obs.history)
    python -m repro.campaign export-history .campaigns/verify-sweep \\
        --history BENCH_history.jsonl

Exit status: 0 clean; 1 failed cells or findings (or structural store
disagreement for ``diff``); 2 usage errors; 3 incomplete campaign.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.campaign.report import render_diff, render_report, render_status
from repro.campaign.runner import CellOutcome, run_campaign
from repro.campaign.spec import (
    CampaignSpec,
    bench_cells,
    load_spec,
    probe_cells,
    verify_cells,
)
from repro.campaign.store import ResultStore
from repro.errors import ReproError


def _csv(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [item.strip() for item in value.split(",") if item.strip()]


def _build_spec(args: argparse.Namespace) -> CampaignSpec:
    """Materialize the campaign the ``run`` flags describe."""
    if args.spec:
        spec = load_spec(args.spec)
    else:
        cells = []
        name_parts = []
        if args.verify:
            cells.extend(
                verify_cells(
                    protocols=_csv(args.protocols),
                    schedulers=_csv(args.schedulers),
                    seeds=args.seeds,
                    repeats=args.repeats,
                    quick=args.quick,
                )
            )
            name_parts.append("verify")
        if args.probes:
            cells.extend(probe_cells())
            name_parts.append("probes")
        if args.bench:
            cells.extend(bench_cells())
            name_parts.append("bench")
        if not cells:
            raise ReproError(
                "nothing to run: pass --spec FILE or one of "
                "--verify/--probes/--bench"
            )
        spec = CampaignSpec(name=args.name or "-".join(name_parts), cells=cells)
    if args.timeout is not None:
        spec.timeout_s = args.timeout
    if args.max_attempts is not None:
        spec.max_attempts = args.max_attempts
    if args.backoff is not None:
        spec.backoff_s = args.backoff
    return spec


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _build_spec(args)
    store_dir = args.store or os.path.join(".campaigns", spec.name)
    if args.obs_dump:
        dump_dir = os.path.join(store_dir, "obs")
        for cell in spec.cells:
            if cell.kind == "verify":
                cell.options["obs_dump_dir"] = dump_dir
    total = len(spec.cells)
    counter = {"n": 0}

    def progress(outcome: CellOutcome) -> None:
        counter["n"] += 1
        flag = outcome.status if not outcome.payload_ok else "ok"
        print(
            f"[{counter['n']}/{total}] {flag:7s} {outcome.cell.label()} "
            f"(attempt {outcome.attempts}, {outcome.elapsed_s:.2f}s)"
        )

    outcome = run_campaign(
        spec,
        store_dir,
        workers=args.workers,
        resume=args.resume,
        max_cells=args.max_cells,
        progress=progress,
        extra_paths=[os.getcwd()],
    )
    resumed = sum(1 for o in outcome.outcomes if o.resumed)
    print(
        f"campaign {spec.name!r}: {len(outcome.outcomes)}/{total} cells done "
        f"({resumed} resumed), {len(outcome.failed)} failed, "
        f"{len(outcome.findings)} findings, {len(outcome.remaining)} "
        f"remaining, {outcome.elapsed_s:.2f}s wall -> {store_dir}"
    )
    if outcome.failed or outcome.findings:
        return 1
    if outcome.remaining:
        return 3
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    text, code = render_status(ResultStore(args.store))
    print(text)
    return code


def _cmd_report(args: argparse.Namespace) -> int:
    print(render_report(ResultStore(args.store), slowest=args.slowest))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    text, code = render_diff(
        ResultStore(args.store_a),
        ResultStore(args.store_b),
        threshold=args.threshold,
    )
    print(text)
    return code


def _cmd_export_history(args: argparse.Namespace) -> int:
    """Append a finished store's aggregates to the metrics history.

    The bridge between the campaign engine and the longitudinal
    observability layer: cell counts, statuses, and per-cell wall
    clocks become one :mod:`repro.obs.history` entry that
    ``python -m repro.obs regress`` can gate on.
    """
    from repro.obs.history import HistoryStore, entry_from_campaign

    store = ResultStore(args.store)
    entry = HistoryStore(args.history).append(entry_from_campaign(store))
    print(
        f"[history: campaign {entry.run_id!r} -> entry #{entry.seq} "
        f"({len(entry.metrics)} metrics) in {args.history}]"
    )
    return 0


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Run and inspect sharded, resumable experiment campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run (or resume) a campaign")
    run.add_argument("--spec", metavar="FILE", help="JSON campaign spec file")
    run.add_argument("--verify", action="store_true",
                     help="add the repro.verify matrix cells")
    run.add_argument("--probes", action="store_true",
                     help="add the benchmark perf/invariant probes")
    run.add_argument("--bench", action="store_true",
                     help="add every benchmark table cell")
    run.add_argument("--name", default=None, help="campaign name override")
    run.add_argument("--protocols", default=None,
                     help="comma-separated protocol filter (with --verify)")
    run.add_argument("--schedulers", default=None,
                     help="comma-separated scheduler filter (with --verify)")
    run.add_argument("--seeds", type=int, default=5,
                     help="seed count for --verify cells (default 5)")
    run.add_argument("--repeats", type=int, default=1,
                     help="repeats per --verify cell (default 1)")
    run.add_argument("--quick", action="store_true",
                     help="quick step budgets for --verify cells")
    run.add_argument("--store", default=None, metavar="DIR",
                     help="result store directory "
                          "(default .campaigns/<name>)")
    run.add_argument("--workers", type=int, default=0, metavar="N",
                     help="worker processes (0 = run inline)")
    run.add_argument("--resume", action="store_true",
                     help="skip cells already completed in the store")
    run.add_argument("--max-cells", type=int, default=None, metavar="K",
                     help="stop after K new results (simulated kill / smoke)")
    run.add_argument("--timeout", type=float, default=None, metavar="S",
                     help="per-cell timeout override")
    run.add_argument("--max-attempts", type=int, default=None, metavar="N",
                     help="retry budget override")
    run.add_argument("--backoff", type=float, default=None, metavar="S",
                     help="base retry backoff override")
    run.add_argument("--obs-dump", action="store_true",
                     help="dump obs traces of failing verify cells "
                          "under <store>/obs")
    run.set_defaults(func=_cmd_run)

    status = sub.add_parser("status", help="summarize a store")
    status.add_argument("store", help="result store directory")
    status.set_defaults(func=_cmd_status)

    report = sub.add_parser("report", help="full report over a store")
    report.add_argument("store", help="result store directory")
    report.add_argument("--slowest", type=int, default=10,
                        help="slowest-cell rows to show (default 10)")
    report.set_defaults(func=_cmd_report)

    diff = sub.add_parser("diff", help="compare two stores")
    diff.add_argument("store_a", help="baseline store directory")
    diff.add_argument("store_b", help="comparison store directory")
    diff.add_argument("--threshold", type=float, default=0.2,
                      help="relative numeric drift to report (default 0.2)")
    diff.set_defaults(func=_cmd_diff)

    export = sub.add_parser(
        "export-history",
        help="append a store's aggregate metrics to a history file",
    )
    export.add_argument("store", help="result store directory")
    export.add_argument("--history", metavar="PATH",
                        default="BENCH_history.jsonl",
                        help="history file to append to "
                             "(default BENCH_history.jsonl)")
    export.set_defaults(func=_cmd_export_history)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
