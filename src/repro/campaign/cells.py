"""Cell executors: what actually runs inside a campaign worker.

Each cell *kind* maps to an executor function.  An executor takes the
cell's identity ``params``, its non-identity ``options``, and the
attempt number, and returns a JSON-able payload.  Executors run inside
worker processes (or inline, for ``--workers 0``), so they import
their heavyweight dependencies lazily.

Determinism contract
--------------------

A payload must be a pure function of ``(kind, params)`` — no clocks,
no process ids, no absolute paths — because result files are
content-addressed by the cell hash and a resumed campaign must
reproduce an uninterrupted one byte-for-byte.  Wall-clock timing lives
in the store *journal*, never in the payload.  (The ``selftest`` kind
deliberately breaks parts of this contract to exercise the runner's
failure paths; it is not for production sweeps.)

Obs integration
---------------

Every execution swaps in a fresh :class:`~repro.obs.registry.
MetricsRegistry` as the process default; whatever deterministic series
the cell emits are collected into ``payload["metrics"]``.  Verify
cells additionally honour an ``obs_dump_dir`` option, leaving
``repro-obs-v1`` JSONL traces of failing runs next to the store.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from repro.errors import CampaignError
from repro.obs.registry import MetricsRegistry, set_default_registry

__all__ = ["EXECUTORS", "execute_cell", "register_executor"]

#: executor registry: cell kind -> callable(params, options, attempt).
EXECUTORS: Dict[str, Callable[..., Dict[str, object]]] = {}


def register_executor(
    kind: str, fn: Callable[..., Dict[str, object]]
) -> Callable[..., Dict[str, object]]:
    """Register (or override) the executor for a cell kind."""
    EXECUTORS[kind] = fn
    return fn


def execute_cell(
    kind: str,
    params: Dict[str, object],
    options: Optional[Dict[str, object]] = None,
    attempt: int = 1,
) -> Dict[str, object]:
    """Run one cell and return its payload.

    Swaps a fresh metrics registry in as the process default for the
    duration of the cell, so per-cell series neither leak between
    cells sharing a pooled worker nor pollute the caller's registry.
    """
    try:
        executor = EXECUTORS[kind]
    except KeyError:
        raise CampaignError(
            f"unknown cell kind {kind!r} (registered: {sorted(EXECUTORS)})"
        ) from None
    registry = MetricsRegistry()
    previous = set_default_registry(registry)
    try:
        payload = executor(params, options or {}, attempt)
    finally:
        set_default_registry(previous)
    if not isinstance(payload, dict):
        payload = {"value": payload}
    metrics = registry.collect()
    if metrics and "metrics" not in payload:
        payload["metrics"] = metrics
    return payload


# ----------------------------------------------------------------------
# verify: one (protocol, scheduler, seed) cell of the adversarial matrix
# ----------------------------------------------------------------------
def _exec_verify(
    params: Dict[str, object], options: Dict[str, object], attempt: int
) -> Dict[str, object]:
    """Run one ``repro.verify`` matrix cell as campaign work.

    The payload is the engine's :meth:`~repro.verify.engine.CellResult.
    to_json` plus deterministic obs counters (steps driven, violations
    found).  A cell whose invariants are violated still *executes*
    successfully — the violation is the finding, carried in
    ``payload["ok"]``, and surfaced by ``status``/``report``.
    """
    from repro.obs.registry import default_registry
    from repro.verify.engine import run_cell as verify_cell
    from repro.verify.scenarios import CELLS, SKIPS

    key = (str(params["protocol"]), str(params["scheduler"]))
    if key in SKIPS:
        raise CampaignError(
            f"verify cell {key[0]} x {key[1]} is out of envelope: {SKIPS[key]}"
        )
    if key not in CELLS:
        raise CampaignError(f"unknown verify cell {key[0]} x {key[1]}")
    dump_dir = options.get("obs_dump_dir")
    result = verify_cell(
        CELLS[key],
        int(params["seed"]),  # type: ignore[arg-type]
        quick=bool(params.get("quick", False)),
        minimize=bool(params.get("minimize", True)),
        obs_dump_dir=str(dump_dir) if dump_dir else None,
    )
    labels = {"protocol": key[0], "scheduler": key[1]}
    registry = default_registry()
    registry.counter("campaign_verify_steps", **labels).inc(result.steps)
    registry.counter(
        "campaign_verify_violations", **labels
    ).inc(len(result.violations))
    registry.gauge("campaign_verify_size", **labels).set(result.size)
    return result.to_json()


# ----------------------------------------------------------------------
# bench: a cell exported by a benchmark module's cells()/run_cell() pair
# ----------------------------------------------------------------------
def _exec_bench(
    params: Dict[str, object], options: Dict[str, object], attempt: int
) -> Dict[str, object]:
    """Run one benchmark cell by importing its module — no ``exec``.

    The module must expose the ``cells()``/``run_cell(name)`` pair
    (see ``benchmarks/support.py``); anything else is a spec error,
    reported as such rather than retried.
    """
    import importlib

    module_name = str(params["module"])
    cell_name = str(params["cell"])
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise CampaignError(
            f"cannot import benchmark module {module_name!r}: {exc}"
        ) from exc
    if not hasattr(module, "run_cell") or not hasattr(module, "cells"):
        raise CampaignError(
            f"{module_name} does not expose the cells()/run_cell() pair"
        )
    if cell_name not in module.cells():
        raise CampaignError(
            f"{module_name} has no cell {cell_name!r} "
            f"(available: {sorted(module.cells())})"
        )
    return module.run_cell(cell_name)


# ----------------------------------------------------------------------
# selftest: deliberately misbehaving cells for the runner's own tests
# ----------------------------------------------------------------------
def _exec_selftest(
    params: Dict[str, object], options: Dict[str, object], attempt: int
) -> Dict[str, object]:
    """Deterministically misbehave, as instructed by ``params``.

    Behaviors: ``ok`` (return a payload derived from params), ``fail``
    (always raise), ``flaky`` (raise until ``succeed_on_attempt``),
    ``hang`` (spin past any reasonable timeout), ``die`` (hard
    ``os._exit`` — a worker crash, not an exception), ``slow`` (sleep
    ``sleep_s`` then succeed).
    """
    behavior = str(params.get("behavior", "ok"))
    if behavior == "ok":
        return {"ok": True, "value": params.get("value", 0)}
    if behavior == "fail":
        raise RuntimeError("selftest cell failed as instructed")
    if behavior == "flaky":
        target = int(params.get("succeed_on_attempt", 2))  # type: ignore[arg-type]
        if attempt < target:
            raise RuntimeError("selftest cell flaked as instructed")
        return {"ok": True, "value": params.get("value", 0)}
    if behavior == "hang":
        deadline = time.monotonic() + float(params.get("hang_s", 3600.0))  # type: ignore[arg-type]
        while time.monotonic() < deadline:
            time.sleep(0.01)
        return {"ok": True, "value": "outlived the watchdog"}
    if behavior == "die":
        import os

        os._exit(int(params.get("exit_code", 23)))  # type: ignore[arg-type]
    if behavior == "slow":
        time.sleep(float(params.get("sleep_s", 0.1)))  # type: ignore[arg-type]
        return {"ok": True, "value": params.get("value", 0)}
    raise CampaignError(f"unknown selftest behavior {behavior!r}")


register_executor("verify", _exec_verify)
register_executor("bench", _exec_bench)
register_executor("selftest", _exec_selftest)
