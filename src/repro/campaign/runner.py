"""The campaign runner: a sharded, fault-tolerant cell execution pool.

The runner turns a :class:`~repro.campaign.spec.CampaignSpec` into
results in a :class:`~repro.campaign.store.ResultStore`:

* **Sharding** — cells fan out over a ``concurrent.futures``
  process pool (``workers=N``); ``workers=0`` runs inline in the
  driver process (used by tests and by monkeypatch-friendly callers).
* **Per-cell timeout** — each worker arms a SIGALRM watchdog around
  the cell; a hung cell is interrupted at its budget and reported as
  a ``timeout`` attempt.  A driver-side backstop catches workers whose
  alarm never fires (e.g. stuck in C code) by rebuilding the pool.
* **Bounded retry with backoff** — failed/timed-out attempts requeue
  with exponential backoff until the cell's ``max_attempts`` is
  exhausted, then the cell is recorded ``failed`` — never dropped.
* **Crash isolation** — a worker that dies outright (SIGKILL,
  ``os._exit``) breaks the pool; the runner rebuilds the pool, charges
  the in-flight cells one attempt each, and carries on.  One dying
  cell cannot take the campaign down.
* **Resume** — cells whose content hash already has a result in the
  store are skipped, so a killed campaign re-run with ``resume=True``
  continues exactly where it stopped and converges on the same store
  an uninterrupted run produces.

Only the driver writes the store (workers return payloads over the
future), so there is a single writer and no cross-process locking.
"""

from __future__ import annotations

import multiprocessing
import signal
import sys
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.campaign.cells import execute_cell
from repro.campaign.spec import CampaignSpec, CellSpec
from repro.campaign.store import CellRecord, ResultStore, current_git_commit
from repro.errors import CampaignError, CellTimeoutError

__all__ = ["CellOutcome", "CampaignOutcome", "run_campaign"]

#: extra seconds past ``2 x timeout`` before the driver-side backstop
#: declares a worker hung (its in-worker alarm should fire long before).
_BACKSTOP_GRACE = 10.0

#: driver poll interval while waiting on in-flight futures.
_POLL_S = 0.05


@dataclass
class CellOutcome:
    """One cell's final disposition within a campaign run."""

    cell: CellSpec
    cell_id: str
    status: str  #: ``ok`` or ``failed``
    attempts: int
    elapsed_s: float
    payload: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    #: True when the result was found in the store (resume skip).
    resumed: bool = False

    @property
    def payload_ok(self) -> bool:
        """Executed cleanly *and* the payload reports no finding."""
        if self.status != "ok":
            return False
        if isinstance(self.payload, dict) and self.payload.get("ok") is False:
            return False
        return True


@dataclass
class CampaignOutcome:
    """Aggregate result of one ``run_campaign`` invocation."""

    spec: CampaignSpec
    store_root: str
    workers: int
    #: outcomes in spec order — only cells that have a result by now.
    outcomes: List[CellOutcome] = field(default_factory=list)
    #: cell ids still without a result (budget exhausted / simulated kill).
    remaining: List[str] = field(default_factory=list)
    #: total driver wall-clock for this invocation.
    elapsed_s: float = 0.0

    @property
    def failed(self) -> List[CellOutcome]:
        """Cells recorded ``failed`` after exhausting their attempts."""
        return [o for o in self.outcomes if o.status == "failed"]

    @property
    def findings(self) -> List[CellOutcome]:
        """Cells that executed but whose payload reports ``ok: false``."""
        return [o for o in self.outcomes if o.status == "ok" and not o.payload_ok]

    @property
    def complete(self) -> bool:
        """Every cell of the spec has a result in the store."""
        return not self.remaining

    @property
    def ok(self) -> bool:
        """Complete, nothing failed, no payload-level findings."""
        return self.complete and not self.failed and not self.findings

    def by_id(self) -> Dict[str, CellOutcome]:
        """Outcomes keyed by cell hash."""
        return {o.cell_id: o for o in self.outcomes}


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

_Task = Tuple[str, Dict[str, object], Dict[str, object], float, int]


def _raise_cell_timeout(signum, frame):  # pragma: no cover - signal path
    """SIGALRM handler: abort the running cell."""
    raise CellTimeoutError("cell exceeded its wall-clock budget")


def _execute_envelope(task: _Task) -> Dict[str, object]:
    """Run one cell attempt under its watchdog; never raises.

    Returns an envelope ``{"status", "elapsed_s", "payload"|"error"}``
    with status ``ok``, ``timeout``, ``error``, or ``spec_error``
    (malformed cell — failed immediately, never retried).  Exceptions
    are flattened to ``"TypeName: message"`` so result files stay
    deterministic across identical runs.
    """
    kind, params, options, timeout_s, attempt = task
    use_alarm = (
        timeout_s > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    previous_handler = None
    started = time.perf_counter()
    try:
        if use_alarm:
            previous_handler = signal.signal(signal.SIGALRM, _raise_cell_timeout)
            signal.setitimer(signal.ITIMER_REAL, timeout_s)
        payload = execute_cell(kind, params, options, attempt=attempt)
        return {
            "status": "ok",
            "payload": payload,
            "elapsed_s": time.perf_counter() - started,
        }
    except CellTimeoutError:
        return {
            "status": "timeout",
            "error": f"cell exceeded its {timeout_s:g}s timeout",
            "elapsed_s": time.perf_counter() - started,
        }
    except CampaignError as exc:
        return {
            "status": "spec_error",
            "error": str(exc),
            "elapsed_s": time.perf_counter() - started,
        }
    except Exception as exc:
        return {
            "status": "error",
            "error": f"{type(exc).__name__}: {exc}",
            "elapsed_s": time.perf_counter() - started,
        }
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous_handler)


def _init_worker(extra_paths: Sequence[str]) -> None:
    """Pool initializer: make caller-side import roots visible.

    Under a ``spawn`` start method the worker re-imports from scratch;
    bench cells then need the repository root on ``sys.path`` to reach
    the ``benchmarks`` package.  Harmless no-op under ``fork``.
    """
    for path in reversed(list(extra_paths or ())):
        if path not in sys.path:
            sys.path.insert(0, path)


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------

@dataclass
class _Pending:
    """A cell attempt waiting to be dispatched (or in backoff)."""

    cell: CellSpec
    cell_id: str
    attempt: int
    ready_at: float = 0.0
    submitted_at: float = 0.0
    #: how many pool breakages this cell was merely *in flight* for.
    #: Cells with ``crashes > 0`` are quarantined: dispatched one at a
    #: time so the actual pool-killer crashes alone and only it is
    #: charged an attempt — an innocent neighbour never burns its
    #: retry budget on someone else's ``os._exit``.
    crashes: int = 0


class _Driver:
    """State machine shared by the inline and pooled execution paths."""

    def __init__(
        self,
        spec: CampaignSpec,
        store: ResultStore,
        budget: int,
        progress: Optional[Callable[[CellOutcome], None]],
    ) -> None:
        self.spec = spec
        self.store = store
        self.budget = budget
        self.progress = progress
        self.outcomes: Dict[str, CellOutcome] = {}
        self.recorded = 0

    def journal_attempt(self, p: _Pending, env: Dict[str, object]) -> None:
        """Log one finished attempt (status + timing) to the journal."""
        self.store.journal(
            "attempt_done",
            cell_id=p.cell_id,
            attempt=p.attempt,
            status=env["status"],
            elapsed_s=round(float(env.get("elapsed_s", 0.0)), 6),  # type: ignore[arg-type]
            error=env.get("error"),
        )

    def record(self, p: _Pending, env: Dict[str, object]) -> None:
        """Persist a final (ok/failed) result for a cell."""
        ok = env["status"] == "ok"
        record = CellRecord(
            cell_id=p.cell_id,
            kind=p.cell.kind,
            params=dict(p.cell.params),
            status="ok" if ok else "failed",
            attempts=p.attempt,
            payload=env.get("payload") if ok else None,  # type: ignore[arg-type]
            error=None if ok else str(env.get("error")),
        )
        self.store.write_result(record)
        self.store.journal(
            "result",
            cell_id=p.cell_id,
            status=record.status,
            attempts=p.attempt,
        )
        outcome = CellOutcome(
            cell=p.cell,
            cell_id=p.cell_id,
            status=record.status,
            attempts=p.attempt,
            elapsed_s=float(env.get("elapsed_s", 0.0)),  # type: ignore[arg-type]
            payload=record.payload,
            error=record.error,
        )
        self.outcomes[p.cell_id] = outcome
        self.recorded += 1
        if self.progress is not None:
            self.progress(outcome)

    def settle(self, p: _Pending, env: Dict[str, object]) -> Optional[_Pending]:
        """Route one attempt result: record it, or return the retry.

        ``ok`` and ``spec_error`` settle immediately; other failures
        retry with exponential backoff until the attempt budget is
        spent, then settle as ``failed``.
        """
        self.journal_attempt(p, env)
        if env["status"] == "ok" or env["status"] == "spec_error":
            self.record(p, env)
            return None
        if p.attempt >= self.spec.cell_attempts(p.cell):
            self.record(p, env)
            return None
        delay = self.spec.backoff_s * (2 ** (p.attempt - 1))
        return _Pending(
            cell=p.cell,
            cell_id=p.cell_id,
            attempt=p.attempt + 1,
            ready_at=time.monotonic() + delay,
        )


def _run_inline(driver: _Driver, todo: List[CellSpec]) -> None:
    """Execute cells one at a time in the driver process.

    Same semantics as the pool (timeout via SIGALRM where available,
    retry with backoff), minus crash isolation — a cell that kills the
    process kills the driver, exactly like a SIGKILLed campaign.
    """
    for cell in todo:
        if driver.recorded >= driver.budget:
            return
        p: Optional[_Pending] = _Pending(cell, cell.cell_id(), attempt=1)
        while p is not None:
            wait_s = p.ready_at - time.monotonic()
            if wait_s > 0:
                time.sleep(wait_s)
            driver.store.journal(
                "attempt_start", cell_id=p.cell_id, attempt=p.attempt
            )
            env = _execute_envelope(
                (
                    cell.kind,
                    dict(cell.params),
                    dict(cell.options),
                    driver.spec.cell_timeout(cell),
                    p.attempt,
                )
            )
            p = driver.settle(p, env)


def _mp_context():
    """Prefer ``fork`` (inherits sys.path and imports) when available."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return None


def _kill_workers(executor: ProcessPoolExecutor) -> None:
    """Best-effort hard kill of a pool's worker processes."""
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except Exception:  # pragma: no cover - already dead
            pass


def _run_pool(
    driver: _Driver,
    todo: List[CellSpec],
    workers: int,
    extra_paths: Sequence[str],
) -> None:
    """Fan cells out over a process pool; see the module docstring."""
    context = _mp_context()

    def make_executor() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_init_worker,
            initargs=(list(extra_paths),),
        )

    executor = make_executor()
    pending: List[_Pending] = [
        _Pending(cell, cell.cell_id(), attempt=1) for cell in todo
    ]
    in_flight: Dict[Future, _Pending] = {}

    def drain_broken(reason: str, overdue: Optional[set] = None) -> None:
        """Tear the pool down and reroute every in-flight attempt.

        Identified culprits — the single in-flight cell of a solo
        break, or the cells the hung-worker backstop flagged — are
        charged a failed attempt.  Unattributable bystanders requeue
        *uncharged* but quarantined (``crashes + 1``): they will be
        dispatched alone, so a repeat offender crashes with no one
        else in flight and gets charged next time.
        """
        nonlocal executor
        executor.shutdown(wait=False, cancel_futures=True)
        _kill_workers(executor)
        solo = len(in_flight) == 1
        now = time.monotonic()
        for future, p in list(in_flight.items()):
            in_flight.pop(future)
            hung = bool(overdue and p.cell_id in overdue)
            if hung or solo:
                env = {
                    "status": "timeout" if hung else "worker_death",
                    "error": reason,
                    "elapsed_s": now - p.submitted_at,
                }
                retry = driver.settle(p, env)
                if retry is not None:
                    retry.crashes = p.crashes + 1
                    pending.append(retry)
            else:
                driver.store.journal(
                    "attempt_abandoned",
                    cell_id=p.cell_id,
                    attempt=p.attempt,
                    reason=reason,
                    elapsed_s=round(now - p.submitted_at, 6),
                )
                p.crashes += 1
                p.ready_at = now + driver.spec.backoff_s
                pending.append(p)
        executor = make_executor()

    try:
        while driver.recorded < driver.budget and (pending or in_flight):
            now = time.monotonic()
            # Dispatch every ready attempt into free-ish slots.  While
            # any quarantined cell (a pool-break bystander or culprit)
            # is pending, run quarantine one-at-a-time instead so the
            # next crash is attributable.
            if any(p.crashes > 0 for p in pending):
                ready = (
                    [p for p in pending if p.crashes > 0 and p.ready_at <= now][:1]
                    if not in_flight
                    else []
                )
            else:
                ready = [p for p in pending if p.ready_at <= now]
            while ready and len(in_flight) < workers * 2:
                p = ready.pop(0)
                pending.remove(p)
                driver.store.journal(
                    "attempt_start", cell_id=p.cell_id, attempt=p.attempt
                )
                p.submitted_at = now
                task: _Task = (
                    p.cell.kind,
                    dict(p.cell.params),
                    dict(p.cell.options),
                    driver.spec.cell_timeout(p.cell),
                    p.attempt,
                )
                try:
                    in_flight[executor.submit(_execute_envelope, task)] = p
                except BrokenProcessPool:
                    # The pool died since the last poll; put the cell
                    # back (no attempt charged — it never ran) and let
                    # the drain below charge the in-flight ones.
                    pending.append(p)
                    driver.store.journal("pool_rebuild", reason="worker death")
                    drain_broken("worker process died abruptly")
                    break
            if not in_flight:
                # Everything is in backoff; sleep toward the next retry.
                next_ready = min(p.ready_at for p in pending)
                time.sleep(min(max(next_ready - now, 0.0), 0.2))
                continue
            done, _ = wait(
                list(in_flight), timeout=_POLL_S, return_when=FIRST_COMPLETED
            )
            broken = False
            for future in done:
                if driver.recorded >= driver.budget:
                    break
                p = in_flight.pop(future)
                try:
                    env = future.result()
                except BrokenProcessPool:
                    broken = True
                    env = {
                        "status": "worker_death",
                        "error": "worker process died abruptly",
                        "elapsed_s": time.monotonic() - p.submitted_at,
                    }
                except Exception as exc:  # pragma: no cover - pickling etc.
                    env = {
                        "status": "error",
                        "error": f"{type(exc).__name__}: {exc}",
                        "elapsed_s": time.monotonic() - p.submitted_at,
                    }
                retry = driver.settle(p, env)
                if retry is not None:
                    pending.append(retry)
            if driver.recorded >= driver.budget:
                break
            if broken:
                driver.store.journal("pool_rebuild", reason="worker death")
                drain_broken("worker process died abruptly")
                continue
            # Backstop: a worker whose in-process alarm never fired.
            overdue = {
                p.cell_id
                for p in in_flight.values()
                if now - p.submitted_at
                > 2 * driver.spec.cell_timeout(p.cell) + _BACKSTOP_GRACE
            }
            if overdue:
                driver.store.journal(
                    "pool_rebuild", reason="hung worker", cells=sorted(overdue)
                )
                drain_broken("worker hung past the timeout backstop", overdue)
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
        _kill_workers(executor)


def run_campaign(
    spec: CampaignSpec,
    store_dir: str,
    *,
    workers: int = 0,
    resume: bool = False,
    max_cells: Optional[int] = None,
    progress: Optional[Callable[[CellOutcome], None]] = None,
    git_commit: Optional[str] = None,
    extra_paths: Sequence[str] = (),
) -> CampaignOutcome:
    """Run (or resume) a campaign into a result store.

    Args:
        spec: the expanded campaign.
        store_dir: result store directory (created if missing).
        workers: process-pool width; ``0`` executes inline.
        resume: skip cells that already have a result in the store
            (required when the store is non-empty).
        max_cells: record at most this many *new* results, then stop —
            a deterministic "killed campaign" for tests and smoke jobs.
        progress: callback invoked with each recorded
            :class:`CellOutcome`.
        git_commit: commit recorded in ``campaign.json`` (auto-detected
            when omitted).
        extra_paths: import roots for ``spawn``-context workers.

    Returns the :class:`CampaignOutcome`; inspect ``.ok`` /
    ``.remaining`` / ``.failed`` for disposition.
    """
    started = time.perf_counter()
    store = ResultStore(store_dir)
    store.initialize(
        spec,
        resume=resume,
        git_commit=git_commit if git_commit is not None else current_git_commit(),
    )

    existing = store.completed_ids()
    todo: List[CellSpec] = []
    resumed: Dict[str, CellOutcome] = {}
    for cell in spec.cells:
        cid = cell.cell_id()
        if cid in existing:
            record = store.read_result(cid)
            resumed[cid] = CellOutcome(
                cell=cell,
                cell_id=cid,
                status=record.status,
                attempts=record.attempts,
                elapsed_s=0.0,
                payload=record.payload,
                error=record.error,
                resumed=True,
            )
            store.journal("resume_skip", cell_id=cid, status=record.status)
        else:
            todo.append(cell)

    budget = len(todo) if max_cells is None else max(0, min(max_cells, len(todo)))
    store.journal(
        "run_start",
        cells=len(spec.cells),
        todo=len(todo),
        budget=budget,
        workers=workers,
        resume=resume,
    )

    driver = _Driver(spec, store, budget, progress)
    driver.outcomes.update(resumed)
    driver.recorded = 0  # budget counts *new* results only
    if budget > 0:
        if workers <= 0:
            _run_inline(driver, todo)
        else:
            _run_pool(driver, todo, workers, extra_paths)

    ordered = [
        driver.outcomes[c.cell_id()]
        for c in spec.cells
        if c.cell_id() in driver.outcomes
    ]
    remaining = [
        c.cell_id() for c in spec.cells if c.cell_id() not in driver.outcomes
    ]
    outcome = CampaignOutcome(
        spec=spec,
        store_root=str(store.root),
        workers=workers,
        outcomes=ordered,
        remaining=remaining,
        elapsed_s=time.perf_counter() - started,
    )
    store.journal(
        "run_finish",
        recorded=driver.recorded,
        failed=len(outcome.failed),
        remaining=len(remaining),
        elapsed_s=round(outcome.elapsed_s, 6),
    )
    return outcome
