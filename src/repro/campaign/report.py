"""Render campaign stores: status summaries, reports, and store diffs.

Everything here is read-only over one or two
:class:`~repro.campaign.store.ResultStore` directories.  ``status``
and ``report`` query the store's derived SQLite index; ``diff``
compares two stores of (usually) the same campaign — the tool for
bench-trajectory comparisons across commits or machines, and the CI
check that a resumed campaign converged on the uninterrupted store.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.campaign.store import CellRecord, ResultStore

__all__ = [
    "render_status",
    "render_report",
    "render_diff",
    "numeric_drift",
]

#: exit codes shared by the CLI: clean, failures/findings, incomplete.
EXIT_OK = 0
EXIT_FAILURES = 1
EXIT_INCOMPLETE = 3


def _table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("-" * len(lines[0]))
    for row in cells:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def _label(record: CellRecord) -> str:
    parts = [record.kind]
    for key in ("protocol", "scheduler", "module", "cell", "behavior",
                "seed", "repeat"):
        if key in record.params:
            parts.append(f"{key}={record.params[key]}")
    return " ".join(parts)


def render_status(store: ResultStore) -> Tuple[str, int]:
    """One-screen campaign status; returns ``(text, exit_code)``.

    Exit code 0 means complete and clean; 1 means failed cells or
    payload-level findings; 3 means incomplete (killed or still
    running) with no failures so far.
    """
    header = store.read_header()
    expected = {str(c["cell_id"]) for c in store.expected_cells()}
    records = {r.cell_id: r for r in store.iter_results()}
    failed = [r for r in records.values() if r.status == "failed"]
    findings = [
        r for r in records.values() if r.status == "ok" and not r.payload_ok
    ]
    remaining = sorted(expected - set(records))
    lines = [
        f"campaign {header.get('name')!r}  (spec {header.get('spec_hash')}, "
        f"commit {str(header.get('git_commit'))[:12]})",
        f"store    {store.root}",
        f"cells    {len(records)}/{len(expected)} done, "
        f"{len(failed)} failed, {len(findings)} findings, "
        f"{len(remaining)} remaining",
    ]
    for record in sorted(failed, key=lambda r: r.cell_id):
        lines.append(f"  FAILED  {_label(record)}: {record.error}")
    for record in sorted(findings, key=lambda r: r.cell_id):
        lines.append(f"  FINDING {_label(record)} reports ok=false")
    if failed or findings:
        return "\n".join(lines), EXIT_FAILURES
    if remaining:
        lines.append("  (incomplete — resume with `run --resume`)")
        return "\n".join(lines), EXIT_INCOMPLETE
    return "\n".join(lines), EXIT_OK


def render_report(store: ResultStore, slowest: int = 10) -> str:
    """A full report: per-kind rollup, slowest cells, failure detail."""
    header = store.read_header()
    status_text, _ = render_status(store)
    rollup = store.query_index(
        """
        SELECT kind, COUNT(*),
               SUM(CASE WHEN status = 'ok' THEN 1 ELSE 0 END),
               SUM(CASE WHEN status = 'failed' THEN 1 ELSE 0 END),
               SUM(CASE WHEN payload_ok = 0 AND status = 'ok'
                   THEN 1 ELSE 0 END),
               SUM(attempts), SUM(COALESCE(elapsed_s, 0.0))
        FROM cells GROUP BY kind ORDER BY kind
        """
    )
    sections = [status_text, ""]
    if rollup:
        sections.append(
            _table(
                ["kind", "cells", "ok", "failed", "findings",
                 "attempts", "wall s"],
                [
                    (k, n, ok, bad, find, att, f"{wall:.2f}")
                    for k, n, ok, bad, find, att, wall in rollup
                ],
            )
        )
    slow = store.query_index(
        """
        SELECT cell_id, kind, params, elapsed_s FROM cells
        WHERE elapsed_s IS NOT NULL ORDER BY elapsed_s DESC LIMIT ?
        """,
        slowest,
    )
    if slow:
        sections.append("")
        sections.append("slowest cells:")
        for cell_id, kind, params_json, elapsed in slow:
            params = json.loads(params_json)
            label = " ".join(
                [kind] + [f"{k}={params[k]}" for k in sorted(params)][:4]
            )
            sections.append(f"  {elapsed:8.3f}s  {cell_id}  {label}")
    defaults = header.get("defaults", {})
    sections.append("")
    sections.append(
        f"defaults: timeout {defaults.get('timeout_s')}s, "
        f"max_attempts {defaults.get('max_attempts')}, "
        f"backoff {defaults.get('backoff_s')}s"
    )
    return "\n".join(sections)


# ----------------------------------------------------------------------
# Store diff
# ----------------------------------------------------------------------

def _numeric_leaves(
    value: object, prefix: str = ""
) -> Iterable[Tuple[str, float]]:
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        yield prefix or ".", float(value)
    elif isinstance(value, dict):
        for key in sorted(value):
            yield from _numeric_leaves(
                value[key], f"{prefix}.{key}" if prefix else str(key)
            )
    elif isinstance(value, list):
        for i, item in enumerate(value):
            yield from _numeric_leaves(item, f"{prefix}[{i}]")


def numeric_drift(
    a: Optional[Dict[str, object]],
    b: Optional[Dict[str, object]],
    threshold: float = 0.2,
) -> List[Tuple[str, float, float, float]]:
    """Numeric payload leaves whose relative change exceeds ``threshold``.

    Returns ``(path, value_a, value_b, relative_change)`` rows, largest
    drift first — the bench-trajectory comparison primitive.
    """
    left = dict(_numeric_leaves(a or {}))
    right = dict(_numeric_leaves(b or {}))
    rows: List[Tuple[str, float, float, float]] = []
    for path in sorted(set(left) & set(right)):
        va, vb = left[path], right[path]
        scale = max(abs(va), abs(vb))
        if scale == 0.0:
            continue
        change = abs(va - vb) / scale
        if change > threshold:
            rows.append((path, va, vb, change))
    rows.sort(key=lambda r: -r[3])
    return rows


def render_diff(
    store_a: ResultStore,
    store_b: ResultStore,
    threshold: float = 0.2,
    max_rows: int = 40,
) -> Tuple[str, int]:
    """Compare two stores; returns ``(text, exit_code)``.

    Exit code 1 when the stores *disagree structurally* — cells present
    on one side only, or the same cell with a different status/payload
    identity.  Pure numeric drift (timings, throughput) is reported but
    exits 0: trajectories are expected to move between machines.
    """
    records_a = {r.cell_id: r for r in store_a.iter_results()}
    records_b = {r.cell_id: r for r in store_b.iter_results()}
    only_a = sorted(set(records_a) - set(records_b))
    only_b = sorted(set(records_b) - set(records_a))
    lines = [
        f"A: {store_a.root}  ({len(records_a)} results)",
        f"B: {store_b.root}  ({len(records_b)} results)",
    ]
    structural = False
    for cid in only_a:
        structural = True
        lines.append(f"  only in A: {cid}  {_label(records_a[cid])}")
    for cid in only_b:
        structural = True
        lines.append(f"  only in B: {cid}  {_label(records_b[cid])}")
    drift_count = 0
    for cid in sorted(set(records_a) & set(records_b)):
        ra, rb = records_a[cid], records_b[cid]
        if ra.status != rb.status:
            structural = True
            lines.append(
                f"  status changed: {cid}  {_label(ra)}: "
                f"{ra.status} -> {rb.status}"
            )
            continue
        if ra.payload == rb.payload:
            continue
        rows = numeric_drift(ra.payload, rb.payload, threshold)
        if not rows:
            # payloads differ in non-numeric or sub-threshold ways
            structural = True
            lines.append(f"  payload changed: {cid}  {_label(ra)}")
            continue
        for path, va, vb, change in rows:
            if drift_count >= max_rows:
                break
            drift_count += 1
            lines.append(
                f"  drift {change:7.1%}  {cid}  {_label(ra)}  "
                f"{path}: {va:g} -> {vb:g}"
            )
    if structural:
        lines.append("stores disagree structurally")
        return "\n".join(lines), EXIT_FAILURES
    if drift_count:
        lines.append(f"{drift_count} numeric drift rows (threshold {threshold:g})")
    else:
        lines.append("stores agree")
    return "\n".join(lines), EXIT_OK
