"""``repro.campaign`` — sharded, resumable experiment campaigns.

The job-execution layer of the reproduction: a *campaign* is a
declarative spec (protocols, schedulers, seeds, repeats, per-cell
timeout) expanded into a deterministic set of content-hashed cells,
executed by a fault-tolerant multi-process worker pool, with every
result landing in a persistent, content-addressed store.  A killed
campaign re-run with ``--resume`` continues exactly where it stopped.

The pieces:

* :mod:`repro.campaign.spec` — specs, generators, the stable cell hash;
* :mod:`repro.campaign.cells` — the executors (verify matrix cells,
  benchmark ``cells()``/``run_cell()`` modules, runner self-tests);
* :mod:`repro.campaign.store` — the result store (atomic per-cell JSON,
  JSONL journal, derived SQLite index);
* :mod:`repro.campaign.runner` — the worker pool: per-cell SIGALRM
  timeouts, bounded retry with backoff, crash isolation, resume;
* :mod:`repro.campaign.report` — status / report / diff rendering;
* ``python -m repro.campaign`` — the CLI (``run``, ``status``,
  ``report``, ``diff``).

See ``docs/CAMPAIGNS.md`` for the spec format, the store layout, and
the resume/retry semantics.
"""

from repro.campaign.runner import CampaignOutcome, CellOutcome, run_campaign
from repro.campaign.spec import (
    CampaignSpec,
    CellSpec,
    bench_cells,
    load_spec,
    parse_spec,
    probe_cells,
    verify_cells,
)
from repro.campaign.store import CellRecord, ResultStore

__all__ = [
    "CampaignOutcome",
    "CampaignSpec",
    "CellOutcome",
    "CellRecord",
    "CellSpec",
    "ResultStore",
    "bench_cells",
    "load_spec",
    "parse_spec",
    "probe_cells",
    "run_campaign",
    "verify_cells",
]
