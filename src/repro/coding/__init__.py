"""Message coding layers.

The movement protocols transport raw bits (or small symbol alphabets);
this subpackage turns application messages into those bits and back:

* :mod:`repro.coding.bitstream` — length-prefixed byte framing and
  incremental frame decoding.
* :mod:`repro.coding.symbols` — the Section 3.1 remark: slicing the
  ``2*sigma`` travel span into ``B`` displacement levels so that one
  excursion carries ``log2(B)`` bits.
* :mod:`repro.coding.logk_addressing` — the Section 5 extension:
  replacing the ``2n``-slice addressing by ``2k+1`` slices plus a
  ``ceil(log_k n)``-digit address block.
"""

from repro.coding.bitstream import (
    FrameDecoder,
    bits_to_bytes,
    bytes_to_bits,
    decode_message,
    encode_message,
)
from repro.coding.checksum import CheckedFrameDecoder, crc8, encode_checked
from repro.coding.symbols import SymbolCoder
from repro.coding.logk_addressing import (
    address_digit_count,
    address_digits,
    digits_to_index,
    slowdown_factor,
    steps_per_message_full_slicing,
    steps_per_message_logk,
    theoretical_slowdown_logslices,
)

__all__ = [
    "encode_message",
    "decode_message",
    "bytes_to_bits",
    "bits_to_bytes",
    "FrameDecoder",
    "CheckedFrameDecoder",
    "crc8",
    "encode_checked",
    "SymbolCoder",
    "address_digit_count",
    "address_digits",
    "digits_to_index",
    "slowdown_factor",
    "steps_per_message_full_slicing",
    "steps_per_message_logk",
    "theoretical_slowdown_logslices",
]
