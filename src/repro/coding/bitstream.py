"""Bit-level message framing.

The paper's protocols deliver an ordered stream of bits from a sender
to a receiver; everything above that — where a message starts and ends,
what the bits mean — is framing.  We use the simplest self-delimiting
frame: a 16-bit big-endian byte count followed by the payload bytes,
each transmitted most-significant-bit first.

The :class:`FrameDecoder` consumes a bit stream incrementally and
yields payloads as frames complete, which is exactly what a robot does
while it watches another robot wiggle.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

from repro.errors import CodingError

__all__ = [
    "bytes_to_bits",
    "bits_to_bytes",
    "encode_message",
    "decode_message",
    "FrameDecoder",
]

_LENGTH_BITS = 16
MAX_PAYLOAD_BYTES = (1 << _LENGTH_BITS) - 1


def bytes_to_bits(data: bytes) -> List[int]:
    """Expand bytes into bits, most significant bit first."""
    bits: List[int] = []
    for byte in data:
        for shift in range(7, -1, -1):
            bits.append((byte >> shift) & 1)
    return bits


def bits_to_bytes(bits: Iterable[int]) -> bytes:
    """Pack a bit sequence (MSB first) into bytes.

    Raises:
        CodingError: when the bit count is not a multiple of 8 or a
            value is not 0/1.
    """
    bit_list = list(bits)
    if len(bit_list) % 8 != 0:
        raise CodingError(f"bit count {len(bit_list)} is not a multiple of 8")
    out = bytearray()
    for i in range(0, len(bit_list), 8):
        byte = 0
        for bit in bit_list[i : i + 8]:
            if bit not in (0, 1):
                raise CodingError(f"invalid bit value {bit!r}")
            byte = (byte << 1) | bit
        out.append(byte)
    return bytes(out)


def _as_bytes(message: Union[str, bytes]) -> bytes:
    return message.encode("utf-8") if isinstance(message, str) else bytes(message)


def encode_message(message: Union[str, bytes]) -> List[int]:
    """Frame a message as bits: 16-bit length prefix + payload.

    Strings are encoded as UTF-8.

    Raises:
        CodingError: for payloads longer than 65535 bytes.
    """
    payload = _as_bytes(message)
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise CodingError(
            f"payload of {len(payload)} bytes exceeds the {MAX_PAYLOAD_BYTES}-byte frame limit"
        )
    header = len(payload).to_bytes(2, "big")
    return bytes_to_bits(header + payload)


def decode_message(bits: Iterable[int]) -> bytes:
    """Decode exactly one complete frame; rejects trailing bits.

    Raises:
        CodingError: on truncated or oversized input.
    """
    decoder = FrameDecoder()
    frames: List[bytes] = []
    for bit in bits:
        frame = decoder.push(bit)
        if frame is not None:
            frames.append(frame)
    if len(frames) != 1 or not decoder.is_idle:
        raise CodingError(
            f"expected exactly one complete frame, got {len(frames)} "
            f"complete and {'a partial' if not decoder.is_idle else 'no'} remainder"
        )
    return frames[0]


class FrameDecoder:
    """Incremental frame decoder for a single bit stream.

    Push bits one at a time; :meth:`push` returns the payload bytes
    whenever a frame completes (and None otherwise).  Handles
    back-to-back frames on the same stream.
    """

    def __init__(self) -> None:
        self._bits: List[int] = []
        self._expected_payload: Optional[int] = None

    @property
    def is_idle(self) -> bool:
        """True when no partial frame is buffered."""
        return not self._bits

    @property
    def buffered_bits(self) -> int:
        """Number of bits of the in-progress frame."""
        return len(self._bits)

    def push(self, bit: int) -> Optional[bytes]:
        """Consume one bit; return a completed payload or None."""
        if bit not in (0, 1):
            raise CodingError(f"invalid bit value {bit!r}")
        self._bits.append(bit)

        if self._expected_payload is None and len(self._bits) == _LENGTH_BITS:
            length = int("".join(map(str, self._bits)), 2)
            self._expected_payload = length

        if self._expected_payload is not None:
            total = _LENGTH_BITS + 8 * self._expected_payload
            if len(self._bits) == total:
                payload = bits_to_bytes(self._bits[_LENGTH_BITS:])
                self._bits = []
                self._expected_payload = None
                return payload
        return None

    def push_all(self, bits: Iterable[int]) -> List[bytes]:
        """Consume many bits; return all payloads completed by them."""
        frames: List[bytes] = []
        for bit in bits:
            frame = self.push(bit)
            if frame is not None:
                frames.append(frame)
        return frames
