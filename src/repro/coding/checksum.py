"""Frame integrity for faulty regimes.

Transient faults (Section 5 stabilization) and mid-frame protocol
restarts can garble movement-decoded bits.  The plain frame decoder
would then deliver corrupt payloads or desynchronise.  This module adds
an integrity layer:

* :func:`crc8` — the CRC-8/ATM polynomial ``x^8 + x^2 + x + 1``
  (0x07), computed bitwise from scratch;
* :func:`encode_checked` — a frame whose payload carries a trailing
  CRC byte;
* :class:`CheckedFrameDecoder` — decodes frames, verifies the CRC,
  delivers only intact payloads and counts the corrupt ones.

The checksum detects all single- and double-bit errors within a frame
and any burst up to 8 bits — ample for the "a transient fault flipped
part of one excursion sequence" failure mode.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.coding.bitstream import FrameDecoder, encode_message

__all__ = ["crc8", "encode_checked", "CheckedFrameDecoder"]

_POLY = 0x07


def crc8(data: bytes) -> int:
    """CRC-8 (poly 0x07, init 0, no reflection, no final xor)."""
    crc = 0
    for byte in data:
        crc ^= byte
        for _ in range(8):
            if crc & 0x80:
                crc = ((crc << 1) ^ _POLY) & 0xFF
            else:
                crc = (crc << 1) & 0xFF
    return crc


def encode_checked(message) -> List[int]:
    """Frame a message with a trailing CRC-8 byte.

    Accepts str (UTF-8 encoded) or bytes, like
    :func:`repro.coding.bitstream.encode_message`.
    """
    payload = message.encode("utf-8") if isinstance(message, str) else bytes(message)
    return encode_message(payload + bytes([crc8(payload)]))


class CheckedFrameDecoder:
    """Incremental decoder that drops corrupt frames.

    Push bits; :meth:`push` returns a *verified* payload when an intact
    frame completes, None otherwise.  Corrupt frames (bad CRC, or an
    empty frame that cannot carry one) are counted, not delivered.
    """

    def __init__(self) -> None:
        self._inner = FrameDecoder()
        self._corrupt = 0

    @property
    def corrupt_frames(self) -> int:
        """Frames discarded because their checksum failed."""
        return self._corrupt

    @property
    def is_idle(self) -> bool:
        """True when no partial frame is buffered."""
        return self._inner.is_idle

    def push(self, bit: int) -> Optional[bytes]:
        """Consume one bit; return a verified payload or None."""
        frame = self._inner.push(bit)
        if frame is None:
            return None
        if len(frame) < 1:
            self._corrupt += 1
            return None
        payload, check = frame[:-1], frame[-1]
        if crc8(payload) != check:
            self._corrupt += 1
            return None
        return payload

    def push_all(self, bits: Iterable[int]) -> List[bytes]:
        """Consume many bits; return the verified payloads."""
        out: List[bytes] = []
        for bit in bits:
            payload = self.push(bit)
            if payload is not None:
                out.append(payload)
        return out
