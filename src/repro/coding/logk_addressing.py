"""Few-slice addressing (Section 5, "Silent, Finite Movements ...").

With bounded angular resolution a robot may be unable to distinguish
all ``2n`` slice directions.  The paper's workaround:

    "This case could be solved by avoiding the use of 2n slices of
    granular by transmitting the index of the robot to whom the message
    intended following the message itself.  For this we would need only
    k + 1, 1 <= k < 2n segments (or 2k + 1 slices).  In particular, we
    would use one segment for message transmission [...]; using the
    other k segments the robot who wants to transmit a message allows
    to transmit the index of the robot to whom the message is
    designated.  Definitely, such index can be represented by
    log n / log k = log_k n symbols.  [...] the number of steps required
    in this method to identify the designated robot is log_k n.  For
    example, by taking O(log n) slices instead of O(n), the number of
    steps to transmit a message would increase by O(log n / log log n)."

This module provides the base-``k`` address codec and the closed-form
step models the trade-off benchmark compares against simulation.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.errors import CodingError

__all__ = [
    "address_digit_count",
    "address_digits",
    "digits_to_index",
    "steps_per_message_full_slicing",
    "steps_per_message_logk",
    "slowdown_factor",
]


def address_digit_count(n: int, k: int) -> int:
    """``ceil(log_k n)`` — digits needed to address one of ``n`` robots.

    Args:
        n: number of robots, >= 2.
        k: digit base (number of index segments), >= 2.
    """
    _check_nk(n, k)
    digits = 1
    capacity = k
    while capacity < n:
        capacity *= k
        digits += 1
    return digits


def address_digits(index: int, n: int, k: int) -> List[int]:
    """The base-``k`` digits of a robot index, most significant first.

    Always exactly :func:`address_digit_count` digits (zero-padded), so
    the receiver knows when an address block is complete.
    """
    _check_nk(n, k)
    if not (0 <= index < n):
        raise CodingError(f"index {index} out of range for {n} robots")
    width = address_digit_count(n, k)
    digits = [0] * width
    value = index
    for position in range(width - 1, -1, -1):
        digits[position] = value % k
        value //= k
    return digits


def digits_to_index(digits: Sequence[int], n: int, k: int) -> int:
    """Reassemble a robot index from its base-``k`` digits.

    Raises:
        CodingError: on a wrong digit count, out-of-range digit, or a
            value that does not name any robot.
    """
    _check_nk(n, k)
    width = address_digit_count(n, k)
    if len(digits) != width:
        raise CodingError(f"expected {width} digits for n={n}, k={k}, got {len(digits)}")
    value = 0
    for digit in digits:
        if not (0 <= digit < k):
            raise CodingError(f"digit {digit} out of range for base {k}")
        value = value * k + digit
    if value >= n:
        raise CodingError(f"decoded index {value} does not name any of {n} robots")
    return value


def steps_per_message_full_slicing(payload_bits: int) -> int:
    """Instants to send a message with the ``2n``-slice scheme of §3.2.

    Each bit is one excursion: one instant out, one instant back.
    Addressing is free — it is carried by the diameter choice.
    """
    if payload_bits < 0:
        raise CodingError(f"payload_bits must be >= 0, got {payload_bits}")
    return 2 * payload_bits


def steps_per_message_logk(payload_bits: int, n: int, k: int) -> int:
    """Instants to send a message with the ``2k+1``-slice scheme of §5.

    The payload travels on the single transmission segment (2 instants
    per bit) and the address costs one excursion per base-``k`` digit.
    """
    if payload_bits < 0:
        raise CodingError(f"payload_bits must be >= 0, got {payload_bits}")
    return 2 * payload_bits + 2 * address_digit_count(n, k)


def slowdown_factor(payload_bits: int, n: int, k: int) -> float:
    """Step ratio of the §5 scheme over the full-slicing scheme.

    For ``k = O(log n)`` and single-bit messages this grows like
    ``log n / log log n`` — the paper's headline figure for the
    discrete-resolution extension.
    """
    base = steps_per_message_full_slicing(payload_bits)
    if base == 0:
        raise CodingError("slowdown undefined for empty messages")
    return steps_per_message_logk(payload_bits, n, k) / base


def theoretical_slowdown_logslices(n: int) -> float:
    """The paper's asymptotic claim instantiated: ``log n / log log n``.

    Defined for ``n >= 4`` (needs ``log log n > 0``).
    """
    if n < 4:
        raise CodingError(f"log n / log log n needs n >= 4, got {n}")
    return math.log(n) / math.log(math.log(n))


def _check_nk(n: int, k: int) -> None:
    if n < 2:
        raise CodingError(f"need at least 2 robots, got {n}")
    if k < 2:
        raise CodingError(f"digit base k must be >= 2, got {k}")
