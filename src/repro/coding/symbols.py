"""Multi-symbol displacement coding (Section 3.1, closing remark).

    "if each robot r knows the maximum distance sigma_r' that the other
    robot r' can cover in one step, then the protocol can easily be
    adapted to reduce the number of moves made by the robots to send
    bytes.  In that case, the total distance 2*sigma_r' [...] can be
    divided by the number of possible bytes sent by the robots.  Then,
    r' moves on its right or on its left of a distance corresponding to
    the byte sent."

A :class:`SymbolCoder` with alphabet size ``B`` maps each symbol to one
of ``B`` evenly spaced signed displacement levels spanning
``(-span, +span)`` (negative = the sender's left, positive = its
right), with no level at zero so that "no movement" still means
silence.  One excursion then carries ``log2(B)`` bits instead of one.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import CodingError

__all__ = ["SymbolCoder"]


class SymbolCoder:
    """Encode bit streams as displacement symbols and back.

    Args:
        alphabet_size: ``B`` — number of distinct displacement levels;
            must be a power of two and at least 2 so that symbols pack
            whole numbers of bits.
        span: half-width of the displacement range; levels lie strictly
            inside ``(-span, span)``.
        guard_fraction: fraction of the inter-level gap tolerated when
            decoding a noisy displacement (0.5 would make adjacent
            levels ambiguous; default 0.4 leaves a dead zone).
    """

    def __init__(self, alphabet_size: int, span: float, guard_fraction: float = 0.4) -> None:
        if alphabet_size < 2 or alphabet_size & (alphabet_size - 1) != 0:
            raise CodingError(
                f"alphabet_size must be a power of two >= 2, got {alphabet_size}"
            )
        if span <= 0.0:
            raise CodingError(f"span must be positive, got {span}")
        if not (0.0 < guard_fraction < 0.5):
            raise CodingError(f"guard_fraction must be in (0, 0.5), got {guard_fraction}")
        self.alphabet_size = alphabet_size
        self.span = span
        self.guard_fraction = guard_fraction
        self._step = 2.0 * span / alphabet_size

    @property
    def bits_per_symbol(self) -> int:
        """How many bits one displacement level carries."""
        return self.alphabet_size.bit_length() - 1

    # ------------------------------------------------------------------
    # Bit packing
    # ------------------------------------------------------------------
    def bits_to_symbols(self, bits: Sequence[int]) -> List[int]:
        """Pack bits (MSB first) into symbols, zero-padding the tail."""
        if any(b not in (0, 1) for b in bits):
            raise CodingError("bits must be 0/1")
        width = self.bits_per_symbol
        padded = list(bits)
        if len(padded) % width:
            padded.extend([0] * (width - len(padded) % width))
        symbols: List[int] = []
        for i in range(0, len(padded), width):
            value = 0
            for bit in padded[i : i + width]:
                value = (value << 1) | bit
            symbols.append(value)
        return symbols

    def symbols_to_bits(self, symbols: Sequence[int]) -> List[int]:
        """Unpack symbols back into bits (MSB first)."""
        width = self.bits_per_symbol
        bits: List[int] = []
        for symbol in symbols:
            self._check_symbol(symbol)
            for shift in range(width - 1, -1, -1):
                bits.append((symbol >> shift) & 1)
        return bits

    # ------------------------------------------------------------------
    # Displacement mapping
    # ------------------------------------------------------------------
    def displacement(self, symbol: int) -> float:
        """The signed displacement level of a symbol.

        Levels are the centres of ``B`` equal bins over
        ``[-span, span]``: ``-span + (symbol + 0.5) * 2*span/B``.
        Symbol 0 is the leftmost (most negative) level.
        """
        self._check_symbol(symbol)
        return -self.span + (symbol + 0.5) * self._step

    def decode_displacement(self, offset: float) -> int:
        """Map an observed displacement back to its symbol.

        Raises:
            CodingError: when the offset falls outside every level's
                guard band (ambiguous or out of range).
        """
        index = round((offset + self.span) / self._step - 0.5)
        if not (0 <= index < self.alphabet_size):
            raise CodingError(
                f"displacement {offset:.6g} outside the coder range ±{self.span:.6g}"
            )
        deviation = abs(offset - self.displacement(index))
        if deviation > self.guard_fraction * self._step:
            raise CodingError(
                f"displacement {offset:.6g} is {deviation:.3g} away from the nearest "
                f"level (guard {self.guard_fraction * self._step:.3g})"
            )
        return index

    def moves_per_bits(self, bit_count: int) -> int:
        """Number of excursions needed for ``bit_count`` bits.

        The quantity the Section 3.1 remark promises to shrink by a
        factor ``log2(B)`` relative to one-bit-per-excursion coding.
        """
        width = self.bits_per_symbol
        return (bit_count + width - 1) // width

    def _check_symbol(self, symbol: int) -> None:
        if not (0 <= symbol < self.alphabet_size):
            raise CodingError(
                f"symbol {symbol} out of range for alphabet of {self.alphabet_size}"
            )
