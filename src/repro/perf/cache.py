"""The configuration-epoch geometry cache.

The simulator treats derived geometry (smallest enclosing circle,
Voronoi diagram, convex hull, SEC-relative naming) as a function of the
*configuration epoch*: a counter that only advances when some robot
position actually changes (protocol movement or a ``displace()``
fault).  :class:`CachedGeometry` memoises every derived quantity per
epoch, so consumers can ask for them on every activation and pay the
geometric cost only when the configuration really moved.

The cache is semantically transparent by construction: on a lookup it
either returns the value computed for the *current* epoch's positions
or recomputes from those positions — there is no way to observe a
stale value.  With ``enabled=False`` every lookup recomputes, which is
the A/B baseline the benchmark runner uses.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional, Sequence, Tuple, TypeVar

from repro.geometry.circle import Circle
from repro.geometry.convex import ConvexPolygon, convex_hull
from repro.geometry.sec import smallest_enclosing_circle
from repro.geometry.vec import Vec2
from repro.geometry.voronoi import VoronoiCell, voronoi_diagram
from repro.perf.counters import PerfStats

__all__ = ["CachedGeometry"]

T = TypeVar("T")


class CachedGeometry:
    """Per-epoch memo of geometry derived from one configuration.

    Owners (the simulator, or standalone users) call :meth:`update`
    with the current epoch and a positions factory; the memo is cleared
    whenever the epoch advances.  All accessors then serve the derived
    quantity for the configuration the cache was last updated with.

    Args:
        stats: counter block to record hits/misses into; a private one
            is created when omitted.
        enabled: when False every accessor recomputes (baseline mode).
    """

    def __init__(self, stats: Optional[PerfStats] = None, enabled: bool = True) -> None:
        self._stats = stats if stats is not None else PerfStats()
        self._enabled = enabled
        self._epoch: Optional[int] = None
        self._positions: Tuple[Vec2, ...] = ()
        self._memo: Dict[Hashable, object] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> Optional[int]:
        """The epoch the cached values belong to (None before update)."""
        return self._epoch

    @property
    def positions(self) -> Tuple[Vec2, ...]:
        """The configuration the cached values were derived from."""
        return self._positions

    @property
    def enabled(self) -> bool:
        """Whether memoisation is active (False = recompute always)."""
        return self._enabled

    @property
    def stats(self) -> PerfStats:
        """The counter block this cache writes into."""
        return self._stats

    def update(
        self,
        epoch: int,
        positions: Callable[[], Sequence[Vec2]],
    ) -> None:
        """Synchronise with the owner's configuration.

        ``positions`` is a factory so an unchanged epoch costs one
        integer comparison — the positions are only materialised when
        the epoch advanced (at which point the memo is invalidated).
        """
        if self._epoch == epoch:
            return
        self._epoch = epoch
        self._positions = tuple(positions())
        self._memo.clear()

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    def _derive(self, key: Hashable, compute: Callable[[Tuple[Vec2, ...]], T]) -> T:
        if not self._enabled:
            return compute(self._positions)
        try:
            value = self._memo[key]
        except KeyError:
            self._stats.cache_misses += 1
            value = self._memo[key] = compute(self._positions)
            return value  # type: ignore[return-value]
        self._stats.cache_hits += 1
        return value  # type: ignore[return-value]

    def sec(self) -> Circle:
        """The smallest enclosing circle of the configuration."""
        return self._derive("sec", smallest_enclosing_circle)

    def voronoi(self) -> Dict[int, VoronoiCell]:
        """The Voronoi diagram of the configuration."""
        return self._derive("voronoi", voronoi_diagram)

    def hull(self) -> ConvexPolygon:
        """The convex hull of the configuration."""
        return self._derive("hull", convex_hull)

    def labels(self, subject: int, sweep: int = -1) -> Dict[int, int]:
        """The SEC-relative labelling of all robots for ``subject``."""
        from repro.naming.sec_naming import relative_labels

        return self._derive(
            ("labels", subject, sweep),
            lambda pts: relative_labels(pts, subject, sweep),
        )

    def horizon(self, subject: int) -> Vec2:
        """The outward horizon direction of ``subject`` (its North)."""
        from repro.naming.sec_naming import horizon_direction

        return self._derive(
            ("horizon", subject),
            lambda pts: horizon_direction(pts, subject),
        )
