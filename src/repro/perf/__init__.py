"""Hot-path performance layer.

Everything in this subpackage is *semantically transparent*: with
caching on or off, simulators produce bit-identical traces and
protocols bit-identical decodes.  The layer exists so that the
per-activation cost of the geometric substrate — smallest enclosing
circle, Voronoi diagram, relative naming, observation snapshots —
collapses to near-zero across instants where the configuration did not
change (the overwhelmingly common case under asynchronous schedules
and silent protocols).

Pieces:

* :class:`~repro.perf.counters.PerfStats` — the counter block exposed
  as ``Simulator.stats``.
* :class:`~repro.perf.cache.CachedGeometry` — per-configuration-epoch
  memo of derived geometry.
* :mod:`~repro.perf.memo` — process-wide bounded memo for pure
  geometric functions (shared SEC used by the naming layer).
* :class:`~repro.perf.spatial.SpatialHashGrid` — O(1) fixed-radius
  neighbour queries for benchmark point-set generation.
"""

from repro.perf.cache import CachedGeometry
from repro.perf.counters import PerfStats
from repro.perf.memo import LRUMemo, clear_shared_memos, shared_sec, shared_sec_stats
from repro.perf.spatial import SpatialHashGrid

__all__ = [
    "CachedGeometry",
    "PerfStats",
    "LRUMemo",
    "SpatialHashGrid",
    "shared_sec",
    "shared_sec_stats",
    "clear_shared_memos",
]
