"""Bounded memoisation for pure geometric functions.

The SEC-based naming layer calls :func:`~repro.geometry.sec.
smallest_enclosing_circle` once per subject when building per-sender
addressing (``build_addressing`` computes ``relative_labels`` *and*
``horizon_direction`` for every robot — 2n SEC computations over the
*same* configuration), and self-stabilizing protocols re-run the whole
preprocessing every epoch even when the configuration is unchanged.
The SEC is a pure function of the point set, so a small keyed memo
makes every call after the first near-free without changing a single
result.

This module deliberately depends only on :mod:`repro.geometry` so that
the naming layer can import it without cycles.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Hashable, Sequence, Tuple, TypeVar

from repro.geometry.circle import Circle
from repro.geometry.predicates import DEFAULT_EPS
from repro.geometry.sec import smallest_enclosing_circle
from repro.geometry.vec import Vec2

__all__ = ["LRUMemo", "shared_sec", "shared_sec_stats", "clear_shared_memos"]

T = TypeVar("T")


class LRUMemo:
    """A tiny least-recently-used memo with hit/miss counters.

    Unlike :func:`functools.lru_cache` this memoises *values by key*
    rather than wrapping one function, so several derived quantities
    can share a single bounded store, and the counters are readable.
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self._maxsize = maxsize
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Hashable, compute: Callable[[], T]) -> T:
        """The memoised value for ``key``, computing it on a miss."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            value = compute()
            self._data[key] = value
            if len(self._data) > self._maxsize:
                self._data.popitem(last=False)
            return value  # type: ignore[return-value]
        self._data.move_to_end(key)
        self.hits += 1
        return value  # type: ignore[return-value]

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._data.clear()


_SEC_MEMO = LRUMemo(maxsize=256)


def shared_sec(
    points: Sequence[Vec2],
    eps: float = DEFAULT_EPS,
    seed: int = 0x5EC,
) -> Circle:
    """Memoised :func:`smallest_enclosing_circle` keyed by the points.

    The SEC of a configuration is unique and deterministic, so callers
    that repeatedly name the same configuration (per-sender addressing,
    epoch re-preprocessing) share one computation.  Results are
    bit-identical to the raw function.
    """
    key: Tuple = (tuple(points), eps, seed)
    return _SEC_MEMO.get(key, lambda: smallest_enclosing_circle(points, eps, seed))


def shared_sec_stats() -> Dict[str, int]:
    """Hit/miss counters of the process-wide SEC memo."""
    return {"hits": _SEC_MEMO.hits, "misses": _SEC_MEMO.misses, "entries": len(_SEC_MEMO)}


def clear_shared_memos() -> None:
    """Empty the process-wide memo stores (tests / benchmarks)."""
    _SEC_MEMO.clear()
