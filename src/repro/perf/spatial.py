"""A uniform spatial-hash grid for fixed-radius neighbour queries.

Rejection-sampling a well-separated point set with an all-pairs
distance check is O(n²) and dominates benchmark setup at large n; a
grid with cell size >= the separation radius answers "is anything
within r of p?" by inspecting at most a constant number of cells, so
the same sampling loop becomes O(n) expected.  The accept/reject
decisions are *identical* to the brute-force check (the grid is exact,
not approximate), so point sets generated through the grid are
bit-identical to the historical ones for the same RNG seed.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.geometry.vec import Vec2

__all__ = ["SpatialHashGrid"]


class SpatialHashGrid:
    """An unbounded 2-D grid of point buckets.

    Args:
        cell_size: bucket edge length (world units); queries with
            ``radius <= cell_size`` inspect only the 3x3 neighbourhood.
    """

    def __init__(self, cell_size: float) -> None:
        if cell_size <= 0.0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self._cell = cell_size
        self._buckets: Dict[Tuple[int, int], List[Vec2]] = {}
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def _key(self, point: Vec2) -> Tuple[int, int]:
        return (math.floor(point.x / self._cell), math.floor(point.y / self._cell))

    def insert(self, point: Vec2) -> None:
        """Add a point to the index."""
        self._buckets.setdefault(self._key(point), []).append(point)
        self._count += 1

    def neighbors_within(self, point: Vec2, radius: float) -> Iterator[Vec2]:
        """Every indexed point with ``distance_to(point) <= radius``."""
        if radius < 0.0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        reach = max(1, math.ceil(radius / self._cell))
        cx, cy = self._key(point)
        radius_sq = radius * radius
        for dx in range(-reach, reach + 1):
            for dy in range(-reach, reach + 1):
                bucket = self._buckets.get((cx + dx, cy + dy))
                if not bucket:
                    continue
                for q in bucket:
                    if point.distance_sq_to(q) <= radius_sq:
                        yield q

    def has_neighbor_within(self, point: Vec2, radius: float) -> bool:
        """True when some indexed point lies within ``radius``."""
        for _ in self.neighbors_within(point, radius):
            return True
        return False

    def extend(self, points: Iterable[Vec2]) -> None:
        """Bulk-insert points."""
        for p in points:
            self.insert(p)
