"""Performance counters for the hot-path caching layer.

Every :class:`~repro.model.simulator.Simulator` owns one
:class:`PerfStats` instance (exposed as ``Simulator.stats``) that the
configuration-epoch geometry cache and the fast observation pipeline
both write into.  The counters are purely observational: caching is
semantically transparent, so they exist to *measure* the layer, not to
influence it.

Counter semantics:

* ``cache_hits`` / ``cache_misses`` — derived-geometry lookups and
  whole-observation reuse checks.  A hit means the cached value was
  served without recomputation; a miss means a (full or partial)
  rebuild happened.
* ``observations_built`` — individual :class:`~repro.model.observation.
  ObservedRobot` entries constructed from scratch (one local-frame
  transform plus one allocation each).
* ``observations_reused`` — entries served from the per-robot
  observation cache because the underlying world position did not
  change since they were built.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["PerfStats"]


@dataclass
class PerfStats:
    """Mutable counter block for one simulator (or cache) instance."""

    cache_hits: int = 0
    cache_misses: int = 0
    observations_built: int = 0
    observations_reused: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of cache lookups served without recomputation."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def observation_reuse_rate(self) -> float:
        """Fraction of observed-robot entries served from cache."""
        total = self.observations_built + self.observations_reused
        return self.observations_reused / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        """A JSON-friendly snapshot (used by the benchmark runner)."""
        return {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "observations_built": self.observations_built,
            "observations_reused": self.observations_reused,
            "hit_rate": self.hit_rate,
            "observation_reuse_rate": self.observation_reuse_rate,
        }

    def reset(self) -> None:
        """Zero every counter."""
        self.cache_hits = 0
        self.cache_misses = 0
        self.observations_built = 0
        self.observations_reused = 0
