"""Performance counters for the hot-path caching layer.

Every :class:`~repro.model.simulator.Simulator` owns one
:class:`PerfStats` instance (exposed as ``Simulator.stats``) that the
configuration-epoch geometry cache and the fast observation pipeline
both write into.  The counters are purely observational: caching is
semantically transparent, so they exist to *measure* the layer, not to
influence it.

Since the observability layer landed, ``PerfStats`` is a **shim** over
:class:`repro.obs.registry.MetricsRegistry` — the counters live as
labeled ``perf_*`` counter series in a registry, so the obs recorder
and the benchmark runner read them through one interface.  The classic
attribute API (``stats.cache_hits += 1``, ``stats.hit_rate``,
``as_dict``, ``reset``) is unchanged and remains the supported surface
for existing callers.

Counter semantics:

* ``cache_hits`` / ``cache_misses`` — derived-geometry lookups and
  whole-observation reuse checks.  A hit means the cached value was
  served without recomputation; a miss means a (full or partial)
  rebuild happened.
* ``observations_built`` — individual :class:`~repro.model.observation.
  ObservedRobot` entries constructed from scratch (one local-frame
  transform plus one allocation each).
* ``observations_reused`` — entries served from the per-robot
  observation cache because the underlying world position did not
  change since they were built.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.registry import MetricsRegistry

__all__ = ["PerfStats"]

_FIELDS = (
    "cache_hits",
    "cache_misses",
    "observations_built",
    "observations_reused",
)


class PerfStats:
    """Mutable counter block for one simulator (or cache) instance.

    Args:
        registry: the :class:`~repro.obs.registry.MetricsRegistry` to
            host the ``perf_*`` counter series in; a fresh private one
            is created when omitted (the classic per-simulator
            behaviour).
        labels: labels for the hosted series (e.g. ``protocol=...``).
    """

    __slots__ = ("_registry", "_cache_hits", "_cache_misses",
                 "_observations_built", "_observations_reused")

    def __init__(
        self, registry: Optional[MetricsRegistry] = None, **labels: object
    ) -> None:
        self._registry = registry if registry is not None else MetricsRegistry()
        self._cache_hits = self._registry.counter("perf_cache_hits", **labels)
        self._cache_misses = self._registry.counter("perf_cache_misses", **labels)
        self._observations_built = self._registry.counter(
            "perf_observations_built", **labels
        )
        self._observations_reused = self._registry.counter(
            "perf_observations_reused", **labels
        )

    # ------------------------------------------------------------------
    # The classic attribute API (delegates to the registry counters)
    # ------------------------------------------------------------------
    @property
    def registry(self) -> MetricsRegistry:
        """The registry hosting this block's ``perf_*`` series."""
        return self._registry

    @property
    def cache_hits(self) -> int:
        return self._cache_hits.value

    @cache_hits.setter
    def cache_hits(self, value: int) -> None:
        self._cache_hits.value = value

    @property
    def cache_misses(self) -> int:
        return self._cache_misses.value

    @cache_misses.setter
    def cache_misses(self, value: int) -> None:
        self._cache_misses.value = value

    @property
    def observations_built(self) -> int:
        return self._observations_built.value

    @observations_built.setter
    def observations_built(self, value: int) -> None:
        self._observations_built.value = value

    @property
    def observations_reused(self) -> int:
        return self._observations_reused.value

    @observations_reused.setter
    def observations_reused(self, value: int) -> None:
        self._observations_reused.value = value

    # ------------------------------------------------------------------
    # Derived rates and snapshots (unchanged semantics)
    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Fraction of cache lookups served without recomputation."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def observation_reuse_rate(self) -> float:
        """Fraction of observed-robot entries served from cache."""
        total = self.observations_built + self.observations_reused
        return self.observations_reused / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        """A JSON-friendly snapshot (used by the benchmark runner)."""
        return {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "observations_built": self.observations_built,
            "observations_reused": self.observations_reused,
            "hit_rate": self.hit_rate,
            "observation_reuse_rate": self.observation_reuse_rate,
        }

    def reset(self) -> None:
        """Zero every counter."""
        for name in _FIELDS:
            setattr(self, name, 0)

    def __repr__(self) -> str:
        fields = ", ".join(f"{name}={getattr(self, name)}" for name in _FIELDS)
        return f"PerfStats({fields})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PerfStats):
            return NotImplemented
        return all(getattr(self, f) == getattr(other, f) for f in _FIELDS)
