"""Two asynchronous robots (Section 4.1, Figure 5 — Protocol Async2).

Idle behaviour: each robot drifts along the common *horizon line*
``H`` (the line through the two initial positions), away from its
peer — that direction is its private North.  Every activation moves
the robot (Remark 4.3), so the peer always has changes to observe.

Sending a bit: once the sender has observed the peer's position change
twice (so, by Corollary 4.2, the peer knows ``H`` and the sender's
direction), it steps off ``H`` perpendicular — East of its North for a
"0", West for a "1" — and keeps going *in the same direction* at every
activation until it again observes the peer change twice.  By
Lemma 4.1 the peer has then certainly seen it off ``H``: an implicit
acknowledgement.  The sender returns to ``H`` and drifts North until
the peer changes twice more, which separates consecutive bits.

Receiving is pure observation: a sighting of the peer off ``H``
immediately after an on-``H`` sighting is one bit, its side giving the
value.  Shared chirality lets the receiver compute the sender's East.

The paper notes the base scheme "has the drawback of making the two
robots moving away infinitely often from each other" and sketches the
fix: alternate the drift direction per leg and divide the covered
distance by ``x > 1`` in each move.  ``bounded=True`` implements that
variant; the step sizes decay as ``1/(i+1)^2`` within each leg — a
different vanishing series than the paper's geometric one, chosen
because it preserves the bounded-total-distance property while staying
far from floating-point underflow on long legs (the paper assumes
exact reals).  Total excursion and drift distances then stay within
fixed bands around the initial positions and the robots never collide.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ProtocolError
from repro.geometry.vec import Vec2
from repro.model.observation import Observation
from repro.model.protocol import BindingInfo, BitEvent, Protocol
from repro.protocols.acks import ChangeWatcher

__all__ = ["AsyncTwoProtocol"]

_ON_LINE_EPS_FACTOR = 1e-9


class AsyncTwoProtocol(Protocol):
    """Protocol Async2 of Section 4.1.

    Args:
        bounded: False reproduces the paper's base protocol (constant
            steps, unbounded drift); True enables the
            alternating-direction, vanishing-step variant.
        ack_threshold: how many observed peer changes complete a leg;
            the paper's value is 2 (Lemma 4.1).  Exposed so tests can
            demonstrate that 1 is *not* sufficient.
        step_fraction: idle/excursion step length as a fraction of the
            initial inter-robot distance (unbounded mode).
        on_line_fraction: decode margin — a peer within this fraction
            of the inter-robot distance from ``H`` counts as on the
            line.  The tiny default assumes exact sensing; raise it
            (e.g. to 0.05) under sensor noise (:mod:`repro.noise`).
        change_fraction: debounce for the acknowledgement counters —
            only peer displacements beyond this fraction of the
            inter-robot distance count as "the position changed".
            0 is the paper's exact model.
    """

    #: Remark 4.3: an active robot always moves (idle drift along
    #: H keeps the peer's acknowledgement counter alive), so the
    #: silence property deliberately does not hold here.
    idle_silent = False

    def __init__(
        self,
        bounded: bool = False,
        ack_threshold: int = 2,
        step_fraction: float = 0.125,
        on_line_fraction: float = _ON_LINE_EPS_FACTOR,
        change_fraction: float = 0.0,
    ) -> None:
        super().__init__()
        if ack_threshold < 1:
            raise ProtocolError(f"ack_threshold must be >= 1, got {ack_threshold}")
        if not (0.0 < step_fraction <= 0.25):
            raise ProtocolError(
                f"step_fraction must be in (0, 0.25], got {step_fraction}"
            )
        if not (0.0 < on_line_fraction < step_fraction):
            raise ProtocolError(
                "on_line_fraction must be positive and below step_fraction "
                "or genuine excursions would read as on-line"
            )
        if change_fraction < 0.0 or change_fraction >= step_fraction:
            raise ProtocolError(
                "change_fraction must be in [0, step_fraction) or genuine "
                "movements would be debounced away"
            )
        self._bounded = bounded
        self._ack = ack_threshold
        self._step_fraction = step_fraction
        self._on_line_fraction = on_line_fraction
        self._change_fraction = change_fraction

        self._peer_index = -1
        self._home = Vec2.zero()
        self._peer_home = Vec2.zero()
        self._north = Vec2.zero()
        self._east = Vec2.zero()
        self._distance = 0.0
        self._sigma = 0.0
        self._watcher: Optional[ChangeWatcher] = None

        self._phase = "north"
        self._leg_step = 0  # steps taken in the current leg
        self._leg_first_step = 0.0  # decayed-series scale of the leg
        self._north_sign = 1.0  # +1 away from peer; alternates if bounded
        self._excursion_sign = 1.0
        self._peer_was_on_line = True

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    def _on_bind(self, info: BindingInfo) -> None:
        if info.count != 2:
            raise ProtocolError(
                f"AsyncTwoProtocol is specified for exactly 2 robots, got {info.count}"
            )
        self._peer_index = 1 - info.index
        self._home = info.initial_positions[info.index]
        self._peer_home = info.initial_positions[self._peer_index]
        self._distance = self._home.distance_to(self._peer_home)
        if self._distance <= 0.0:
            raise ProtocolError("the two robots coincide")
        # North: away from the peer, along the horizon line H.
        self._north = (self._home - self._peer_home).normalized()
        # East: 90 degrees clockwise from North (shared chirality).
        self._east = self._north.perp_cw()
        self._watcher = ChangeWatcher(
            info.count,
            info.index,
            min_change=self._change_fraction * self._distance,
        )
        self._sigma = info.sigma
        self._start_north_leg(first=True)

    # ------------------------------------------------------------------
    # Leg management
    # ------------------------------------------------------------------
    def _band(self) -> float:
        """Half-width of the drift/excursion bands (bounded mode)."""
        return self._distance / 4.0

    def _start_north_leg(self, first: bool = False) -> None:
        assert self._watcher is not None
        self._phase = "north"
        self._leg_step = 0
        if not first:
            self._watcher.reset()
        if self._bounded:
            if not first:
                self._north_sign = -self._north_sign
            # Room left toward the leg direction inside the drift band.
            # The along-H coordinate is 0 at the home position.
            room = self._band()  # refined per-step from the live position
            self._leg_first_step = 0.6 * room
        else:
            self._leg_first_step = self._step_fraction * self._distance

    def _start_excursion(self, bit: int) -> None:
        assert self._watcher is not None
        self._phase = "excursion"
        self._leg_step = 0
        self._excursion_sign = 1.0 if bit == 0 else -1.0
        self._watcher.reset()
        if self._bounded:
            self._leg_first_step = 0.6 * self._band()
        else:
            self._leg_first_step = self._step_fraction * self._distance

    def _leg_step_length(self) -> float:
        """The next step of the current leg (vanishing in bounded mode)."""
        if self._bounded:
            raw = self._leg_first_step / float((self._leg_step + 1) ** 2)
        else:
            raw = self._leg_first_step
        return min(raw, self._sigma)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def _decode(self, observation: Observation) -> List[BitEvent]:
        assert self._watcher is not None
        self._watcher.observe(observation)
        events: List[BitEvent] = []
        peer_pos = observation.position_of(self._peer_index)
        # The peer's East, in our coordinates: its North is away from
        # us, i.e. the opposite of ours.
        peer_east = (-self._north).perp_cw()
        offset = peer_east.dot(peer_pos - self._peer_home)
        if abs(offset) <= self._on_line_fraction * self._distance:
            self._peer_was_on_line = True
            return events
        if self._peer_was_on_line:
            events.append(
                BitEvent(
                    time=observation.time,
                    src=self._peer_index,
                    dst=self.info.index,
                    bit=0 if offset > 0.0 else 1,
                )
            )
        self._peer_was_on_line = False
        return events

    # ------------------------------------------------------------------
    # Movement rule
    # ------------------------------------------------------------------
    def _compute(self, observation: Observation) -> Vec2:
        assert self._watcher is not None
        pos = observation.self_position
        acked = self._watcher.changed_at_least(self._peer_index, self._ack)

        if self._phase == "north":
            if acked and self._peek_outgoing() is not None:
                _, bit = self._next_outgoing()
                self._start_excursion(bit)
                return pos + self._east * (self._excursion_sign * self._leg_step_length())
            return pos + self._north * (self._north_sign * self._north_step(pos))

        if self._phase == "excursion":
            if acked:
                self._phase = "return"
                return self._projection_on_h(pos)
            self._leg_step += 1
            return pos + self._east * (self._excursion_sign * self._leg_step_length())

        # phase == "return"
        offset = self._east.dot(pos - self._home)
        if abs(offset) <= self._on_line_fraction * self._distance:
            self._start_north_leg()
            return pos + self._north * (self._north_sign * self._north_step(pos))
        return self._projection_on_h(pos)

    def _north_step(self, pos: Vec2) -> float:
        """Advance the leg counter and return the drift step length."""
        if self._bounded:
            along = self._north.dot(pos - self._home)
            room = self._band() - self._north_sign * along
            # Keep the vanishing series but never outrun the band: the
            # per-leg series total is < 1.645 * first_step.
            first = min(self._leg_first_step, 0.6 * max(room, 0.0))
            step = first / float((self._leg_step + 1) ** 2)
            self._leg_step += 1
            # Remark 4.3: an active robot always moves.  The floor is
            # negligible against the drift band but keeps the promise
            # alive even when the band is (nearly) exhausted.
            return min(max(step, 1e-12 * self._distance), self._sigma)
        self._leg_step += 1
        return min(self._leg_first_step, self._sigma)

    def _projection_on_h(self, pos: Vec2) -> Vec2:
        """The foot of the robot's position on the horizon line H."""
        return pos - self._east * self._east.dot(pos - self._home)
