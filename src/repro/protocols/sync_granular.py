"""Synchronous one-to-one communication for ``n >= 2`` robots.

This is the granular-routing scheme shared by Sections 3.2-3.4:

1. *Preprocessing* (at ``t_0``): every robot computes the Voronoi
   diagram of the configuration and its **granular** — the largest
   disc centred on itself enclosed in its cell.  Robots only ever move
   inside their own granular, which guarantees collision avoidance.
2. The granular is sliced by ``n`` labelled diameters (``2n`` slices).
   To send a bit to the robot labelled ``j``, a robot steps out along
   the diameter labelled ``j`` — on its Northern/Eastern half for a
   "0", Southern/Western for a "1" — and comes back to the centre.

The three paper variants differ only in how diameters are labelled and
oriented, which is the pluggable *naming mode*:

* ``"identified"`` (§3.2): observable IDs label the diameters and the
  common North (shared y axis) orients diameter 0.
* ``"sod"`` (§3.3): anonymous robots with sense of direction derive
  common labels from the shared-axes lexicographic order.
* ``"sec"`` (§3.4): anonymous robots with chirality only; each sender
  uses its *relative* SEC naming and aligns diameter 0 on its own
  horizon line, and every observer re-derives the sender's labelling
  to resolve the addressee.

Like the two-robot protocol, the scheme is silent: idle robots do not
move.  And because every robot decodes every movement, all messages
are overheard by everyone — the redundancy the paper points out.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import AmbiguousDirectionError, ProtocolError
from repro.geometry.granular import Granular, granular_radius
from repro.geometry.vec import Vec2
from repro.model.observation import Observation
from repro.model.protocol import BindingInfo, BitEvent, Protocol
from repro.protocols._naming_support import NamingMode, build_addressing

__all__ = ["SyncGranularProtocol", "NamingMode"]

_OFF_HOME_EPS_FACTOR = 1e-6


class SyncGranularProtocol(Protocol):
    """Granular-routed synchronous protocol (Sections 3.2-3.4).

    Args:
        naming: which labelling regime the system supports (see module
            docstring).
        excursion_fraction: excursion length as a fraction of the
            robot's granular radius; must stay strictly inside the
            granular.  The actual step is additionally capped by the
            robot's ``sigma``.
        max_directions: angular-resolution bound of Section 5: when
            set, binding refuses swarms whose ``2n`` slices exceed it
            (use :class:`repro.protocols.sync_logk.SyncLogKProtocol`
            instead).
        dilation: instants each signal position is held for.  With the
            default 1 this is exactly the paper's protocol.  Dilation
            ``d+1`` makes transmissions robust to boundedly-stale
            (CORDA-style, :mod:`repro.corda`) observations with lag at
            most ``d``: a monotone look sequence that lags by at most
            ``d`` cannot jump over a phase of ``d+1`` instants, so no
            observer can skip an excursion or a return.
        off_home_fraction: decode threshold — a robot observed within
            this fraction of its granular radius from its home counts
            as idle.  The tiny default assumes exact sensing (the
            paper's model); raise it (e.g. to 0.25) under sensor noise
            (:mod:`repro.noise`) so jitter does not read as signal.
        tolerate_ambiguity: noisy-sensing mode — skip sightings that
            fall between diameters instead of raising, leaving the
            decoder armed for the next look.
    """

    #: Sections 3.2-3.4 share the silence property: idle robots
    #: rest at their granular centre and do not move.
    idle_silent = True

    def __init__(
        self,
        naming: NamingMode = "identified",
        excursion_fraction: float = 0.45,
        max_directions: int | None = None,
        dilation: int = 1,
        off_home_fraction: float = _OFF_HOME_EPS_FACTOR,
        tolerate_ambiguity: bool = False,
    ) -> None:
        super().__init__()
        if naming not in ("identified", "sod", "sec"):
            raise ProtocolError(f"unknown naming mode {naming!r}")
        if not (0.0 < excursion_fraction < 1.0):
            raise ProtocolError(
                f"excursion_fraction must be in (0, 1), got {excursion_fraction}"
            )
        if max_directions is not None and max_directions < 2:
            raise ProtocolError(
                f"max_directions must be >= 2, got {max_directions}"
            )
        if dilation < 1:
            raise ProtocolError(f"dilation must be >= 1, got {dilation}")
        if not (0.0 < off_home_fraction < 1.0):
            raise ProtocolError(
                f"off_home_fraction must be in (0, 1), got {off_home_fraction}"
            )
        if off_home_fraction >= excursion_fraction:
            raise ProtocolError(
                "off_home_fraction must stay below excursion_fraction or "
                "genuine excursions would read as idle"
            )
        self._naming: NamingMode = naming
        self._excursion_fraction = excursion_fraction
        self._max_directions = max_directions
        self._dilation = dilation
        self._off_home_fraction = off_home_fraction
        self._tolerate_ambiguity = tolerate_ambiguity
        self._hold_remaining = 0
        self._hold_target: Vec2 | None = None
        self._homes: List[Vec2] = []
        self._granulars: Dict[int, Granular] = {}
        # _labels[s] maps tracking index -> diameter label as used by
        # sender s; _inverse[s] is the reverse mapping.
        self._labels: Dict[int, Dict[int, int]] = {}
        self._inverse: Dict[int, Dict[int, int]] = {}
        self._step_out: float = 0.0
        self._outbound = True
        self._peer_was_home: Dict[int, bool] = {}

    # ------------------------------------------------------------------
    # Preprocessing (the two steps of Section 3.2, executed at t0)
    # ------------------------------------------------------------------
    def _on_bind(self, info: BindingInfo) -> None:
        n = info.count
        if n < 2:
            raise ProtocolError("granular routing needs at least 2 robots")
        if self._max_directions is not None and 2 * n > self._max_directions:
            # The Section 5 scenario: bounded angular resolution makes
            # the 2n-slice scheme unusable — the robot honestly refuses
            # rather than mis-route.  SyncLogKProtocol is the fix.
            raise ProtocolError(
                f"cannot distinguish {2 * n} slice directions with a "
                f"resolution of {self._max_directions}; use SyncLogKProtocol"
            )
        positions = list(info.initial_positions)
        self._homes = positions

        self._labels, zero_directions = build_addressing(
            self._naming, positions, info.observable_ids
        )
        self._inverse = {
            s: {label: index for index, label in mapping.items()}
            for s, mapping in self._labels.items()
        }

        for j in range(n):
            others = [p for i, p in enumerate(positions) if i != j]
            radius = granular_radius(positions[j], others)
            self._granulars[j] = Granular(
                center=positions[j],
                radius=radius,
                num_diameters=n,
                zero_direction=zero_directions[j],
                sweep=-1,
            )
        self._step_out = min(
            self._excursion_fraction * self._granulars[info.index].radius,
            info.sigma,
        )
        self._peer_was_home = {j: True for j in range(n) if j != info.index}

    # ------------------------------------------------------------------
    # Decoding — every robot decodes every movement
    # ------------------------------------------------------------------
    def _decode(self, observation: Observation) -> List[BitEvent]:
        events: List[BitEvent] = []
        me = self.info.index
        for j in range(self.info.count):
            if j == me:
                continue
            granular = self._granulars[j]
            position = observation.position_of(j)
            offset = position.distance_to(granular.center)
            if offset <= self._off_home_fraction * granular.radius:
                self._peer_was_home[j] = True
                continue
            if self._peer_was_home[j]:
                try:
                    label, positive = granular.classify(position)
                except AmbiguousDirectionError:
                    if self._tolerate_ambiguity:
                        # Noisy-sensing mode: an unclassifiable sighting
                        # is skipped without disarming, so the genuine
                        # excursion is still decoded at the next look.
                        continue
                    raise
                dst = self._inverse[j].get(label)
                if dst is None:  # pragma: no cover - labels are dense
                    raise ProtocolError(f"diameter {label} of robot {j} is unassigned")
                events.append(
                    BitEvent(
                        time=observation.time,
                        src=j,
                        dst=dst,
                        bit=0 if positive else 1,
                    )
                )
            self._peer_was_home[j] = False
        return events

    # ------------------------------------------------------------------
    # Movement rule
    # ------------------------------------------------------------------
    def _compute(self, observation: Observation) -> Vec2:
        me = self.info.index
        home = self._homes[me]
        if self._hold_remaining > 0:
            # Phase dilation (staleness tolerance, see class docstring):
            # hold the current signal position for extra instants so
            # that boundedly-stale observers cannot skip a whole phase.
            self._hold_remaining -= 1
            assert self._hold_target is not None
            return self._hold_target
        if not self._outbound:
            self._outbound = True
            return self._held(home)
        queued = self._next_outgoing()
        if queued is None:
            return observation.self_position  # silent
        dst, bit = queued
        label = self._labels[me][dst]
        self._outbound = False
        return self._held(
            self._granulars[me].target_point(
                label, positive=(bit == 0), distance=self._step_out
            )
        )

    def _held(self, target: Vec2) -> Vec2:
        """Register a signal position to be held for the dilation span."""
        self._hold_remaining = self._dilation - 1
        self._hold_target = target
        return target

    # ------------------------------------------------------------------
    # Introspection helpers used by tests and benchmarks
    # ------------------------------------------------------------------
    def labels_used_by(self, sender: int) -> Dict[int, int]:
        """The tracking-index -> diameter-label map of a sender."""
        if sender not in self._labels:
            raise ProtocolError(f"unknown sender {sender}")
        return dict(self._labels[sender])

    def granular_of(self, index: int) -> Granular:
        """The granular of any robot, as this robot computed it."""
        if index not in self._granulars:
            raise ProtocolError(f"unknown robot {index}")
        return self._granulars[index]
