"""Shared label/orientation preprocessing for granular protocols.

The synchronous granular scheme (§3.2-3.4), its bounded-resolution
variant (§5) and the asynchronous n-robot protocol (§4.2) all need the
same two ingredients per robot ``s``:

* the diameter-label map ``labels_s`` (tracking index -> label) that
  ``s`` uses when addressing, and
* the direction ``s`` aligns diameter 0 on.

Both depend only on the naming mode and ``P(t_0)``, so every observer
reproduces every sender's values — the property the decoding side of
all three protocols rests on.
"""

from __future__ import annotations

from typing import Dict, List, Literal, Optional, Sequence, Tuple

from repro.errors import ProtocolError
from repro.geometry.vec import Vec2
from repro.naming.identified import identified_labels
from repro.naming.sec_naming import horizon_direction, relative_labels
from repro.naming.sod import sod_labels

__all__ = ["NamingMode", "build_addressing"]

NamingMode = Literal["identified", "sod", "sec"]


def build_addressing(
    naming: NamingMode,
    positions: Sequence[Vec2],
    observable_ids: Optional[Sequence[int]],
) -> Tuple[Dict[int, Dict[int, int]], List[Vec2]]:
    """Per-sender label maps and diameter-0 directions.

    Returns:
        ``(labels, zero_directions)`` where ``labels[s]`` maps tracking
        index -> diameter label as used by sender ``s`` and
        ``zero_directions[s]`` is the unit vector ``s`` aligns its
        diameter 0 on (the common North for ``identified``/``sod``,
        the outward horizon direction for ``sec``).

    Raises:
        ProtocolError: when the naming mode's capability requirement is
            not met (e.g. ``identified`` without observable IDs).
    """
    n = len(positions)
    north = Vec2(0.0, 1.0)
    if naming == "identified":
        if observable_ids is None:
            raise ProtocolError(
                "naming='identified' requires an identified system "
                "(every robot needs an observable_id)"
            )
        common = identified_labels(observable_ids)
        return {s: dict(common) for s in range(n)}, [north] * n
    if naming == "sod":
        common = sod_labels(positions)
        return {s: dict(common) for s in range(n)}, [north] * n
    if naming == "sec":
        labels = {s: relative_labels(positions, s) for s in range(n)}
        zeros = [horizon_direction(positions, s) for s in range(n)]
        return labels, zeros
    raise ProtocolError(f"unknown naming mode {naming!r}")
