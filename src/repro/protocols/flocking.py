"""Chatting while flocking (Section 5, concluding remark).

    "Note that the robots may decide to flock in a certain direction,
    subtracting the agreed upon global flocking movement in order to
    preserve the relative movements used for communication."

:class:`FlockingProtocol` wraps any synchronous movement protocol.  At
every instant the whole swarm translates by an agreed drift vector; the
wrapper presents each inner protocol with a *de-drifted* view of the
world (positions minus ``drift * t``) and adds the accumulated drift
back to the inner protocol's destination.  Communication is therefore
bit-for-bit identical to the static run while the swarm travels.

Agreement without common units: the drift is specified as a direction
in the shared axes (this wrapper requires sense of direction) and a
speed given as a *fraction of the SEC diameter* of ``P(t_0)`` per
instant — a unit-free geometric quantity every robot evaluates to the
same world length.

Synchronous only: inactive robots cannot drift, so under an
asynchronous scheduler the swarm would tear apart; the paper's remark
is likewise made in the synchronous context.
"""

from __future__ import annotations

from typing import List

from repro.errors import ProtocolError
from repro.geometry.sec import smallest_enclosing_circle
from repro.geometry.vec import Vec2
from repro.model.observation import Observation, ObservedRobot
from repro.model.protocol import BindingInfo, BitEvent, Protocol

__all__ = ["FlockingProtocol"]


class FlockingProtocol(Protocol):
    """Wrap a synchronous protocol with an agreed global drift.

    Args:
        inner: the communication protocol to run inside the flock; the
            wrapper owns it (do not bind or drive it directly).
        direction: flocking direction in the shared axes (nonzero).
        speed_fraction: drift per instant as a fraction of the SEC
            diameter of the initial configuration; must leave the
            inner protocol enough of the movement budget ``sigma``.
    """

    #: The whole swarm drifts every instant — the overlay trades
    #: the silence property for mobility (Section 5 remark).
    idle_silent = False

    def __init__(
        self,
        inner: Protocol,
        direction: Vec2 = Vec2(0.0, 1.0),
        speed_fraction: float = 0.02,
    ) -> None:
        super().__init__()
        if direction.norm() == 0.0:
            raise ProtocolError("flocking direction must be nonzero")
        if speed_fraction <= 0.0:
            raise ProtocolError(f"speed_fraction must be > 0, got {speed_fraction}")
        self._inner = inner
        self._direction = direction.normalized()
        self._speed_fraction = speed_fraction
        self._drift = Vec2.zero()

    @property
    def inner(self) -> Protocol:
        """The wrapped protocol (for inspecting its logs directly)."""
        return self._inner

    @property
    def drift_per_instant(self) -> Vec2:
        """The agreed drift vector, in this robot's local units."""
        return self._drift

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _on_bind(self, info: BindingInfo) -> None:
        sec = smallest_enclosing_circle(info.initial_positions)
        drift_length = self._speed_fraction * 2.0 * sec.radius
        if drift_length >= info.sigma:
            raise ProtocolError(
                f"drift {drift_length:.6g} per instant exceeds sigma "
                f"{info.sigma:.6g}; lower speed_fraction"
            )
        self._drift = self._direction * drift_length
        self._inner.bind(
            BindingInfo(
                index=info.index,
                count=info.count,
                sigma=info.sigma - drift_length,
                initial_positions=info.initial_positions,
                observable_ids=info.observable_ids,
            )
        )

    def on_activate(self, observation: Observation) -> Vec2:
        """De-drift the view, run the inner protocol, re-add the drift."""
        info = self._require_info()
        if observation.self_index != info.index:
            raise ProtocolError("observation delivered to the wrong robot")
        self._activations += 1
        shift = self._drift * float(observation.time)
        shifted = Observation(
            time=observation.time,
            self_index=observation.self_index,
            robots=tuple(
                ObservedRobot(
                    index=r.index,
                    position=r.position - shift,
                    observable_id=r.observable_id,
                )
                for r in observation.robots
            ),
        )
        inner_target = self._inner.on_activate(shifted)
        return inner_target + self._drift * float(observation.time + 1)

    # ------------------------------------------------------------------
    # Delegation — the wrapper is transparent to applications
    # ------------------------------------------------------------------
    def send_bit(self, dst: int, bit: int) -> None:
        self._inner.send_bit(dst, bit)

    def send_bits(self, dst: int, bits) -> None:
        self._inner.send_bits(dst, bits)

    @property
    def pending_bits(self) -> int:
        return self._inner.pending_bits

    @property
    def received(self):
        return self._inner.received

    @property
    def overheard(self):
        return self._inner.overheard

    # The base-class hooks are bypassed by the on_activate override.
    def _decode(self, observation: Observation) -> List[BitEvent]:  # pragma: no cover
        raise ProtocolError("FlockingProtocol delegates decoding to its inner protocol")

    def _compute(self, observation: Observation) -> Vec2:  # pragma: no cover
        raise ProtocolError("FlockingProtocol delegates movement to its inner protocol")
