"""Any number of asynchronous robots (Section 4.2 — Protocol Asyncn).

The synchronous granular scheme is combined with the implicit
acknowledgements of Section 4.1.  Assumptions, per the paper: the
robots know ``P(t_0)`` (or are all awake at ``t_0``), and share
chirality; IDs or sense of direction are optional extras (the naming
mode covers all three regimes).

Every robot's granular is sliced in ``n + 1`` diameters instead of
``n``: the extra diameter, aligned on the robot's horizon line ``H_r``
(its common North under ``identified``/``sod`` naming), is the idle
slice **kappa**.  Our diameter convention: diameter 0 is kappa and the
robot labelled ``l`` gets diameter ``l + 1``.

Behaviour of a robot ``r`` (quoting the paper's two cases):

1. *Sending a bit to r'*: return to the centre if away from it, then
   move out along the diameter labelled ``r'`` — positive (North/East)
   half for "0", negative for "1" — continuing *in the same direction*
   each activation **until the position of every robot has been
   observed to change twice** (everyone has then seen the excursion,
   by Lemma 4.1 applied pairwise).  Come back to the centre, then walk
   kappa in one direction until everyone changed twice again, which
   separates this bit from the next.
2. *Idle*: oscillate on kappa — keep moving one way until everyone
   changed twice, then reverse — always avoiding the border of the
   granular.  An active robot therefore always moves (Remark 4.3),
   which keeps every other robot's acknowledgement counters alive.

Step lengths within a leg vanish as ``1/(i+1)^2`` (bounded-total
series; see the note in :mod:`repro.protocols.async_two` about the
paper's "divide by x > 1" and floating point), scaled so that no leg
can leave its band: excursions stay strictly inside the granular and
kappa oscillation stays inside a band around the centre.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import AmbiguousDirectionError, ProtocolError
from repro.geometry.granular import Granular, granular_radius
from repro.geometry.vec import Vec2
from repro.model.observation import Observation
from repro.model.protocol import BindingInfo, BitEvent, Protocol
from repro.protocols._naming_support import NamingMode, build_addressing
from repro.protocols.acks import ChangeWatcher

__all__ = ["AsyncNProtocol"]

_KAPPA = 0  # diameter index of the idle slice
_AT_CENTER_EPS_FACTOR = 1e-7
_EXCURSION_BAND_FACTOR = 0.85  # excursion band as a fraction of the radius
_KAPPA_BAND_FACTOR = 0.4  # kappa oscillation band as a fraction of the radius
_SERIES_SAFETY = 0.6  # first step = safety * room; series total < 1.645 * first


class AsyncNProtocol(Protocol):
    """Protocol Asyncn of Section 4.2.

    Args:
        naming: label regime (``"sec"`` is the paper's weakest —
            anonymous robots with chirality only).
        ack_threshold: observed changes per peer that complete a leg
            (the paper's Lemma 4.1 value is 2).
        off_center_fraction: decode margin — a robot within this
            fraction of its granular radius from its centre counts as
            at the centre.  The tiny default assumes exact sensing;
            raise it under sensor noise (:mod:`repro.noise`).
        change_fraction: acknowledgement debounce — only peer
            displacements beyond this fraction of the observer's own
            granular radius count as "the position changed".  0 is the
            paper's exact model.
        tolerate_ambiguity: noisy-sensing mode — skip sightings that
            fall between diameters instead of raising.
    """

    #: Remark 4.3 again: idle robots oscillate on kappa so every
    #: observer's change counters keep advancing — never silent.
    idle_silent = False

    def __init__(
        self,
        naming: NamingMode = "sec",
        ack_threshold: int = 2,
        off_center_fraction: float = _AT_CENTER_EPS_FACTOR,
        change_fraction: float = 0.0,
        tolerate_ambiguity: bool = False,
    ) -> None:
        super().__init__()
        if ack_threshold < 1:
            raise ProtocolError(f"ack_threshold must be >= 1, got {ack_threshold}")
        if not (0.0 < off_center_fraction < _KAPPA_BAND_FACTOR):
            raise ProtocolError(
                "off_center_fraction must be positive and below the kappa band "
                f"({_KAPPA_BAND_FACTOR}) or idle legs would read as at-centre"
            )
        if change_fraction < 0.0 or change_fraction >= _KAPPA_BAND_FACTOR:
            raise ProtocolError(
                "change_fraction must be in [0, kappa band) or genuine "
                "movements would be debounced away"
            )
        self._naming: NamingMode = naming
        self._ack = ack_threshold
        self._off_center_fraction = off_center_fraction
        self._change_fraction = change_fraction
        self._tolerate_ambiguity = tolerate_ambiguity

        self._homes: List[Vec2] = []
        self._granulars: Dict[int, Granular] = {}
        self._labels: Dict[int, Dict[int, int]] = {}
        self._inverse: Dict[int, Dict[int, int]] = {}
        self._watcher: Optional[ChangeWatcher] = None
        self._sigma = 0.0

        # Sender state machine.
        self._phase = "kappa"  # kappa | return | excursion
        self._leg_step = 0
        self._leg_first_step = 0.0
        self._kappa_sign = 1.0
        self._separator_done = True  # a fresh system needs no separator
        self._excursion: Optional[Tuple[int, bool]] = None  # (diameter, positive)

        # Receiver state: per sender, whether the last sighting was an
        # idle marker (centre or kappa), and nothing else is needed.
        self._armed: Dict[int, bool] = {}

    # ------------------------------------------------------------------
    # Binding / preprocessing
    # ------------------------------------------------------------------
    def _on_bind(self, info: BindingInfo) -> None:
        n = info.count
        if n < 2:
            raise ProtocolError("Asyncn needs at least 2 robots")
        positions = list(info.initial_positions)
        self._homes = positions
        self._labels, zero_directions = build_addressing(
            self._naming, positions, info.observable_ids
        )
        self._inverse = {
            s: {label: index for index, label in mapping.items()}
            for s, mapping in self._labels.items()
        }
        for j in range(n):
            others = [p for i, p in enumerate(positions) if i != j]
            self._granulars[j] = Granular(
                center=positions[j],
                radius=granular_radius(positions[j], others),
                num_diameters=n + 1,
                zero_direction=zero_directions[j],
                sweep=-1,
            )
        self._watcher = ChangeWatcher(
            n,
            info.index,
            min_change=self._change_fraction * self._radius(),
        )
        self._sigma = info.sigma
        self._armed = {j: True for j in range(n) if j != info.index}
        self._start_kappa_leg(reverse=False, reset=False)

    def _radius(self) -> float:
        return self._granulars[self.info.index].radius

    def _diameter_for(self, dst: int) -> int:
        return self._labels[self.info.index][dst] + 1

    # ------------------------------------------------------------------
    # Leg management
    # ------------------------------------------------------------------
    def _start_kappa_leg(self, reverse: bool, reset: bool = True) -> None:
        assert self._watcher is not None
        self._phase = "kappa"
        self._leg_step = 0
        if reverse:
            self._kappa_sign = -self._kappa_sign
        if reset:
            self._watcher.reset()

    def _start_excursion(self, dst: int, bit: int) -> None:
        assert self._watcher is not None
        self._phase = "excursion"
        self._leg_step = 0
        self._excursion = (self._diameter_for(dst), bit == 0)
        self._leg_first_step = _SERIES_SAFETY * _EXCURSION_BAND_FACTOR * self._radius()
        self._watcher.reset()

    def _series_step(self, first: float) -> float:
        """The vanishing per-leg step: ``first / (i+1)^2``, sigma-capped.

        Always strictly positive (Remark 4.3: active robots move).
        """
        step = first / float((self._leg_step + 1) ** 2)
        self._leg_step += 1
        return min(max(step, 1e-12 * self._radius()), self._sigma)

    # ------------------------------------------------------------------
    # Decoding — observe everyone, attribute excursions
    # ------------------------------------------------------------------
    def _decode(self, observation: Observation) -> List[BitEvent]:
        assert self._watcher is not None
        self._watcher.observe(observation)
        events: List[BitEvent] = []
        me = self.info.index
        for j in range(self.info.count):
            if j == me:
                continue
            granular = self._granulars[j]
            position = observation.position_of(j)
            offset = position.distance_to(granular.center)
            if offset <= self._off_center_fraction * granular.radius:
                self._armed[j] = True  # idle marker: at the centre
                continue
            try:
                diameter, positive = granular.classify(position)
            except AmbiguousDirectionError:
                if self._tolerate_ambiguity:
                    continue  # noisy sighting: skip without disarming
                raise
            if diameter == _KAPPA:
                self._armed[j] = True  # idle marker: on kappa
                continue
            if self._armed[j]:
                dst = self._inverse[j].get(diameter - 1)
                if dst is None:  # pragma: no cover - labels are dense
                    raise ProtocolError(
                        f"diameter {diameter} of robot {j} is unassigned"
                    )
                events.append(
                    BitEvent(
                        time=observation.time,
                        src=j,
                        dst=dst,
                        bit=0 if positive else 1,
                    )
                )
            self._armed[j] = False
        return events

    # ------------------------------------------------------------------
    # Movement rule
    # ------------------------------------------------------------------
    def _compute(self, observation: Observation) -> Vec2:
        assert self._watcher is not None
        pos = observation.self_position
        home = self._homes[self.info.index]
        granular = self._granulars[self.info.index]
        everyone_acked = self._watcher.all_changed_at_least(self._ack)

        if self._phase == "excursion":
            assert self._excursion is not None
            diameter, positive = self._excursion
            if everyone_acked:
                # Everyone saw the bit; come back to the centre.
                self._phase = "return"
                self._excursion = None
                self._separator_done = False
                return home
            direction = granular.diameter_direction(diameter, positive)
            return pos + direction * self._series_step(self._leg_first_step)

        if self._phase == "return":
            if pos.distance_to(home) > _AT_CENTER_EPS_FACTOR * granular.radius:
                return home  # sigma-clamped by the engine; multi-step
            # Arrived.  A mandatory kappa separator follows an
            # excursion; otherwise start sending or go idle.
            if self._separator_done and self._pending_for_send():
                dst, bit = self._next_outgoing()
                self._start_excursion(dst, bit)
                diameter, positive = self._excursion
                direction = granular.diameter_direction(diameter, positive)
                return pos + direction * self._series_step(self._leg_first_step)
            self._start_kappa_leg(reverse=False)
            return pos + self._kappa_direction() * self._kappa_step(pos)

        # phase == "kappa"
        if everyone_acked and not self._separator_done:
            # The post-bit separator leg just completed.
            self._separator_done = True
        if self._separator_done and self._pending_for_send():
            # Idle oscillation legs may be abandoned for a new bit; a
            # pending separator leg may not (the guard above).
            if pos.distance_to(home) <= _AT_CENTER_EPS_FACTOR * granular.radius:
                dst, bit = self._next_outgoing()
                self._start_excursion(dst, bit)
                assert self._excursion is not None
                diameter, positive = self._excursion
                direction = granular.diameter_direction(diameter, positive)
                return pos + direction * self._series_step(self._leg_first_step)
            self._phase = "return"
            return home
        if everyone_acked:
            self._start_kappa_leg(reverse=True)
        return pos + self._kappa_direction() * self._kappa_step(pos)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _pending_for_send(self) -> bool:
        return self._peek_outgoing() is not None

    def _kappa_direction(self) -> Vec2:
        granular = self._granulars[self.info.index]
        base = granular.diameter_direction(_KAPPA, positive=True)
        return base * self._kappa_sign

    def _kappa_step(self, pos: Vec2) -> float:
        """A vanishing kappa step that respects the oscillation band."""
        granular = self._granulars[self.info.index]
        band = _KAPPA_BAND_FACTOR * granular.radius
        along = self._kappa_direction().dot(pos - self._homes[self.info.index])
        room = band - along
        first = _SERIES_SAFETY * max(room, 0.0)
        return self._series_step(first)
