"""Bounded-resolution routing: few slices + address blocks (Section 5).

When robots cannot tell ``2n`` slice directions apart (round-off,
discrete grids), the paper proposes keeping only ``k + 1`` labelled
diameters:

* diameter 0 is the single *transmission* diameter — a bit travels on
  it exactly as in the two-robot protocol (positive half = 0, negative
  half = 1);
* diameters ``1 .. k`` carry the base-``k`` digits of the addressee's
  label, "transmitting the index of the robot to whom the message is
  intended following the message itself".

A sender therefore emits a run of payload bits on diameter 0 and then
a block of exactly ``ceil(log_k n)`` digit excursions naming the
addressee.  Receivers buffer payload bits per sender and attribute the
whole run when the address block completes, so the scheme is
self-delimiting without any framing knowledge.  The price is the
paper's headline trade-off: ``ceil(log_k n)`` extra excursions per
run — ``O(log n / log log n)`` slowdown for ``O(log n)`` slices.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.coding.logk_addressing import (
    address_digit_count,
    address_digits,
    digits_to_index,
)
from repro.errors import DecodingError, ProtocolError
from repro.geometry.granular import Granular, granular_radius
from repro.geometry.vec import Vec2
from repro.model.observation import Observation
from repro.model.protocol import BindingInfo, BitEvent, Protocol
from repro.protocols._naming_support import NamingMode, build_addressing

__all__ = ["SyncLogKProtocol"]

_OFF_HOME_EPS_FACTOR = 1e-6


class _ReceiverState:
    """Per-sender decoding state: buffered payload bits and digits."""

    def __init__(self) -> None:
        self.bits: List[int] = []
        self.digits: List[int] = []


class SyncLogKProtocol(Protocol):
    """The Section 5 few-slice synchronous protocol.

    Args:
        k: digit base = number of index diameters; ``2 <= k``.  The
            granular has ``k + 1`` diameters regardless of the swarm
            size.
        naming: label regime, as in
            :class:`~repro.protocols.sync_granular.SyncGranularProtocol`.
        excursion_fraction: excursion length as a fraction of the
            granular radius.
    """

    #: The bounded-resolution variant keeps the synchronous
    #: family's silence property: no traffic, no movement.
    idle_silent = True

    def __init__(
        self,
        k: int,
        naming: NamingMode = "identified",
        excursion_fraction: float = 0.45,
        max_directions: int | None = None,
    ) -> None:
        super().__init__()
        if k < 2:
            raise ProtocolError(f"digit base k must be >= 2, got {k}")
        if not (0.0 < excursion_fraction < 1.0):
            raise ProtocolError(
                f"excursion_fraction must be in (0, 1), got {excursion_fraction}"
            )
        if max_directions is not None and 2 * (k + 1) > max_directions:
            raise ProtocolError(
                f"cannot distinguish {2 * (k + 1)} slice directions with a "
                f"resolution of {max_directions}; lower k"
            )
        self._k = k
        self._naming: NamingMode = naming
        self._excursion_fraction = excursion_fraction
        self._homes: List[Vec2] = []
        self._granulars: Dict[int, Granular] = {}
        self._labels: Dict[int, Dict[int, int]] = {}
        self._inverse: Dict[int, Dict[int, int]] = {}
        self._step_out = 0.0
        self._digit_count = 0
        self._outbound = True
        self._peer_was_home: Dict[int, bool] = {}
        self._receiver: Dict[int, _ReceiverState] = {}
        # Sender-side run bookkeeping.
        self._run_dst: Optional[int] = None
        self._pending_digits: List[int] = []

    @property
    def k(self) -> int:
        """The digit base (number of index diameters)."""
        return self._k

    @property
    def digits_per_address(self) -> int:
        """``ceil(log_k n)`` for the bound swarm."""
        return self._digit_count

    # ------------------------------------------------------------------
    # Preprocessing
    # ------------------------------------------------------------------
    def _on_bind(self, info: BindingInfo) -> None:
        n = info.count
        if n < 2:
            raise ProtocolError("routing needs at least 2 robots")
        positions = list(info.initial_positions)
        self._homes = positions
        self._digit_count = address_digit_count(n, self._k)
        self._labels, zero_directions = build_addressing(
            self._naming, positions, info.observable_ids
        )
        self._inverse = {
            s: {label: index for index, label in mapping.items()}
            for s, mapping in self._labels.items()
        }
        for j in range(n):
            others = [p for i, p in enumerate(positions) if i != j]
            self._granulars[j] = Granular(
                center=positions[j],
                radius=granular_radius(positions[j], others),
                num_diameters=self._k + 1,
                zero_direction=zero_directions[j],
                sweep=-1,
            )
        self._step_out = min(
            self._excursion_fraction * self._granulars[info.index].radius,
            info.sigma,
        )
        self._peer_was_home = {j: True for j in range(n) if j != info.index}
        self._receiver = {j: _ReceiverState() for j in self._peer_was_home}

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def _decode(self, observation: Observation) -> List[BitEvent]:
        events: List[BitEvent] = []
        me = self.info.index
        for j in range(self.info.count):
            if j == me:
                continue
            granular = self._granulars[j]
            position = observation.position_of(j)
            if position.distance_to(granular.center) <= (
                _OFF_HOME_EPS_FACTOR * granular.radius
            ):
                self._peer_was_home[j] = True
                continue
            if self._peer_was_home[j]:
                events.extend(self._ingest_excursion(j, position, observation.time))
            self._peer_was_home[j] = False
        return events

    def _ingest_excursion(self, sender: int, position: Vec2, time: int) -> List[BitEvent]:
        diameter, positive = self._granulars[sender].classify(position)
        state = self._receiver[sender]
        if diameter == 0:
            if state.digits:
                raise DecodingError(
                    f"robot {sender} sent a payload bit inside an address block"
                )
            state.bits.append(0 if positive else 1)
            return []
        if not positive:
            raise DecodingError(
                f"robot {sender} used the reserved negative half of index "
                f"diameter {diameter}"
            )
        state.digits.append(diameter - 1)
        if len(state.digits) < self._digit_count:
            return []
        label = digits_to_index(state.digits, self.info.count, self._k)
        dst = self._inverse[sender].get(label)
        if dst is None:
            raise DecodingError(
                f"address block of robot {sender} names unused label {label}"
            )
        events = [
            BitEvent(time=time, src=sender, dst=dst, bit=bit) for bit in state.bits
        ]
        state.bits = []
        state.digits = []
        return events

    # ------------------------------------------------------------------
    # Movement rule
    # ------------------------------------------------------------------
    def _compute(self, observation: Observation) -> Vec2:
        me = self.info.index
        if not self._outbound:
            self._outbound = True
            return self._homes[me]
        excursion = self._next_excursion()
        if excursion is None:
            return observation.self_position  # silent
        diameter, positive = excursion
        self._outbound = False
        return self._excursion_target(diameter, positive)

    def _excursion_target(self, diameter: int, positive: bool) -> Vec2:
        """Where one excursion lands; lattice variants override this."""
        return self._granulars[self.info.index].target_point(
            diameter, positive, self._step_out
        )

    def _next_excursion(self) -> Optional[Tuple[int, bool]]:
        """The next excursion to perform: payload bit or address digit."""
        if self._pending_digits:
            return (self._pending_digits.pop(0) + 1, True)
        head = self._peek_outgoing()
        if head is None:
            if self._run_dst is not None:
                self._open_address_block()
                return (self._pending_digits.pop(0) + 1, True)
            return None
        dst, bit = head
        if self._run_dst is not None and dst != self._run_dst:
            self._open_address_block()
            return (self._pending_digits.pop(0) + 1, True)
        self._run_dst = dst
        self._next_outgoing()
        return (0, bit == 0)

    def _open_address_block(self) -> None:
        assert self._run_dst is not None
        label = self._labels[self.info.index][self._run_dst]
        self._pending_digits = address_digits(label, self.info.count, self._k)
        self._run_dst = None
