"""The six movement protocols of the paper, plus extensions.

Synchronous (Section 3):

* :class:`~repro.protocols.sync_two.SyncTwoProtocol` — §3.1, two
  robots, side-step coding (with the multi-symbol extension).
* :class:`~repro.protocols.sync_granular.SyncGranularProtocol` —
  §3.2/§3.3/§3.4, ``n >= 2`` robots routed through sliced granulars,
  with pluggable naming (identified IDs, sense-of-direction order, or
  SEC relative naming).
* :class:`~repro.protocols.sync_logk.SyncLogKProtocol` — the §5
  bounded-resolution variant with ``k+1`` diameters and base-``k``
  address blocks.

Asynchronous (Section 4):

* :class:`~repro.protocols.async_two.AsyncTwoProtocol` — §4.1, two
  robots with implicit acknowledgements (Lemma 4.1).
* :class:`~repro.protocols.async_n.AsyncNProtocol` — §4.2, any number
  of robots with the extra idle slice ``kappa``.

Extensions (Section 5 remarks):

* :class:`~repro.protocols.flocking.FlockingProtocol` — chat while the
  swarm flocks; observers subtract the agreed drift.
* :mod:`~repro.protocols.broadcast` — one-to-many / one-to-all helpers.
"""

from repro.protocols.acks import ChangeWatcher
from repro.protocols.sync_two import SyncTwoProtocol
from repro.protocols.sync_granular import (
    NamingMode,
    SyncGranularProtocol,
)
from repro.protocols.sync_logk import SyncLogKProtocol
from repro.protocols.async_two import AsyncTwoProtocol
from repro.protocols.async_n import AsyncNProtocol
from repro.protocols.flocking import FlockingProtocol
from repro.protocols.broadcast import send_to_all, send_to_many

__all__ = [
    "ChangeWatcher",
    "SyncTwoProtocol",
    "SyncGranularProtocol",
    "SyncLogKProtocol",
    "NamingMode",
    "AsyncTwoProtocol",
    "AsyncNProtocol",
    "FlockingProtocol",
    "send_to_all",
    "send_to_many",
]
