"""One-to-many and one-to-all communication (Section 1 / Section 5).

    "Note that our protocols — either synchronous or asynchronous —
    can be easily adapted to implement efficiently one-to-many or
    one-to-all explicit communication."

Two adaptations are provided:

* *Addressed fan-out* (:func:`send_to_many`, :func:`send_to_all`) —
  queue the same bits for every recipient; each copy travels as an
  ordinary one-to-one transmission, so delivery lands in each
  recipient's ``received`` log.

* *Overhearing* — since "every robot is able to know all the messages
  sent in the system", a single one-to-one transmission already
  reaches every observer via its ``overheard`` log; the channel layer
  (:class:`repro.channels.mailbox.OverhearingMonitor`) reassembles
  messages from it.  This is the paper's *efficient* one-to-all: one
  transmission, ``n - 1`` receivers.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ProtocolError
from repro.model.protocol import Protocol

__all__ = ["send_to_many", "send_to_all"]


def send_to_many(protocol: Protocol, dsts: Iterable[int], bits: Sequence[int]) -> int:
    """Queue ``bits`` for every destination in ``dsts``.

    Returns the number of copies queued.  Destinations must be
    distinct, valid, and not the sender itself.
    """
    targets = list(dsts)
    if len(set(targets)) != len(targets):
        raise ProtocolError(f"duplicate destinations in {targets}")
    for dst in targets:
        protocol.send_bits(dst, bits)
    return len(targets)


def send_to_all(protocol: Protocol, bits: Sequence[int]) -> int:
    """Queue ``bits`` for every robot except the sender.

    Returns the number of copies queued (``n - 1``).
    """
    info = protocol.info
    others = [i for i in range(info.count) if i != info.index]
    return send_to_many(protocol, others, bits)
