"""Implicit acknowledgements (Section 4, Lemma 4.1).

The asynchronous protocols hinge on one observation:

    **Lemma 4.1.**  Let r and r' be two robots.  Assume that r always
    moves in the same direction each time it becomes active.  If r
    observes that the position of r' has changed twice, then r' must
    have observed that the position of r has changed at least once.

So "keep moving the same way until you have seen the other robot move
twice" is an acknowledgement: the peer has certainly seen (at least
one of) your moves.  The :class:`ChangeWatcher` implements the
counting side — per-peer counters of observed position changes,
resettable at the start of each protocol leg.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.errors import ProtocolError
from repro.geometry.vec import Vec2
from repro.model.observation import Observation

__all__ = ["ChangeWatcher"]


class ChangeWatcher:
    """Counts observed position changes of peer robots.

    A "change" is the event of observing a peer at a position different
    from the position it occupied at the observer's *previous*
    activation — exactly how the paper's proofs count ("r notes that
    the position of r' has changed twice").  Comparisons are exact:
    the model grants infinite precision, and every protocol movement is
    large enough to be representable.

    Counters are reset at the start of each protocol leg; the last
    *seen* positions are deliberately kept across resets, because a
    change is always relative to the previous sighting, not to the leg
    boundary.

    Under noisy sensing (:mod:`repro.noise`) exact comparison would
    count jitter as movement; ``min_change`` debounces the detector —
    only displacements beyond it count, and the reference position is
    only advanced when a change registers (so noise cannot "walk" the
    baseline).

    Args:
        count: number of robots.
        self_index: the observer (not watched).
        min_change: minimum displacement (local units) that counts as
            a change; 0 is the paper's exact model.
    """

    def __init__(self, count: int, self_index: int, min_change: float = 0.0) -> None:
        if count < 1:
            raise ProtocolError(f"watcher needs at least one robot, got {count}")
        if not (0 <= self_index < count):
            raise ProtocolError(f"self index {self_index} out of range")
        if min_change < 0.0:
            raise ProtocolError(f"min_change must be >= 0, got {min_change}")
        self._count = count
        self._self_index = self_index
        self._min_change = min_change
        self._last_seen: Dict[int, Optional[Vec2]] = {
            i: None for i in range(count) if i != self_index
        }
        self._changes: Dict[int, int] = {i: 0 for i in self._last_seen}

    @property
    def peers(self) -> List[int]:
        """The watched robot indices (everyone but the observer)."""
        return sorted(self._last_seen)

    def observe(self, observation: Observation) -> List[int]:
        """Ingest one activation snapshot; returns peers that changed."""
        if observation.self_index != self._self_index:
            raise ProtocolError("observation belongs to a different robot")
        changed: List[int] = []
        for index in self._last_seen:
            position = observation.position_of(index)
            previous = self._last_seen[index]
            if previous is None:
                self._last_seen[index] = position
                continue
            if self._min_change == 0.0:
                moved = position != previous
            else:
                moved = position.distance_to(previous) > self._min_change
            if moved:
                self._changes[index] += 1
                changed.append(index)
                self._last_seen[index] = position
            elif self._min_change == 0.0:
                self._last_seen[index] = position
            # Debounced mode: keep the old baseline on a non-change so
            # sub-threshold jitter cannot accumulate into one.
        return changed

    def reset(self, peers: Optional[Iterable[int]] = None) -> None:
        """Zero the change counters (all peers, or a subset).

        Last-seen positions are preserved — see the class docstring.
        """
        targets = self._last_seen.keys() if peers is None else list(peers)
        for index in targets:
            if index not in self._changes:
                raise ProtocolError(f"robot {index} is not a watched peer")
            self._changes[index] = 0

    def changes_of(self, peer: int) -> int:
        """Changes of one peer observed since the last reset."""
        if peer not in self._changes:
            raise ProtocolError(f"robot {peer} is not a watched peer")
        return self._changes[peer]

    def changed_at_least(self, peer: int, times: int) -> bool:
        """Whether ``peer`` changed at least ``times`` since the reset."""
        return self.changes_of(peer) >= times

    def all_changed_at_least(self, times: int) -> bool:
        """Whether *every* peer changed at least ``times`` (Section 4.2:
        "until it observes that the position of every robot changed
        twice")."""
        return all(c >= times for c in self._changes.values())

    def last_seen(self, peer: int) -> Optional[Vec2]:
        """The peer position recorded at the observer's last activation."""
        if peer not in self._last_seen:
            raise ProtocolError(f"robot {peer} is not a watched peer")
        return self._last_seen[peer]
