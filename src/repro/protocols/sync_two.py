"""Two synchronous robots: coding by side-steps (Section 3.1, Figure 1).

    "Each even step is used by each robot to send a bit in {0, 1}.  To
    send '0' ('1', respectively) to the other robot r', a robot r moves
    on its right (left, resp.) with respect to the direction given by
    r'.  [...] each odd step is used by the robots to come back to its
    first position."

The protocol is *silent*: a robot with nothing to send does not move.
Decoding only needs the side of the home-to-home line the sender
stepped to, a sign that shared chirality makes identical for both
robots (and scale-free, so private unit measures do not matter).

The closing remark of Section 3.1 — dividing the travel span into
``B`` displacement levels so one excursion carries ``log2(B)`` bits —
is implemented via ``alphabet_size``; with the default ``B = 2`` the
protocol is exactly the figure's, bit 0 stepping right and bit 1
stepping left.
"""

from __future__ import annotations

from typing import List, Optional

from repro.coding.symbols import SymbolCoder
from repro.errors import ProtocolError
from repro.geometry.vec import Vec2
from repro.model.observation import Observation
from repro.model.protocol import BindingInfo, BitEvent, Protocol

__all__ = ["SyncTwoProtocol"]

_ON_LINE_EPS_FACTOR = 1e-9


class SyncTwoProtocol(Protocol):
    """The Section 3.1 protocol for a synchronous pair of robots.

    Args:
        alphabet_size: number of displacement levels ``B`` (power of
            two).  ``B = 2`` is the paper's base protocol; larger
            alphabets implement the "send bytes" remark.
        span_fraction: the displacement band half-width as a fraction
            of the distance between the two robots' home positions.
            Both robots derive the band from the same geometric
            quantity, so their private unit measures cancel.  Must
            leave the per-step bound ``sigma`` sufficient, which is
            validated at bind time.
    """

    #: Section 3.1: "a robot that has no bit to send [...] does not
    #: move" — verified by the silence invariant monitor.
    idle_silent = True

    def __init__(self, alphabet_size: int = 2, span_fraction: float = 0.25) -> None:
        super().__init__()
        if not (0.0 < span_fraction <= 0.4):
            raise ProtocolError(
                f"span_fraction must be in (0, 0.4] to keep the robots apart, "
                f"got {span_fraction}"
            )
        self._span_fraction = span_fraction
        self._alphabet_size = alphabet_size
        self._coder: Optional[SymbolCoder] = None
        self._home: Vec2 = Vec2.zero()
        self._peer_home: Vec2 = Vec2.zero()
        self._peer_index: int = -1
        self._facing: Vec2 = Vec2.zero()  # home -> peer home, unit
        self._right: Vec2 = Vec2.zero()  # the sender's right of _facing
        self._home_distance: float = 0.0
        self._outbound: bool = False  # internal phase: about to step out?
        self._peer_was_home: bool = True

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    def _on_bind(self, info: BindingInfo) -> None:
        if info.count != 2:
            raise ProtocolError(
                f"SyncTwoProtocol is specified for exactly 2 robots, got {info.count}"
            )
        self._peer_index = 1 - info.index
        self._home = info.initial_positions[info.index]
        self._peer_home = info.initial_positions[self._peer_index]
        self._home_distance = self._home.distance_to(self._peer_home)
        if self._home_distance <= 0.0:
            raise ProtocolError("the two robots coincide")
        self._facing = (self._peer_home - self._home).normalized()
        # "Right" under the shared chirality: -90 degrees from the
        # facing direction, evaluated in the robot's local coordinates.
        self._right = self._facing.perp_cw()
        self._coder = SymbolCoder(self._alphabet_size, span=self._span_fraction)
        max_needed = self._span_fraction * self._home_distance
        if max_needed > info.sigma:
            raise ProtocolError(
                f"sigma={info.sigma:.6g} (local units) cannot cover the "
                f"maximum excursion {max_needed:.6g}; reduce span_fraction "
                f"or move the robots closer"
            )
        self._outbound = True

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def _decode(self, observation: Observation) -> List[BitEvent]:
        assert self._coder is not None
        events: List[BitEvent] = []
        peer_pos = observation.position_of(self._peer_index)
        offset = peer_pos - self._peer_home
        eps = _ON_LINE_EPS_FACTOR * self._home_distance
        if offset.norm() <= eps:
            self._peer_was_home = True
            return events
        if self._peer_was_home:
            # The peer's right, computed by us: the peer faces us, so
            # its facing is -_facing and its right is -_facing rotated
            # -90 degrees; shared chirality makes this the same
            # direction the peer used.
            peer_right = (-self._facing).perp_cw()
            fraction = peer_right.dot(offset) / self._home_distance
            # Positive displacement = the peer's right.  The coder's
            # level ladder runs left to right as symbols decrease (so
            # that with B=2 symbol/bit 0 is a right-step, per Fig. 1).
            symbol = self._coder.decode_displacement(-fraction)
            for bit in self._coder.symbols_to_bits([symbol]):
                events.append(
                    BitEvent(
                        time=observation.time,
                        src=self._peer_index,
                        dst=self.info.index,
                        bit=bit,
                    )
                )
        self._peer_was_home = False
        return events

    # ------------------------------------------------------------------
    # Movement rule
    # ------------------------------------------------------------------
    def _compute(self, observation: Observation) -> Vec2:
        assert self._coder is not None
        if not self._outbound:
            # Odd step: come back to the first position.
            self._outbound = True
            return self._home
        queued = self._collect_symbol()
        if queued is None:
            # Silent: nothing to transmit, do not move.
            return observation.self_position
        self._outbound = False
        displacement = -self._coder.displacement(queued) * self._home_distance
        return self._home + self._right * displacement

    def _collect_symbol(self) -> Optional[int]:
        """Pop up to ``bits_per_symbol`` queued bits into one symbol.

        Partial symbols are zero-padded, exactly like the symbol coder
        does for whole messages; with ``B = 2`` this is a plain pop.
        """
        assert self._coder is not None
        first = self._next_outgoing()
        if first is None:
            return None
        bits = [first[1]]
        while len(bits) < self._coder.bits_per_symbol:
            more = self._peek_outgoing()
            if more is None or more[0] != first[0]:
                break
            bits.append(self._next_outgoing()[1])
        symbols = self._coder.bits_to_symbols(bits)
        assert len(symbols) == 1
        return symbols[0]
