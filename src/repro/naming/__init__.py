"""Naming and addressing schemes.

One-to-one communication needs the sender to *address* a particular
receiver (the paper's Routing/Naming requirements).  Three regimes:

* identified systems — observable IDs give names for free
  (:mod:`repro.naming.identified`, Section 3.2);
* anonymous robots with sense of direction — a common total order from
  shared axes (:mod:`repro.naming.sod`, Section 3.3);
* anonymous robots with chirality only — no *common* naming exists in
  general (:mod:`repro.naming.symmetry`, Figure 3), but every robot can
  compute a *relative* naming from the smallest enclosing circle that
  all observers can reproduce (:mod:`repro.naming.sec_naming`,
  Section 3.4).
"""

from repro.naming.identified import identified_labels
from repro.naming.sod import sod_labels
from repro.naming.sec_naming import horizon_direction, relative_labels
from repro.naming.symmetry import (
    common_naming_is_impossible,
    figure3_configuration,
    local_view,
    rotational_symmetry_order,
    symmetric_view_pairs,
    symmetry_orbits,
)

__all__ = [
    "identified_labels",
    "sod_labels",
    "relative_labels",
    "horizon_direction",
    "rotational_symmetry_order",
    "symmetry_orbits",
    "symmetric_view_pairs",
    "local_view",
    "common_naming_is_impossible",
    "figure3_configuration",
]
