"""Naming in identified systems (Section 3.2).

When every robot carries a visible identifier, the diameter labels of
the granular scheme are simply the identifiers.  The paper labels
diameters ``0 .. n-1``; to accept arbitrary (distinct) integer IDs we
map each ID to its rank in sorted order, which every observer computes
identically from the observable IDs.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.errors import NamingError

__all__ = ["identified_labels"]


def identified_labels(observable_ids: Sequence[int]) -> Dict[int, int]:
    """Map tracking index -> diameter label from observable IDs.

    The label of a robot is the rank of its observable ID among all
    IDs (so IDs ``0..n-1`` label themselves, and arbitrary distinct
    IDs still yield the dense labels the granular scheme needs).

    Raises:
        NamingError: when IDs are missing or not pairwise distinct.
    """
    if not observable_ids:
        raise NamingError("identified naming needs at least one observable id")
    if len(set(observable_ids)) != len(observable_ids):
        raise NamingError(f"observable ids are not pairwise distinct: {list(observable_ids)}")
    by_id = sorted(range(len(observable_ids)), key=lambda i: observable_ids[i])
    return {index: rank for rank, index in enumerate(by_id)}
