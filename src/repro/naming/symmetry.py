"""Symmetric configurations and the Figure 3 obstruction.

Figure 3 of the paper shows six robots "scattered in the plane in such
a way that for every robot, there is another robot having the same
view", concluding that "they are not able to agree on a common
direction nor a common naming" even with chirality.

The obstruction is rotational symmetry: if a rotation by ``2*pi/k``
(``k >= 2``) about the configuration's centre maps the robot set onto
itself, then robots in the same orbit can have local frames that are
rotated copies of one another, making their entire world views
identical.  A deterministic naming rule — a function of the local view
— must then give orbit-mates the same self-label, which is absurd.

This module detects the symmetry order of a configuration, produces
the witness frame assignments that realise identical views, and
generates the Figure 3 instance.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.geometry.frames import Frame
from repro.perf.memo import shared_sec
from repro.geometry.vec import Vec2

__all__ = [
    "rotational_symmetry_order",
    "symmetric_view_pairs",
    "figure3_configuration",
]

_EPS = 1e-9


def _symmetry_center(positions: Sequence[Vec2]) -> Vec2:
    """The only candidate fixed point: the SEC centre.

    Any isometry mapping the configuration to itself maps its unique
    smallest enclosing circle to itself, hence fixes the centre.
    """
    return shared_sec(tuple(positions)).center


def _maps_to_self(positions: Sequence[Vec2], center: Vec2, angle: float) -> bool:
    """Whether rotating all points by ``angle`` about ``center`` permutes them."""
    rotated = [center + (p - center).rotated(angle) for p in positions]
    unmatched = list(positions)
    for q in rotated:
        for i, p in enumerate(unmatched):
            if p.distance_to(q) <= _EPS:
                del unmatched[i]
                break
        else:
            return False
    return True


def rotational_symmetry_order(positions: Sequence[Vec2]) -> int:
    """The largest ``k`` such that rotation by ``2*pi/k`` is a symmetry.

    Returns 1 for asymmetric configurations.  A robot located exactly
    at the centre is its own orbit and does not constrain ``k``, so
    candidates are divisors of the number of off-centre robots.
    """
    if not positions:
        raise ValueError("symmetry of an empty configuration is undefined")
    center = _symmetry_center(positions)
    off_center = sum(1 for p in positions if p.distance_to(center) > _EPS)
    if off_center == 0:
        return 1
    for k in range(off_center, 1, -1):
        if off_center % k == 0 and _maps_to_self(positions, center, 2.0 * math.pi / k):
            return k
    return 1


def symmetry_orbits(positions: Sequence[Vec2]) -> List[List[int]]:
    """Partition robot indices into orbits of the maximal rotation.

    Robots in the same orbit are mutually indistinguishable: there are
    frame assignments under which their views coincide.
    """
    k = rotational_symmetry_order(positions)
    center = _symmetry_center(positions)
    if k == 1:
        return [[i] for i in range(len(positions))]
    angle = 2.0 * math.pi / k
    assigned = [False] * len(positions)
    orbits: List[List[int]] = []
    for i, p in enumerate(positions):
        if assigned[i]:
            continue
        orbit = [i]
        assigned[i] = True
        current = p
        for _ in range(k - 1):
            current = center + (current - center).rotated(angle)
            for j, q in enumerate(positions):
                if not assigned[j] and q.distance_to(current) <= _EPS:
                    orbit.append(j)
                    assigned[j] = True
                    break
        orbits.append(sorted(orbit))
    return orbits


def symmetric_view_pairs(
    positions: Sequence[Vec2],
) -> List[Tuple[int, int, Frame, Frame]]:
    """Witnesses of indistinguishability for a symmetric configuration.

    For each orbit pair ``(i, j)`` under the maximal rotation, returns
    local frames ``(frame_i, frame_j)`` — same handedness, same scale,
    rotations differing by the symmetry angle — under which robot
    ``i``'s view of the configuration is point-for-point identical to
    robot ``j``'s.  An empty list means the configuration is
    asymmetric.
    """
    k = rotational_symmetry_order(positions)
    if k < 2:
        return []
    angle = 2.0 * math.pi / k
    pairs: List[Tuple[int, int, Frame, Frame]] = []
    for orbit in symmetry_orbits(positions):
        if len(orbit) < 2:
            continue
        base = orbit[0]
        for step, other in enumerate(orbit[1:], start=1):
            pairs.append(
                (
                    base,
                    other,
                    Frame(rotation=0.0, scale=1.0, handedness=1),
                    Frame(rotation=step * angle, scale=1.0, handedness=1),
                )
            )
    return pairs


def local_view(
    positions: Sequence[Vec2], subject: int, frame: Frame
) -> Tuple[Vec2, ...]:
    """A robot's entire world knowledge: all positions in its frame.

    Returned in a canonical (sorted) order, because an anonymous robot
    receives an unordered set of points.
    """
    origin = positions[subject]
    view = [frame.to_local(p, origin) for p in positions]
    rounded = sorted(view, key=lambda v: (round(v.x, 9), round(v.y, 9)))
    return tuple(rounded)


def figure3_configuration() -> List[Vec2]:
    """A six-robot configuration with the Figure 3 symmetry.

    Three antipodal pairs around the origin (2-fold rotational
    symmetry): for every robot there is another robot whose view can be
    made identical, so no deterministic common naming exists even with
    chirality.
    """
    half = [
        Vec2.from_polar(1.0, math.radians(10.0)),
        Vec2.from_polar(1.0, math.radians(60.0)),
        Vec2.from_polar(1.0, math.radians(140.0)),
    ]
    return half + [-p for p in half]


def common_naming_is_impossible(positions: Sequence[Vec2]) -> bool:
    """Decide the Figure 3 obstruction for a configuration.

    True when some rotation of order >= 2 maps the configuration to
    itself — the formal content of "they are not able to agree on a
    common naming".
    """
    return rotational_symmetry_order(positions) >= 2
