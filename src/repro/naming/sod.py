"""Naming for anonymous robots with sense of direction (Section 3.3).

Following Flocchini et al. [12], robots that agree on their y axes
(and, by chirality, on their x axes) can agree on a total order even
without observable IDs: "Each robot r labels every observed robot with
its local x-y coordinate [...].  Even if the robots do not agree on
their metric system, by sharing the same x- and y-axes, they agree on
the same order."

The key invariance: each robot's view differs from the world by a
translation and a *uniform positive scale* (rotation is fixed by the
shared axes), both of which preserve the per-axis order of
coordinates, hence the lexicographic order of points.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.errors import NamingError
from repro.geometry.vec import Vec2

__all__ = ["sod_labels"]


def sod_labels(positions: Sequence[Vec2], eps_factor: float = 1e-9) -> Dict[int, int]:
    """Map tracking index -> label from the shared-axes lexicographic order.

    Points are ordered by x, with ties (within a tolerance relative to
    the configuration extent) broken by y.  Exact coordinate ties on
    both axes are impossible for distinct robots.

    Args:
        positions: the configuration in the observer's local frame.
        eps_factor: relative tie tolerance.  Configurations with
            distinct-but-closer-than-tolerance x coordinates are
            rejected rather than silently mis-ordered, because
            different observers could then disagree.

    Raises:
        NamingError: on empty input or ambiguous near-ties.
    """
    if not positions:
        raise NamingError("sod naming needs at least one robot")
    extent = max(
        max(p.x for p in positions) - min(p.x for p in positions),
        max(p.y for p in positions) - min(p.y for p in positions),
        1.0,
    )
    eps = eps_factor * extent

    order = sorted(range(len(positions)), key=lambda i: (positions[i].x, positions[i].y))
    for a, b in zip(order, order[1:]):
        dx = abs(positions[a].x - positions[b].x)
        if 0.0 < dx <= eps:
            raise NamingError(
                f"ambiguous x-coordinate near-tie between robots {a} and {b} "
                f"(delta {dx:.3e} <= tolerance {eps:.3e})"
            )
    return {index: rank for rank, index in enumerate(order)}
