"""Relative naming from the smallest enclosing circle (Section 3.4).

With chirality but no sense of direction, no *common* naming exists in
general (see :mod:`repro.naming.symmetry`).  The paper's workaround is
a naming that is *relative to each robot* yet computable *by every
observer*:

1. all robots compute the (unique) smallest enclosing circle ``SEC``
   of ``P(t_0)`` with centre ``O``;
2. the horizon line ``H_r`` of robot ``r`` passes through ``r`` and
   ``O``;
3. the robots are numbered following the radii of ``SEC`` in the
   clockwise direction starting from ``H_r``; robots on the same
   radius are numbered "in the growing order starting from O".

Because the construction is a deterministic function of the
configuration and the subject robot, *any* robot can recompute *any*
other robot's labelling, which is what lets receivers resolve to whom
a movement-bit is addressed.

Conventions (documented choices where the paper is silent):

* "clockwise" is evaluated in the observer's local coordinates; shared
  chirality makes the sweep agree across observers.
* The subject's own radius has sweep angle 0, so the labels of robots
  on it start at 0 ("r is not necessarily labeled by 0 if some robots
  are located between itself and O on its radius").
* A robot located exactly at ``O`` lies on every radius; we place it
  first on the subject's own radius (sweep 0, distance 0), which every
  observer resolves identically.
* A *subject* located exactly at ``O`` has no horizon line; the
  construction fails with :class:`~repro.errors.NamingError`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.errors import NamingError
from repro.geometry.predicates import normalize_angle_positive
from repro.geometry.vec import Vec2
from repro.perf.memo import shared_sec

__all__ = ["relative_labels", "horizon_direction"]

_ANGLE_TIE_EPS = 1e-9
_TWO_PI = 2.0 * math.pi


def horizon_direction(positions: Sequence[Vec2], subject: int) -> Vec2:
    """Outward unit direction of the subject's horizon line ``H_r``.

    Points from the SEC centre ``O`` through the subject; this is the
    subject's private "North" used to orient its granular (the paper:
    "the Northern being given by the direction of Hr").

    Raises:
        NamingError: when the subject sits exactly at ``O``.
    """
    center = shared_sec(tuple(positions)).center
    offset = positions[subject] - center
    if offset.norm() <= _ANGLE_TIE_EPS:
        raise NamingError(
            f"robot {subject} is at the SEC centre: horizon line undefined"
        )
    return offset.normalized()


def relative_labels(
    positions: Sequence[Vec2],
    subject: int,
    sweep: int = -1,
) -> Dict[int, int]:
    """The Section 3.4 labelling of all robots relative to ``subject``.

    Args:
        positions: the configuration (any observer's local view; shared
            chirality makes the result observer-independent).
        subject: tracking index of the robot the naming is relative to.
        sweep: ``-1`` for the standard clockwise sweep in right-handed
            local coordinates (the default every robot derives from the
            shared chirality); ``+1`` flips it.

    Returns:
        A dict mapping tracking index -> label in ``0..n-1``.

    Raises:
        NamingError: when the subject is at the SEC centre, or two
            distinct radii are too close to order reliably.
    """
    n = len(positions)
    if n == 0:
        raise NamingError("relative naming needs at least one robot")
    if not (0 <= subject < n):
        raise NamingError(f"subject index {subject} out of range for {n} robots")
    if sweep not in (1, -1):
        raise NamingError(f"sweep must be +1 or -1, got {sweep}")

    center = shared_sec(tuple(positions)).center
    reference = positions[subject] - center
    if reference.norm() <= _ANGLE_TIE_EPS:
        raise NamingError(
            f"subject robot {subject} is at the SEC centre: horizon line undefined"
        )
    ref_angle = reference.angle()

    entries: List[Tuple[float, float, int]] = []
    for index, position in enumerate(positions):
        radial = position - center
        distance = radial.norm()
        if distance <= _ANGLE_TIE_EPS:
            # Robot at O: on every radius; convention places it on the
            # subject's radius (sweep angle 0) at distance 0.
            entries.append((0.0, 0.0, index))
            continue
        # CW sweep (sweep=-1) from reference to target is
        # ref_angle - target_angle normalised to [0, 2*pi).
        swept = normalize_angle_positive(sweep * (radial.angle() - ref_angle))
        entries.append((swept, distance, index))

    # Snap angles within a tolerance of 0 or 2*pi onto the reference
    # radius, and detect unorderable near-ties between distinct radii.
    snapped: List[Tuple[float, float, int]] = []
    for swept, distance, index in entries:
        if swept <= _ANGLE_TIE_EPS or _TWO_PI - swept <= _ANGLE_TIE_EPS:
            swept = 0.0
        snapped.append((swept, distance, index))
    snapped.sort(key=lambda e: (e[0], e[1], e[2]))

    labels: Dict[int, int] = {}
    for rank, (_, __, index) in enumerate(_merge_radius_groups(snapped)):
        labels[index] = rank
    return labels


def _merge_radius_groups(
    entries: List[Tuple[float, float, int]],
) -> List[Tuple[float, float, int]]:
    """Re-sort runs of near-equal angles by distance from the centre.

    After the primary sort, entries whose sweep angles differ by less
    than the tolerance belong to the same radius and must be ordered
    purely by distance ("in the growing order starting from O").
    """
    out: List[Tuple[float, float, int]] = []
    i = 0
    while i < len(entries):
        j = i + 1
        while j < len(entries) and entries[j][0] - entries[i][0] <= _ANGLE_TIE_EPS:
            j += 1
        group = sorted(entries[i:j], key=lambda e: (e[1], e[2]))
        out.extend(group)
        i = j
    return out
