"""Limited visibility — the Section 5 open problem, constructively.

    "Another issue would be the visibility capability of the robots.
    For instance, the following question could be investigated: 'Can
    one-to-one communication be achieved by a team of robots with
    limited visibility?'"

This subpackage answers the question positively for *connected*
visibility graphs of identified robots with sense of direction:

* :class:`~repro.visibility.simulator.VisibilitySimulator` restricts
  every observation (and the bound ``P(t_0)`` knowledge) to robots
  within a visibility radius;
* :class:`~repro.visibility.protocol.LocalGranularProtocol` is a
  granular movement protocol that needs only local information — its
  granular radius is derived from *visible* neighbours plus the
  visibility bound itself, which keeps it collision-safe even against
  invisible robots;
* :class:`~repro.visibility.flooding.FloodRouter` turns one-hop
  movement messages into end-to-end delivery by constrained flooding
  with duplicate suppression — communication reaches any robot of a
  connected visibility graph.
"""

from repro.visibility.graph import (
    shortest_route,
    visibility_graph,
    visibility_is_connected,
    visibility_neighbors,
)
from repro.visibility.protocol import LocalGranularProtocol
from repro.visibility.simulator import VisibilitySimulator
from repro.visibility.flooding import FloodRouter, RoutedMessage

__all__ = [
    "visibility_graph",
    "visibility_neighbors",
    "visibility_is_connected",
    "shortest_route",
    "VisibilitySimulator",
    "LocalGranularProtocol",
    "FloodRouter",
    "RoutedMessage",
]
