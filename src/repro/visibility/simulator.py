"""The SSM engine with a visibility radius.

Identical to :class:`repro.model.simulator.Simulator` except that every
observation — and the ``P(t_0)`` knowledge handed out at binding — is
restricted to robots within the visibility radius of the observer.

The visibility relation is evaluated on the initial configuration: all
granular-protocol movements stay within bands much smaller than any
sensible radius, so treating the graph as static over a run loses
nothing and keeps "who can decode whom" well-defined.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ModelError
from repro.model.robot import Robot
from repro.model.scheduler import Scheduler
from repro.model.simulator import Simulator
from repro.model.trace import TracePolicy

__all__ = ["VisibilitySimulator"]


class VisibilitySimulator(Simulator):
    """A swarm where robots only see within ``visibility_radius``.

    Args:
        robots: the swarm (as for the base simulator).
        visibility_radius: world-units range; must be positive.
        scheduler: activation policy.
        caching: forwarded to the base engine (hot-path caches).
        trace_policy: forwarded to the base engine (trace bounding).
    """

    def __init__(
        self,
        robots: Sequence[Robot],
        visibility_radius: float,
        scheduler: Optional[Scheduler] = None,
        *,
        caching: bool = True,
        trace_policy: Optional[TracePolicy] = None,
    ) -> None:
        if visibility_radius <= 0.0:
            raise ModelError(
                f"visibility_radius must be positive, got {visibility_radius}"
            )
        self._visibility_radius = visibility_radius
        super().__init__(
            robots, scheduler, caching=caching, trace_policy=trace_policy
        )

    def _world_visibility_radius(self) -> Optional[float]:
        return self._visibility_radius
