"""End-to-end delivery over a visibility graph by constrained flooding.

Each robot only talks to robots it can see; a message for a distant
robot is wrapped in a small routed envelope and flooded: every robot
that receives an envelope it has not seen before either delivers it
(if it is the final destination) or re-sends it to all its visible
neighbours.  Duplicate suppression is by (origin, sequence) pair and a
hop-count TTL bounds worst-case traffic.

Envelope layout (before the payload):

    byte 0  origin index
    byte 1  final destination index
    byte 2  sequence number (per origin, mod 256)
    byte 3  TTL (remaining hops)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple, Union

from repro.channels.transport import MovementChannel
from repro.errors import ChannelError
from repro.visibility.protocol import LocalGranularProtocol

__all__ = ["RoutedMessage", "FloodRouter"]

_HEADER = 4


@dataclass(frozen=True, slots=True)
class RoutedMessage:
    """A message delivered end-to-end by the flooding router.

    Attributes:
        origin: the robot that first sent the message.
        payload: the message bytes.
        delivered_at: instant of first delivery at the destination.
        hops_remaining: the TTL left when it arrived (initial TTL minus
            hops taken).
    """

    origin: int
    payload: bytes
    delivered_at: int
    hops_remaining: int


class FloodRouter:
    """One robot's routing layer over its movement channel.

    Args:
        channel: the robot's movement channel; its protocol must be a
            :class:`LocalGranularProtocol` (the router asks it who is
            visible).
        ttl: initial hop budget; must be at least the graph diameter
            for guaranteed delivery.  Defaults to 16.
    """

    def __init__(self, channel: MovementChannel, ttl: int = 16) -> None:
        protocol = channel.protocol
        if not isinstance(protocol, LocalGranularProtocol):
            raise ChannelError("FloodRouter requires a LocalGranularProtocol channel")
        if not (1 <= ttl <= 255):
            raise ChannelError(f"ttl must be in [1, 255], got {ttl}")
        self._channel = channel
        self._protocol = protocol
        self._ttl = ttl
        self._sequence = 0
        self._seen: Set[Tuple[int, int]] = set()
        self._inbox: List[RoutedMessage] = []
        self._forwarded = 0

    @property
    def index(self) -> int:
        """The router's robot index."""
        return self._protocol.info.index

    @property
    def inbox(self) -> List[RoutedMessage]:
        """Messages delivered to this robot, de-duplicated."""
        return list(self._inbox)

    @property
    def forwarded(self) -> int:
        """How many envelopes this robot relayed onward."""
        return self._forwarded

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, dst: int, payload: Union[str, bytes]) -> int:
        """Route a message to ``dst``; returns copies transmitted now.

        A visible destination gets one direct copy; otherwise the
        envelope is flooded to every visible neighbour.
        """
        data = payload.encode("utf-8") if isinstance(payload, str) else bytes(payload)
        if dst == self.index:
            raise ChannelError("cannot route a message to oneself")
        sequence = self._sequence % 256
        self._sequence += 1
        self._seen.add((self.index, sequence))
        envelope = bytes((self.index, dst, sequence, self._ttl)) + data
        return self._transmit(envelope, dst, exclude=None)

    # ------------------------------------------------------------------
    # Progress — call after simulator steps
    # ------------------------------------------------------------------
    def pump(self, now: int) -> List[RoutedMessage]:
        """Process arrivals: deliver, forward, suppress duplicates."""
        fresh: List[RoutedMessage] = []
        for message in self._channel.poll():
            if len(message.payload) < _HEADER:
                raise ChannelError(
                    f"malformed routed envelope of {len(message.payload)} bytes"
                )
            origin, dst, sequence, ttl = message.payload[:_HEADER]
            data = message.payload[_HEADER:]
            key = (origin, sequence)
            if key in self._seen:
                continue
            self._seen.add(key)
            if dst == self.index:
                routed = RoutedMessage(
                    origin=origin,
                    payload=data,
                    delivered_at=now,
                    hops_remaining=ttl,
                )
                self._inbox.append(routed)
                fresh.append(routed)
                continue
            if ttl <= 1:
                continue  # hop budget exhausted
            envelope = bytes((origin, dst, sequence, ttl - 1)) + data
            self._forwarded += self._transmit(envelope, dst, exclude=message.src)
        return fresh

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _transmit(self, envelope: bytes, dst: int, exclude) -> int:
        if self._protocol.can_see(dst):
            self._channel.send(dst, envelope)
            return 1
        copies = 0
        for neighbor in self._protocol.visible_peers():
            if neighbor == exclude:
                continue
            self._channel.send(neighbor, envelope)
            copies += 1
        return copies


def pump_routers(routers: Sequence[FloodRouter], now: int) -> None:
    """Convenience: pump every router once (after a simulator step)."""
    for router in routers:
        router.pump(now)
