"""Visibility graphs over robot configurations.

Robots ``i`` and ``j`` are mutually visible when their distance is at
most the visibility radius; the resulting graph decides which pairs can
exchange movement signals directly and which need relaying.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

import networkx as nx

from repro.errors import ModelError
from repro.geometry.vec import Vec2

__all__ = [
    "visibility_graph",
    "visibility_neighbors",
    "visibility_is_connected",
    "shortest_route",
]


def visibility_graph(positions: Sequence[Vec2], radius: float) -> nx.Graph:
    """The undirected visibility graph of a configuration.

    Nodes are tracking indices; an edge joins every pair at distance
    at most ``radius``.
    """
    if radius <= 0.0:
        raise ModelError(f"visibility radius must be positive, got {radius}")
    graph = nx.Graph()
    graph.add_nodes_from(range(len(positions)))
    for i in range(len(positions)):
        for j in range(i + 1, len(positions)):
            if positions[i].distance_to(positions[j]) <= radius:
                graph.add_edge(i, j)
    return graph


def visibility_neighbors(positions: Sequence[Vec2], radius: float) -> Dict[int, Set[int]]:
    """Per-robot neighbour sets under the visibility radius."""
    graph = visibility_graph(positions, radius)
    return {i: set(graph.neighbors(i)) for i in graph.nodes}


def visibility_is_connected(positions: Sequence[Vec2], radius: float) -> bool:
    """Whether every robot can (transitively) reach every other.

    Connectivity is the natural necessary condition for one-to-one
    communication under limited visibility: a robot in an unreachable
    component can never learn anything about the others.
    """
    graph = visibility_graph(positions, radius)
    if graph.number_of_nodes() == 0:
        raise ModelError("connectivity of an empty swarm is undefined")
    return nx.is_connected(graph)


def shortest_route(
    positions: Sequence[Vec2], radius: float, src: int, dst: int
) -> Optional[List[int]]:
    """A fewest-hops relay route from ``src`` to ``dst``, or None.

    Used by analysis and tests; the runtime router floods instead of
    source-routing (robots only know their own neighbourhoods).
    """
    graph = visibility_graph(positions, radius)
    try:
        return nx.shortest_path(graph, src, dst)
    except nx.NetworkXNoPath:
        return None
