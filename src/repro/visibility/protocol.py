"""A granular protocol that needs only local information.

The Section 3.2 scheme quietly uses global knowledge twice: the
Voronoi preprocessing reads all positions, and decoding reads every
robot's movement.  Under limited visibility both are replaced by local
equivalents:

* **granular radius** — half of ``min(visibility radius, distance to
  the nearest *visible* robot)``.  If the true nearest neighbour is
  invisible it is farther than the visibility radius, so this bound is
  never larger than half the true nearest-neighbour distance: the
  granulars of *all* robots, visible or not, stay disjoint and the
  collision guarantee survives.
* **decoding** — only visible robots are watched; their homes are the
  positions observed at ``t_0`` (invisible robots cannot be decoded,
  which is exactly why end-to-end delivery needs the flooding router).

Assumptions: an identified system whose observable IDs are the fleet
indices ``0 .. n-1`` (a static mission roster), and sense of direction;
diameters are labelled by ID exactly as in Section 3.2.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ProtocolError
from repro.geometry.granular import Granular
from repro.geometry.vec import Vec2
from repro.model.observation import Observation
from repro.model.protocol import BindingInfo, BitEvent, Protocol

__all__ = ["LocalGranularProtocol"]

_OFF_HOME_EPS_FACTOR = 1e-7


class LocalGranularProtocol(Protocol):
    """Granular routing for identified robots with limited visibility.

    Args:
        excursion_fraction: excursion length as a fraction of the
            (locally derived) granular radius.
    """

    def __init__(self, excursion_fraction: float = 0.45) -> None:
        super().__init__()
        if not (0.0 < excursion_fraction < 1.0):
            raise ProtocolError(
                f"excursion_fraction must be in (0, 1), got {excursion_fraction}"
            )
        self._excursion_fraction = excursion_fraction
        self._north = Vec2(0.0, 1.0)
        self._homes: Dict[int, Vec2] = {}  # visible robots only
        self._granulars: Dict[int, Granular] = {}
        self._step_out = 0.0
        self._outbound = True
        self._peer_was_home: Dict[int, bool] = {}
        self._visibility = 0.0

    # ------------------------------------------------------------------
    # Binding / local preprocessing
    # ------------------------------------------------------------------
    def _on_bind(self, info: BindingInfo) -> None:
        if info.count < 2:
            raise ProtocolError("routing needs at least 2 robots")
        if info.observable_ids is None:
            raise ProtocolError("LocalGranularProtocol requires an identified system")
        if any(observable != i for i, observable in enumerate(info.observable_ids)):
            raise ProtocolError(
                "LocalGranularProtocol assumes the static-roster convention "
                "observable_id == index"
            )
        if info.visibility_radius is None:
            raise ProtocolError(
                "LocalGranularProtocol expects a visibility-limited system; "
                "use SyncGranularProtocol under unlimited visibility"
            )
        self._visibility = info.visibility_radius

        for i, position in enumerate(info.initial_positions):
            if position is not None:
                self._homes[i] = position
        me = info.index
        if me not in self._homes:  # pragma: no cover - self always visible
            raise ProtocolError("observer missing from its own P(t0) knowledge")

        visible_others = [p for i, p in self._homes.items() if i != me]
        if visible_others:
            nearest = min(self._homes[me].distance_to(p) for p in visible_others)
        else:
            nearest = self._visibility
        my_radius = 0.5 * min(self._visibility, nearest)

        for i, home in self._homes.items():
            self._granulars[i] = Granular(
                center=home,
                radius=my_radius if i == me else self._visibility,
                num_diameters=info.count,
                zero_direction=self._north,
                sweep=-1,
            )
        self._step_out = min(self._excursion_fraction * my_radius, info.sigma)
        self._peer_was_home = {i: True for i in self._homes if i != me}

    # ------------------------------------------------------------------
    # Visibility queries (used by the router)
    # ------------------------------------------------------------------
    def visible_peers(self) -> List[int]:
        """The robots this one can see (hence address directly)."""
        return sorted(i for i in self._homes if i != self.info.index)

    def can_see(self, index: int) -> bool:
        """Whether a robot is within this robot's visibility range."""
        return index in self._homes

    # ------------------------------------------------------------------
    # Decoding — visible robots only
    # ------------------------------------------------------------------
    def _decode(self, observation: Observation) -> List[BitEvent]:
        events: List[BitEvent] = []
        me = self.info.index
        threshold = _OFF_HOME_EPS_FACTOR * self._visibility
        for j in self._peer_was_home:
            position = observation.get(j)
            if position is None:  # pragma: no cover - static visibility
                continue
            offset = position.distance_to(self._homes[j])
            if offset <= threshold:
                self._peer_was_home[j] = True
                continue
            if self._peer_was_home[j]:
                label, positive = self._granulars[j].classify(position)
                events.append(
                    BitEvent(
                        time=observation.time,
                        src=j,
                        dst=label,
                        bit=0 if positive else 1,
                    )
                )
            self._peer_was_home[j] = False
        return events

    # ------------------------------------------------------------------
    # Movement rule
    # ------------------------------------------------------------------
    def _compute(self, observation: Observation) -> Vec2:
        me = self.info.index
        if not self._outbound:
            self._outbound = True
            return self._homes[me]
        queued = self._peek_outgoing()
        if queued is None:
            return observation.self_position  # silent
        dst, bit = queued
        if not self.can_see(dst):
            raise ProtocolError(
                f"robot {me} cannot address invisible robot {dst} directly; "
                "route through the FloodRouter"
            )
        self._next_outgoing()
        self._outbound = False
        return self._granulars[me].target_point(
            dst, positive=(bit == 0), distance=self._step_out
        )
