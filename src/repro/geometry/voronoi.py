"""Voronoi diagrams by half-plane intersection.

Definition 3.1 of the paper: the Voronoi cell of site ``p_i`` is the
set of points strictly closer to ``p_i`` than to any other site.  Cells
are convex; we compute each cell independently as the intersection of
the bisector half-planes against all other sites, clipped to a generous
bounding box (unbounded cells only matter far from the swarm, and the
protocols never move a robot outside its *granular*, which is tiny by
comparison).

Complexity is O(n^2) per diagram — entirely adequate for swarm sizes
(the paper's figures use n = 12) and much easier to verify than
Fortune's sweep.  Tests cross-check against ``scipy.spatial.Voronoi``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.geometry.convex import ConvexPolygon
from repro.geometry.lines import HalfPlane
from repro.geometry.predicates import DEFAULT_EPS
from repro.geometry.vec import Vec2

__all__ = ["VoronoiCell", "voronoi_cell", "voronoi_diagram", "nearest_neighbor_distance"]

_BOX_MARGIN_FACTOR = 4.0
_MIN_BOX_HALF_WIDTH = 1.0


@dataclass(frozen=True)
class VoronoiCell:
    """One cell of a Voronoi diagram.

    Attributes:
        site: the generating robot position.
        polygon: the cell clipped to the diagram's bounding box,
            as a CCW convex polygon.
        inradius: radius of the largest disc centred at ``site`` and
            enclosed in the *true* (unclipped) cell — i.e. half the
            distance to the nearest other site, the paper's granular
            radius.  For a single-site diagram this is the clipped
            box's inradius.
    """

    site: Vec2
    polygon: ConvexPolygon
    inradius: float

    def contains(self, point: Vec2, eps: float = DEFAULT_EPS) -> bool:
        """Closed containment in the (clipped) cell polygon."""
        return self.polygon.contains(point, eps)


def _bounding_box(sites: Sequence[Vec2]) -> ConvexPolygon:
    """A box enclosing all sites with a wide margin."""
    min_x = min(s.x for s in sites)
    max_x = max(s.x for s in sites)
    min_y = min(s.y for s in sites)
    max_y = max(s.y for s in sites)
    # A symmetric half-width from the *overall* extent, so degenerate
    # (e.g. collinear) configurations still get a roomy box.
    extent = max(max_x - min_x, max_y - min_y)
    half = max(extent * _BOX_MARGIN_FACTOR, _MIN_BOX_HALF_WIDTH)
    cx = 0.5 * (min_x + max_x)
    cy = 0.5 * (min_y + max_y)
    return ConvexPolygon.axis_aligned_box(
        Vec2(cx - half, cy - half), Vec2(cx + half, cy + half)
    )


def nearest_neighbor_distance(site: Vec2, others: Sequence[Vec2]) -> float:
    """Distance from ``site`` to the closest of ``others``.

    Raises:
        ValueError: when ``others`` is empty.
    """
    if not others:
        raise ValueError("nearest_neighbor_distance needs at least one other site")
    return min(site.distance_to(o) for o in others)


def voronoi_cell(
    site: Vec2,
    all_sites: Sequence[Vec2],
    eps: float = DEFAULT_EPS,
) -> VoronoiCell:
    """The Voronoi cell of ``site`` within ``all_sites``.

    ``site`` must be an element of ``all_sites``; duplicate sites are
    rejected because coincident robots have empty cells (and the SSM
    protocols assume distinct positions).
    """
    others = [s for s in all_sites if s != site]
    if len(others) == len(all_sites):
        raise ValueError("site must be one of all_sites")
    for other in others:
        if site.distance_to(other) <= eps:
            raise ValueError(f"duplicate site at {other!r}: Voronoi cell would be empty")

    polygon = _bounding_box(list(all_sites))
    for other in others:
        polygon = polygon.clipped(HalfPlane.closer_to(site, other), eps)
        if polygon.is_empty():  # pragma: no cover - cannot happen for a valid site
            break

    if others:
        inradius = nearest_neighbor_distance(site, others) / 2.0
    else:
        inradius = polygon.distance_to_boundary(site)
    return VoronoiCell(site=site, polygon=polygon, inradius=inradius)


def voronoi_diagram(
    sites: Sequence[Vec2],
    eps: float = DEFAULT_EPS,
) -> Dict[Vec2, VoronoiCell]:
    """Every site's Voronoi cell, keyed by site position.

    Exactly the "first preprocessing step" of Section 3.2: each robot
    computes the diagram of the observed configuration and thereafter
    confines its movements to its own cell, which guarantees collision
    avoidance.
    """
    site_list: List[Vec2] = list(sites)
    if not site_list:
        raise ValueError("voronoi_diagram needs at least one site")
    if len(set(site_list)) != len(site_list):
        raise ValueError("sites must be pairwise distinct")
    return {site: voronoi_cell(site, site_list, eps) for site in site_list}
