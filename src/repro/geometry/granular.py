"""Granulars — the sliced communication discs of Sections 3.2-3.4, 4.2.

The *granular* ``g_r`` of robot ``r`` is the largest disc centred on
``r`` and enclosed in ``r``'s Voronoi cell; its radius is half the
distance to ``r``'s nearest neighbour.  The disc is sliced by ``m``
diameters (``2m`` slices, adjacent diameters ``pi/m`` apart).  Diameter
0 is aligned on an agreed reference direction — the common North when
the robots have sense of direction (Section 3.2), or the robot's own
horizon line ``H_r`` when they only share chirality (Section 3.4) — and
the remaining diameters are numbered "in the natural order following
the clockwise direction".

Because all robots share handedness, they agree on the clockwise sweep
and hence on the labelling; the :class:`Granular` below therefore takes
the sweep direction as an explicit parameter instead of hard-coding
screen-clockwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import AmbiguousDirectionError
from repro.geometry.predicates import DEFAULT_EPS, normalize_angle_positive
from repro.geometry.vec import Vec2
from repro.geometry.voronoi import nearest_neighbor_distance

__all__ = ["Granular", "granular_radius"]


def granular_radius(site: Vec2, others: Sequence[Vec2]) -> float:
    """Radius of the granular of a robot at ``site``.

    Half the nearest-neighbour distance: the largest disc centred on
    the site that fits inside its Voronoi cell (every bisector is at
    exactly half the distance to the corresponding neighbour).
    """
    return nearest_neighbor_distance(site, others) / 2.0


@dataclass(frozen=True)
class Granular:
    """A sliced granular disc.

    Attributes:
        center: the robot position the disc is centred on.
        radius: disc radius (> 0).
        num_diameters: ``m`` — number of labelled diameters
            (``2m`` slices).  Section 3.2 uses ``m = n`` (one diameter
            per robot id); Section 4.2 uses ``m = n + 1`` (the extra
            diameter is the idle slice ``kappa``).
        zero_direction: unit vector of the *positive end* of diameter
            0 (the common North, or the outward horizon direction).
        sweep: ``-1`` for a mathematically-clockwise labelling sweep
            (the convention when local frames are right-handed), ``+1``
            for counter-clockwise.  All robots sharing chirality derive
            the same value.
    """

    center: Vec2
    radius: float
    num_diameters: int
    zero_direction: Vec2
    sweep: int = -1

    def __post_init__(self) -> None:
        if self.radius <= 0.0:
            raise ValueError(f"granular radius must be > 0, got {self.radius}")
        if self.num_diameters < 1:
            raise ValueError(
                f"granular needs at least one diameter, got {self.num_diameters}"
            )
        if self.sweep not in (1, -1):
            raise ValueError(f"sweep must be +1 or -1, got {self.sweep}")
        norm = self.zero_direction.norm()
        if norm == 0.0:
            raise ValueError("zero_direction must be nonzero")
        if not math.isclose(norm, 1.0, abs_tol=1e-12):
            object.__setattr__(self, "zero_direction", self.zero_direction / norm)

    # ------------------------------------------------------------------
    # Geometry of the labelled diameters
    # ------------------------------------------------------------------
    @property
    def slice_angle(self) -> float:
        """Angle between adjacent diameters: ``pi / m``."""
        return math.pi / self.num_diameters

    def diameter_direction(self, label: int, positive: bool = True) -> Vec2:
        """Unit vector of one end of a labelled diameter.

        The *positive* end of diameter ``label`` is ``zero_direction``
        rotated by ``label * pi/m`` in the sweep direction; in the
        paper's Section 3.2 wording, that is the
        "Northern/Eastern/North-Eastern" end, used to signal bit 0.
        The negative (Southern/Western) end signals bit 1.
        """
        self._check_label(label)
        direction = self.zero_direction.rotated(self.sweep * label * self.slice_angle)
        return direction if positive else -direction

    def target_point(self, label: int, positive: bool, distance: float) -> Vec2:
        """The point at ``distance`` from the centre along a diameter end.

        Raises:
            ValueError: when the distance would leave the open disc
                (the protocols must stay strictly inside the granular
                to preserve collision avoidance).
        """
        if not (0.0 < distance < self.radius):
            raise ValueError(
                f"distance must be in (0, {self.radius}), got {distance}"
            )
        return self.center + self.diameter_direction(label, positive) * distance

    def contains(self, point: Vec2, eps: float = DEFAULT_EPS) -> bool:
        """Whether the point lies in the closed granular disc."""
        return self.center.distance_to(point) <= self.radius + eps

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def classify(
        self,
        point: Vec2,
        angle_tolerance: float | None = None,
        eps: float = DEFAULT_EPS,
    ) -> Tuple[int, bool]:
        """Decode a displaced position into ``(label, positive_end)``.

        Observers decode a robot's movement by mapping its off-centre
        position back to the granular diameter it travelled along.

        Args:
            point: the observed position, distinct from the centre.
            angle_tolerance: maximum angular deviation from the exact
                diameter direction; defaults to a quarter of the
                half-slice angle, which rejects positions that fall
                ambiguously between diameters.
            eps: minimum radial displacement considered a movement.

        Raises:
            AmbiguousDirectionError: when the point is at the centre or
                not aligned with any diameter within tolerance.
        """
        offset = point - self.center
        if offset.norm() <= eps:
            raise AmbiguousDirectionError("point coincides with the granular centre")
        if angle_tolerance is None:
            angle_tolerance = self.slice_angle / 4.0

        # Sweep angle from the zero direction, measured in the sweep
        # direction, in [0, 2*pi).
        raw = offset.angle() - self.zero_direction.angle()
        swept = normalize_angle_positive(self.sweep * raw)

        index = round(swept / self.slice_angle) % (2 * self.num_diameters)
        deviation = abs(swept - round(swept / self.slice_angle) * self.slice_angle)
        if deviation > angle_tolerance:
            raise AmbiguousDirectionError(
                f"direction deviates {deviation:.4f} rad from the nearest "
                f"diameter (tolerance {angle_tolerance:.4f})"
            )
        if index < self.num_diameters:
            return index, True
        return index - self.num_diameters, False

    def _check_label(self, label: int) -> None:
        if not (0 <= label < self.num_diameters):
            raise ValueError(
                f"diameter label must be in [0, {self.num_diameters}), got {label}"
            )
