"""Local robot coordinate systems.

Each robot in the SSM model "has its own local x-y Cartesian coordinate
system with its own unit measure".  A :class:`Frame` captures the three
degrees of freedom the paper manipulates:

* a **rotation** — where the local +x axis points in the world;
* a **unit scale** — the robot's private unit of length;
* a **handedness** — whether the local +y axis is +90° (right-handed)
  or -90° (left-handed) from the local +x axis.

"Chirality" in the paper means all robots share the same handedness;
"sense of direction" means they additionally agree on the orientation
of their y axes (and hence, given chirality, on their x axes).  The
:func:`make_frames` factory generates frame families for each
capability regime so tests can check exactly which assumptions each
protocol needs.

The frame's *origin* is not stored: a robot's origin is its current
position, which changes as it moves, so transform methods take the
origin as an argument.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Literal, Sequence

from repro.geometry.vec import Vec2

__all__ = ["Frame", "make_frames", "FrameRegime"]

FrameRegime = Literal["identical", "sense_of_direction", "chirality", "adversarial"]


@dataclass(frozen=True, slots=True)
class Frame:
    """An origin-free local coordinate system.

    Attributes:
        rotation: angle (radians, CCW) of the local +x axis in world
            coordinates.
        scale: length of one local unit in world units; must be > 0.
        handedness: ``+1`` for a right-handed frame (local +y is +90°
            CCW from local +x, like the world frame), ``-1`` for a
            left-handed one.
    """

    rotation: float = 0.0
    scale: float = 1.0
    handedness: int = 1

    def __post_init__(self) -> None:
        if self.scale <= 0.0:
            raise ValueError(f"frame scale must be positive, got {self.scale}")
        if self.handedness not in (1, -1):
            raise ValueError(f"handedness must be +1 or -1, got {self.handedness}")

    # ------------------------------------------------------------------
    # Basis vectors (world coordinates)
    # ------------------------------------------------------------------
    @property
    def x_axis(self) -> Vec2:
        """World direction of the local +x axis (unit length)."""
        return Vec2.unit(self.rotation)

    @property
    def y_axis(self) -> Vec2:
        """World direction of the local +y axis (unit length)."""
        base = self.x_axis.perp_ccw()
        return base if self.handedness == 1 else -base

    # ------------------------------------------------------------------
    # Point transforms
    # ------------------------------------------------------------------
    def to_local(self, world_point: Vec2, origin: Vec2) -> Vec2:
        """Express a world point in this frame centred at ``origin``."""
        delta = world_point - origin
        return Vec2(
            delta.dot(self.x_axis) / self.scale,
            delta.dot(self.y_axis) / self.scale,
        )

    def to_world(self, local_point: Vec2, origin: Vec2) -> Vec2:
        """Map a local point (frame centred at ``origin``) to the world."""
        return (
            origin
            + self.x_axis * (local_point.x * self.scale)
            + self.y_axis * (local_point.y * self.scale)
        )

    # ------------------------------------------------------------------
    # Direction transforms (scale-free origin-free)
    # ------------------------------------------------------------------
    def direction_to_local(self, world_direction: Vec2) -> Vec2:
        """Rotate/reflect a world direction into local coordinates.

        Length is preserved (no unit-scale division): directions are
        used for decoding *which way* a robot moved, where only the
        angle matters.
        """
        return Vec2(
            world_direction.dot(self.x_axis),
            world_direction.dot(self.y_axis),
        )

    def direction_to_world(self, local_direction: Vec2) -> Vec2:
        """Rotate/reflect a local direction into world coordinates."""
        return (
            self.x_axis * local_direction.x + self.y_axis * local_direction.y
        )

    # ------------------------------------------------------------------
    # Capability queries
    # ------------------------------------------------------------------
    def shares_handedness_with(self, other: "Frame") -> bool:
        """Chirality test: do the two frames agree on handedness?"""
        return self.handedness == other.handedness

    def shares_y_direction_with(self, other: "Frame", eps: float = 1e-12) -> bool:
        """Sense-of-direction test: do the +y axes point the same way?"""
        return self.y_axis.dot(other.y_axis) > 1.0 - eps


def make_frames(
    count: int,
    regime: FrameRegime,
    seed: int = 0,
    scale_range: Sequence[float] = (0.5, 2.0),
) -> List[Frame]:
    """Generate ``count`` local frames under a capability regime.

    Regimes:

    * ``"identical"`` — every robot uses the world frame (useful as a
      control in tests).
    * ``"sense_of_direction"`` — shared y-axis orientation and shared
      handedness, but private unit scales.  This is the Section 3.2 /
      3.3 assumption.
    * ``"chirality"`` — shared handedness only: private rotations and
      scales.  This is the Section 3.4 / 4.2 assumption.
    * ``"adversarial"`` — private rotations, scales *and* handedness;
      no protocol in the paper works here, and tests verify that.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    lo, hi = scale_range
    if not (0.0 < lo <= hi):
        raise ValueError(f"invalid scale range {scale_range!r}")
    rng = random.Random(seed)
    frames: List[Frame] = []
    for _ in range(count):
        scale = rng.uniform(lo, hi)
        if regime == "identical":
            frames.append(Frame())
        elif regime == "sense_of_direction":
            frames.append(Frame(rotation=0.0, scale=scale, handedness=1))
        elif regime == "chirality":
            frames.append(
                Frame(rotation=rng.uniform(0.0, 2.0 * math.pi), scale=scale, handedness=1)
            )
        elif regime == "adversarial":
            frames.append(
                Frame(
                    rotation=rng.uniform(0.0, 2.0 * math.pi),
                    scale=scale,
                    handedness=rng.choice((1, -1)),
                )
            )
        else:  # pragma: no cover - guarded by Literal type
            raise ValueError(f"unknown frame regime {regime!r}")
    return frames
