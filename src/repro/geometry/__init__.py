"""Geometric substrate for the stigmergic-robot simulation.

The paper's robots are points in the Euclidean plane; every protocol is
ultimately a geometric construction (Voronoi cells, granular discs,
smallest enclosing circles, horizon lines).  This subpackage implements
all of those constructions from scratch.

Public surface:

* :class:`~repro.geometry.vec.Vec2` — immutable 2-D vector / point.
* :mod:`~repro.geometry.predicates` — orientation and angle predicates.
* :class:`~repro.geometry.frames.Frame` — local robot coordinate systems.
* :class:`~repro.geometry.lines.Line` / :class:`~repro.geometry.lines.Segment`
  / :class:`~repro.geometry.lines.HalfPlane`.
* :class:`~repro.geometry.circle.Circle` and
  :func:`~repro.geometry.sec.smallest_enclosing_circle`.
* :func:`~repro.geometry.voronoi.voronoi_cell` /
  :func:`~repro.geometry.voronoi.voronoi_diagram`.
* :class:`~repro.geometry.granular.Granular` — the sliced communication
  disc of Sections 3.2-3.4 and 4.2.
"""

from repro.geometry.vec import Vec2
from repro.geometry.predicates import (
    DEFAULT_EPS,
    angle_ccw,
    angle_cw,
    angle_of,
    almost_equal,
    normalize_angle,
    orientation,
    side_of_line,
)
from repro.geometry.frames import Frame
from repro.geometry.lines import HalfPlane, Line, Segment
from repro.geometry.circle import Circle
from repro.geometry.sec import smallest_enclosing_circle
from repro.geometry.convex import ConvexPolygon, convex_hull
from repro.geometry.voronoi import VoronoiCell, voronoi_cell, voronoi_diagram
from repro.geometry.granular import Granular, granular_radius

__all__ = [
    "Vec2",
    "DEFAULT_EPS",
    "angle_ccw",
    "angle_cw",
    "angle_of",
    "almost_equal",
    "normalize_angle",
    "orientation",
    "side_of_line",
    "Frame",
    "HalfPlane",
    "Line",
    "Segment",
    "Circle",
    "smallest_enclosing_circle",
    "ConvexPolygon",
    "convex_hull",
    "VoronoiCell",
    "voronoi_cell",
    "voronoi_diagram",
    "Granular",
    "granular_radius",
]
