"""Geometric predicates and angle utilities.

All fuzzy comparisons in the library flow through this module so the
tolerance policy lives in exactly one place.  The paper assumes exact
real arithmetic; we use doubles with an epsilon of ``1e-9``, which is
comfortably below every distance the simulations generate (positions
are O(1)-O(100), granular radii are bounded below by construction).
"""

from __future__ import annotations

import math
from enum import IntEnum

from repro.geometry.vec import Vec2

__all__ = [
    "DEFAULT_EPS",
    "Orientation",
    "almost_equal",
    "almost_zero",
    "orientation",
    "side_of_line",
    "normalize_angle",
    "normalize_angle_positive",
    "angle_of",
    "angle_ccw",
    "angle_cw",
    "angle_between",
]

DEFAULT_EPS: float = 1e-9
"""Default absolute tolerance for geometric comparisons."""

TWO_PI: float = 2.0 * math.pi


class Orientation(IntEnum):
    """Result of the orientation predicate for an ordered point triple."""

    CLOCKWISE = -1
    COLLINEAR = 0
    COUNTERCLOCKWISE = 1


def almost_zero(value: float, eps: float = DEFAULT_EPS) -> bool:
    """True when ``value`` is within ``eps`` of zero."""
    return abs(value) <= eps


def almost_equal(a: float, b: float, eps: float = DEFAULT_EPS) -> bool:
    """True when ``a`` and ``b`` differ by at most ``eps``."""
    return abs(a - b) <= eps


def orientation(a: Vec2, b: Vec2, c: Vec2, eps: float = DEFAULT_EPS) -> Orientation:
    """Orientation of the ordered triple ``(a, b, c)``.

    Returns ``COUNTERCLOCKWISE`` when ``c`` lies to the left of the
    directed line ``a -> b``, ``CLOCKWISE`` when to the right and
    ``COLLINEAR`` when (within ``eps``) on the line.
    """
    cross = (b - a).cross(c - a)
    if cross > eps:
        return Orientation.COUNTERCLOCKWISE
    if cross < -eps:
        return Orientation.CLOCKWISE
    return Orientation.COLLINEAR


def side_of_line(point: Vec2, origin: Vec2, direction: Vec2, eps: float = DEFAULT_EPS) -> int:
    """Which side of the directed line ``origin + t*direction`` a point is on.

    Returns ``+1`` for the left side (counter-clockwise of the
    direction), ``-1`` for the right side and ``0`` when on the line.
    This is the primitive the receivers use to decode "moved on its
    right / moved on its left" signals (Section 3.1).
    """
    cross = direction.cross(point - origin)
    if cross > eps:
        return 1
    if cross < -eps:
        return -1
    return 0


def normalize_angle(angle: float) -> float:
    """Map an angle to ``(-pi, pi]``."""
    wrapped = math.fmod(angle, TWO_PI)
    if wrapped > math.pi:
        wrapped -= TWO_PI
    elif wrapped <= -math.pi:
        wrapped += TWO_PI
    return wrapped


def normalize_angle_positive(angle: float) -> float:
    """Map an angle to ``[0, 2*pi)``."""
    wrapped = math.fmod(angle, TWO_PI)
    if wrapped < 0.0:
        wrapped += TWO_PI
    # fmod of values extremely close to 2*pi can round back to 2*pi.
    if wrapped >= TWO_PI:
        wrapped -= TWO_PI
    return wrapped


def angle_of(point: Vec2, center: Vec2 = Vec2.zero()) -> float:
    """Polar angle of ``point`` around ``center`` in ``(-pi, pi]``."""
    return (point - center).angle()


def angle_ccw(reference: Vec2, target: Vec2) -> float:
    """Counter-clockwise sweep in ``[0, 2*pi)`` from ``reference`` to ``target``.

    Both arguments are direction vectors (nonzero).
    """
    return normalize_angle_positive(target.angle() - reference.angle())


def angle_cw(reference: Vec2, target: Vec2) -> float:
    """Clockwise sweep in ``[0, 2*pi)`` from ``reference`` to ``target``.

    The paper numbers slices and radii "in the clockwise direction";
    because all robots share chirality they agree on this sweep.
    """
    return normalize_angle_positive(reference.angle() - target.angle())


def angle_between(u: Vec2, v: Vec2) -> float:
    """Unsigned angle between two direction vectors, in ``[0, pi]``."""
    return abs(u.angle_to(v))
