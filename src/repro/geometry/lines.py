"""Lines, segments and half-planes.

These are the working tools of the protocol layer: the horizon line
``H_r`` of the asynchronous protocols is a :class:`Line`; a Voronoi
cell is an intersection of :class:`HalfPlane` instances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.geometry.predicates import DEFAULT_EPS
from repro.geometry.vec import Vec2

__all__ = ["Line", "Segment", "HalfPlane"]


@dataclass(frozen=True, slots=True)
class Line:
    """An infinite directed line ``origin + t * direction``.

    ``direction`` is stored normalised so that parameters ``t`` are
    world distances.
    """

    origin: Vec2
    direction: Vec2

    def __post_init__(self) -> None:
        norm = self.direction.norm()
        if norm == 0.0:
            raise ValueError("line direction must be nonzero")
        if not math.isclose(norm, 1.0, abs_tol=1e-12):
            object.__setattr__(self, "direction", self.direction / norm)

    @staticmethod
    def through(a: Vec2, b: Vec2) -> "Line":
        """The directed line from ``a`` toward ``b`` (``a != b``)."""
        return Line(a, b - a)

    def point_at(self, t: float) -> Vec2:
        """The point at signed distance ``t`` from the origin."""
        return self.origin + self.direction * t

    def project_parameter(self, point: Vec2) -> float:
        """Signed distance along the line of the foot of ``point``."""
        return (point - self.origin).dot(self.direction)

    def project(self, point: Vec2) -> Vec2:
        """Orthogonal projection of ``point`` onto the line."""
        return self.point_at(self.project_parameter(point))

    def signed_offset(self, point: Vec2) -> float:
        """Perpendicular signed distance of ``point`` from the line.

        Positive on the left of the direction (CCW side).  The
        asynchronous receivers decode East/West excursions from this
        sign (relative to the mover's own North).
        """
        return self.direction.cross(point - self.origin)

    def contains(self, point: Vec2, eps: float = DEFAULT_EPS) -> bool:
        """Whether ``point`` lies on the line (within ``eps``)."""
        return abs(self.signed_offset(point)) <= eps

    def intersect(self, other: "Line", eps: float = DEFAULT_EPS) -> Optional[Vec2]:
        """Intersection point with another line, or None when parallel."""
        denom = self.direction.cross(other.direction)
        if abs(denom) <= eps:
            return None
        t = (other.origin - self.origin).cross(other.direction) / denom
        return self.point_at(t)

    @staticmethod
    def perpendicular_bisector(a: Vec2, b: Vec2) -> "Line":
        """The perpendicular bisector of segment ``ab`` (``a != b``).

        Directed so that ``a`` is on its *left*; this convention makes
        Voronoi half-plane construction uniform.
        """
        midpoint = a.lerp(b, 0.5)
        return Line(midpoint, (b - a).perp_ccw())


@dataclass(frozen=True, slots=True)
class Segment:
    """A closed segment between two endpoints."""

    start: Vec2
    end: Vec2

    def length(self) -> float:
        """Euclidean length of the segment."""
        return self.start.distance_to(self.end)

    def midpoint(self) -> Vec2:
        """The segment midpoint."""
        return self.start.lerp(self.end, 0.5)

    def point_at(self, t: float) -> Vec2:
        """Affine parameterisation: ``start`` at 0, ``end`` at 1."""
        return self.start.lerp(self.end, t)

    def closest_point_to(self, point: Vec2) -> Vec2:
        """The point of the segment nearest to ``point``."""
        delta = self.end - self.start
        denom = delta.norm_sq()
        if denom == 0.0:
            return self.start
        t = (point - self.start).dot(delta) / denom
        t = min(1.0, max(0.0, t))
        return self.point_at(t)

    def distance_to(self, point: Vec2) -> float:
        """Distance from ``point`` to the segment."""
        return point.distance_to(self.closest_point_to(point))

    def contains(self, point: Vec2, eps: float = DEFAULT_EPS) -> bool:
        """Whether ``point`` lies on the segment (within ``eps``)."""
        return self.distance_to(point) <= eps


@dataclass(frozen=True, slots=True)
class HalfPlane:
    """The closed half-plane to the *left* of a directed boundary line.

    A point ``p`` belongs to the half-plane iff
    ``boundary.signed_offset(p) >= -eps``.
    """

    boundary: Line

    @staticmethod
    def closer_to(site: Vec2, other: Vec2) -> "HalfPlane":
        """Points at least as close to ``site`` as to ``other``.

        The building block of Voronoi cells: the cell of ``site`` is
        the intersection of these half-planes over all other sites.
        """
        return HalfPlane(Line.perpendicular_bisector(site, other))

    def contains(self, point: Vec2, eps: float = DEFAULT_EPS) -> bool:
        """Closed containment test with tolerance ``eps``."""
        return self.boundary.signed_offset(point) >= -eps

    def strictly_contains(self, point: Vec2, eps: float = DEFAULT_EPS) -> bool:
        """Open containment test (interior only)."""
        return self.boundary.signed_offset(point) > eps
