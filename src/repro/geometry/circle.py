"""Circles and circumcircles.

Support code for the smallest-enclosing-circle construction of
Section 3.4 (the SEC that defines the horizon lines and the relative
naming of anonymous robots).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.geometry.predicates import DEFAULT_EPS
from repro.geometry.vec import Vec2

__all__ = ["Circle", "circle_from_two", "circle_from_three"]


@dataclass(frozen=True, slots=True)
class Circle:
    """A circle given by centre and radius (``radius >= 0``)."""

    center: Vec2
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0.0:
            raise ValueError(f"radius must be >= 0, got {self.radius}")

    def contains(self, point: Vec2, eps: float = DEFAULT_EPS) -> bool:
        """Closed containment: ``point`` inside or on the circle."""
        return self.center.distance_to(point) <= self.radius + eps

    def on_boundary(self, point: Vec2, eps: float = DEFAULT_EPS) -> bool:
        """Whether ``point`` lies on the circle (within ``eps``)."""
        return abs(self.center.distance_to(point) - self.radius) <= eps

    def strictly_contains(self, point: Vec2, eps: float = DEFAULT_EPS) -> bool:
        """Open containment: strictly inside the circle."""
        return self.center.distance_to(point) < self.radius - eps

    def scaled(self, factor: float) -> "Circle":
        """Concentric circle with radius multiplied by ``factor >= 0``."""
        return Circle(self.center, self.radius * factor)


def circle_from_two(a: Vec2, b: Vec2) -> Circle:
    """Smallest circle through two points: diameter ``ab``."""
    center = a.lerp(b, 0.5)
    return Circle(center, center.distance_to(a))


def circle_from_three(a: Vec2, b: Vec2, c: Vec2, eps: float = DEFAULT_EPS) -> Optional[Circle]:
    """Circumcircle of a (non-degenerate) triangle.

    Returns None when the three points are (near-)collinear, in which
    case no finite circumcircle exists.
    """
    ab = b - a
    ac = c - a
    d = 2.0 * ab.cross(ac)
    if abs(d) <= eps:
        return None
    ab_sq = ab.norm_sq()
    ac_sq = ac.norm_sq()
    ux = (ac.y * ab_sq - ab.y * ac_sq) / d
    uy = (ab.x * ac_sq - ac.x * ab_sq) / d
    center = Vec2(a.x + ux, a.y + uy)
    return Circle(center, center.distance_to(a))
