"""Immutable 2-D vectors and points.

``Vec2`` doubles as both a point in the plane and a displacement.  The
paper assumes robots compute "with an infinite decimal precision"; we
work with IEEE-754 doubles and keep all comparisons behind explicit
epsilons (see :mod:`repro.geometry.predicates`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

__all__ = ["Vec2"]


@dataclass(frozen=True, slots=True)
class Vec2:
    """An immutable vector (or point) in the Euclidean plane.

    Supports the usual vector-space operations plus the 2-D specific
    cross product and rotations.  Instances are hashable and usable as
    dict keys, which the naming layers rely on.
    """

    x: float
    y: float

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def zero() -> "Vec2":
        """The origin / null displacement."""
        return Vec2(0.0, 0.0)

    @staticmethod
    def unit(angle: float) -> "Vec2":
        """Unit vector at ``angle`` radians counter-clockwise from +x."""
        return Vec2(math.cos(angle), math.sin(angle))

    @staticmethod
    def from_polar(radius: float, angle: float) -> "Vec2":
        """Vector of length ``radius`` at ``angle`` radians from +x."""
        return Vec2(radius * math.cos(angle), radius * math.sin(angle))

    # ------------------------------------------------------------------
    # Vector-space operations
    # ------------------------------------------------------------------
    def __add__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Vec2":
        return Vec2(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vec2":
        return Vec2(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Vec2":
        return Vec2(-self.x, -self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    # ------------------------------------------------------------------
    # Products and norms
    # ------------------------------------------------------------------
    def dot(self, other: "Vec2") -> float:
        """Euclidean inner product."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Vec2") -> float:
        """The z-component of the 3-D cross product.

        Positive when ``other`` lies counter-clockwise of ``self`` —
        the primitive behind every chirality (handedness) decision in
        the protocols.
        """
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length."""
        return math.hypot(self.x, self.y)

    def norm_sq(self) -> float:
        """Squared Euclidean length (exact for comparisons)."""
        return self.x * self.x + self.y * self.y

    def distance_to(self, other: "Vec2") -> float:
        """Euclidean distance between two points."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def distance_sq_to(self, other: "Vec2") -> float:
        """Squared distance — avoids the square root in comparisons."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    # ------------------------------------------------------------------
    # Directions
    # ------------------------------------------------------------------
    def normalized(self) -> "Vec2":
        """Unit vector in the same direction.

        Raises:
            ZeroDivisionError: for the null vector, which has no
                direction; callers must guard (the protocols always do,
                because two distinct robots never coincide).
        """
        n = self.norm()
        if n == 0.0:
            raise ZeroDivisionError("cannot normalize the null vector")
        return Vec2(self.x / n, self.y / n)

    def perp_ccw(self) -> "Vec2":
        """This vector rotated +90° (counter-clockwise)."""
        return Vec2(-self.y, self.x)

    def perp_cw(self) -> "Vec2":
        """This vector rotated -90° (clockwise)."""
        return Vec2(self.y, -self.x)

    def rotated(self, angle: float) -> "Vec2":
        """This vector rotated by ``angle`` radians counter-clockwise."""
        c = math.cos(angle)
        s = math.sin(angle)
        return Vec2(c * self.x - s * self.y, s * self.x + c * self.y)

    def angle(self) -> float:
        """Polar angle in ``(-pi, pi]`` measured CCW from +x."""
        return math.atan2(self.y, self.x)

    def angle_to(self, other: "Vec2") -> float:
        """Signed angle from ``self`` to ``other`` in ``(-pi, pi]``.

        Positive means ``other`` is counter-clockwise of ``self``.
        """
        return math.atan2(self.cross(other), self.dot(other))

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def lerp(self, other: "Vec2", t: float) -> "Vec2":
        """Linear interpolation: ``self`` at ``t=0``, ``other`` at ``t=1``."""
        return Vec2(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )

    def clamped_toward(self, target: "Vec2", max_distance: float) -> "Vec2":
        """The point reached moving from ``self`` toward ``target``.

        Travels the full way when the target is within
        ``max_distance``; otherwise stops after exactly
        ``max_distance``.  This is the SSM movement rule: "if the
        destination point computed by r is farther than sigma_r, then r
        moves toward a point of at most sigma_r".
        """
        if max_distance < 0:
            raise ValueError(f"max_distance must be >= 0, got {max_distance}")
        delta = target - self
        dist = delta.norm()
        if dist <= max_distance or dist == 0.0:
            return target
        return self + delta * (max_distance / dist)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Vec2({self.x:.6g}, {self.y:.6g})"
