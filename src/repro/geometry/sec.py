"""Smallest enclosing circle (SEC).

Section 3.4 builds the relative naming of anonymous robots on the
smallest circle enclosing all robot positions: "Note that SEC is unique
and can be computed in linear time [Megiddo 83]."  We implement Welzl's
randomised incremental algorithm, which also runs in expected linear
time and is far simpler; the random order is derived deterministically
from a seed so that every robot — and every rerun — computes the
*identical* circle.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from repro.geometry.circle import Circle, circle_from_three, circle_from_two
from repro.geometry.predicates import DEFAULT_EPS
from repro.geometry.vec import Vec2

__all__ = ["smallest_enclosing_circle"]


def smallest_enclosing_circle(
    points: Iterable[Vec2],
    eps: float = DEFAULT_EPS,
    seed: int = 0x5EC,
) -> Circle:
    """The unique smallest circle enclosing all ``points``.

    Args:
        points: at least one point.
        eps: boundary tolerance for containment checks.
        seed: seed of the deterministic processing order.  The result
            is the same circle for any seed (the SEC is unique); the
            seed only affects running time.

    Raises:
        ValueError: on an empty input.
    """
    pts: List[Vec2] = list(points)
    if not pts:
        raise ValueError("smallest_enclosing_circle needs at least one point")
    # Deduplicate: repeated sites would only slow the incremental scan.
    pts = list(dict.fromkeys(pts))
    if len(pts) == 1:
        return Circle(pts[0], 0.0)

    shuffled = pts[:]
    random.Random(seed).shuffle(shuffled)

    circle: Optional[Circle] = None
    for i, p in enumerate(shuffled):
        if circle is None or not circle.contains(p, eps):
            circle = _sec_with_one_boundary(shuffled[: i + 1], p, eps)
    assert circle is not None
    return circle


def _sec_with_one_boundary(points: Sequence[Vec2], p: Vec2, eps: float) -> Circle:
    """Smallest circle enclosing ``points`` with ``p`` on its boundary."""
    circle = Circle(p, 0.0)
    for i, q in enumerate(points):
        if q == p:
            continue
        if not circle.contains(q, eps):
            if circle.radius == 0.0:
                circle = circle_from_two(p, q)
            else:
                circle = _sec_with_two_boundary(points[: i + 1], p, q, eps)
    return circle


def _sec_with_two_boundary(points: Sequence[Vec2], p: Vec2, q: Vec2, eps: float) -> Circle:
    """Smallest circle enclosing ``points`` with ``p`` and ``q`` on it."""
    circle = circle_from_two(p, q)
    left: Optional[Circle] = None
    right: Optional[Circle] = None
    pq = q - p

    for r in points:
        if r == p or r == q:
            continue
        if circle.contains(r, eps):
            continue
        cross = pq.cross(r - p)
        candidate = circle_from_three(p, q, r, eps)
        if candidate is None:
            continue
        if cross > 0.0 and (
            left is None
            or pq.cross(candidate.center - p) > pq.cross(left.center - p)
        ):
            left = candidate
        elif cross < 0.0 and (
            right is None
            or pq.cross(candidate.center - p) < pq.cross(right.center - p)
        ):
            right = candidate

    if left is None and right is None:
        return circle
    if left is None:
        assert right is not None
        return right
    if right is None:
        return left
    return left if left.radius <= right.radius else right
