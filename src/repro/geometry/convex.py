"""Convex polygons and half-plane clipping.

Voronoi cells are convex; we represent each cell as a convex polygon
obtained by clipping a large bounding box against bisector half-planes
(Sutherland–Hodgman against one line at a time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.geometry.lines import HalfPlane, Line, Segment
from repro.geometry.predicates import DEFAULT_EPS
from repro.geometry.vec import Vec2

__all__ = ["ConvexPolygon", "convex_hull"]


@dataclass(frozen=True)
class ConvexPolygon:
    """A convex polygon given by its vertices in counter-clockwise order.

    The polygon may be empty (no vertices) after over-aggressive
    clipping; callers check :meth:`is_empty`.
    """

    vertices: Tuple[Vec2, ...]

    @staticmethod
    def from_points(points: Sequence[Vec2]) -> "ConvexPolygon":
        """Build a polygon from CCW-ordered vertices (no validation)."""
        return ConvexPolygon(tuple(points))

    @staticmethod
    def axis_aligned_box(lo: Vec2, hi: Vec2) -> "ConvexPolygon":
        """The rectangle with opposite corners ``lo`` and ``hi``."""
        if hi.x <= lo.x or hi.y <= lo.y:
            raise ValueError(f"degenerate box: {lo!r}..{hi!r}")
        return ConvexPolygon(
            (
                Vec2(lo.x, lo.y),
                Vec2(hi.x, lo.y),
                Vec2(hi.x, hi.y),
                Vec2(lo.x, hi.y),
            )
        )

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """True when the polygon has no vertices left."""
        return len(self.vertices) == 0

    def area(self) -> float:
        """Polygon area by the shoelace formula (>= 0 for CCW order)."""
        verts = self.vertices
        n = len(verts)
        if n < 3:
            return 0.0
        total = 0.0
        for i in range(n):
            a = verts[i]
            b = verts[(i + 1) % n]
            total += a.cross(b)
        return 0.5 * total

    def edges(self) -> List[Segment]:
        """The boundary segments, one per consecutive vertex pair."""
        verts = self.vertices
        n = len(verts)
        if n < 2:
            return []
        return [Segment(verts[i], verts[(i + 1) % n]) for i in range(n)]

    def contains(self, point: Vec2, eps: float = DEFAULT_EPS) -> bool:
        """Closed containment test for a convex CCW polygon."""
        verts = self.vertices
        n = len(verts)
        if n == 0:
            return False
        if n == 1:
            return verts[0].distance_to(point) <= eps
        if n == 2:
            return Segment(verts[0], verts[1]).contains(point, eps)
        for i in range(n):
            edge = verts[(i + 1) % n] - verts[i]
            if edge.cross(point - verts[i]) < -eps:
                return False
        return True

    def distance_to_boundary(self, point: Vec2) -> float:
        """Distance from an interior point to the nearest boundary edge.

        This is the radius of the largest disc centred at ``point``
        and enclosed in the polygon — exactly the paper's *granular*
        when the polygon is a Voronoi cell and ``point`` its site.
        """
        edges = self.edges()
        if not edges:
            return 0.0
        return min(edge.distance_to(point) for edge in edges)

    def centroid(self) -> Optional[Vec2]:
        """Area centroid, or None for degenerate polygons."""
        verts = self.vertices
        n = len(verts)
        if n == 0:
            return None
        if n < 3:
            total = Vec2.zero()
            for v in verts:
                total = total + v
            return total / n
        area2 = 0.0
        cx = 0.0
        cy = 0.0
        for i in range(n):
            a = verts[i]
            b = verts[(i + 1) % n]
            w = a.cross(b)
            area2 += w
            cx += (a.x + b.x) * w
            cy += (a.y + b.y) * w
        if abs(area2) <= DEFAULT_EPS:
            return None
        return Vec2(cx / (3.0 * area2), cy / (3.0 * area2))

    # ------------------------------------------------------------------
    # Clipping
    # ------------------------------------------------------------------
    def clipped(self, half_plane: HalfPlane, eps: float = DEFAULT_EPS) -> "ConvexPolygon":
        """Intersection of the polygon with a half-plane.

        Sutherland–Hodgman against a single line; the result is convex
        and CCW, possibly empty.
        """
        verts = self.vertices
        if not verts:
            return self
        boundary: Line = half_plane.boundary
        result: List[Vec2] = []
        n = len(verts)
        offsets = [boundary.signed_offset(v) for v in verts]
        for i in range(n):
            current = verts[i]
            nxt = verts[(i + 1) % n]
            off_current = offsets[i]
            off_next = offsets[(i + 1) % n]
            inside_current = off_current >= -eps
            inside_next = off_next >= -eps
            if inside_current:
                result.append(current)
            if inside_current != inside_next:
                denom = off_current - off_next
                if abs(denom) > eps:
                    t = off_current / denom
                    result.append(current.lerp(nxt, t))
        deduped = _dedupe_ring(result, eps)
        return ConvexPolygon(tuple(deduped))


def convex_hull(points: Sequence[Vec2]) -> ConvexPolygon:
    """The convex hull of a point set as a CCW :class:`ConvexPolygon`.

    Andrew's monotone chain, O(n log n).  Collinear boundary points are
    dropped (the hull keeps extreme vertices only); degenerate inputs
    (a single point, all-collinear sets) yield polygons with fewer than
    three vertices, which the polygon queries handle.

    Raises:
        ValueError: on an empty input.
    """
    pts = sorted(set(points), key=lambda p: (p.x, p.y))
    if not pts:
        raise ValueError("convex_hull of an empty point set")
    if len(pts) <= 2:
        return ConvexPolygon(tuple(pts))

    def half(chain_points: Sequence[Vec2]) -> List[Vec2]:
        chain: List[Vec2] = []
        for p in chain_points:
            while (
                len(chain) >= 2
                and (chain[-1] - chain[-2]).cross(p - chain[-2]) <= 0.0
            ):
                chain.pop()
            chain.append(p)
        return chain

    lower = half(pts)
    upper = half(list(reversed(pts)))
    hull = lower[:-1] + upper[:-1]
    if len(hull) < 3:
        # All points collinear: keep the two extremes.
        return ConvexPolygon((pts[0], pts[-1]))
    return ConvexPolygon(tuple(hull))


def _dedupe_ring(points: Sequence[Vec2], eps: float) -> List[Vec2]:
    """Drop consecutive (cyclically) near-duplicate vertices."""
    out: List[Vec2] = []
    for p in points:
        if not out or out[-1].distance_to(p) > eps:
            out.append(p)
    if len(out) >= 2 and out[0].distance_to(out[-1]) <= eps:
        out.pop()
    return out
