"""Sensor noise — the Section 5 round-off discussion, continuous form.

    "robots could be prone to make computation errors due to round
    off, and, therefore, face a situation where robots are not able to
    identify all of possible 2n directions"

Where :mod:`repro.discrete` models the *discrete* version of this
(finitely many recognisable directions), this subpackage models the
*continuous* one: every observed position is perturbed by zero-mean
Gaussian noise.  The decoding guard bands (slice-angle tolerance in the
granular classifier, the dead zones of the symbol coder) determine how
much noise each protocol tolerates; the A5 experiment maps the
delivery-rate cliff as noise grows relative to the excursion length.
"""

from repro.noise.simulator import NoisyObservationSimulator

__all__ = ["NoisyObservationSimulator"]
