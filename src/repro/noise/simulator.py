"""The SSM engine with noisy position sensing.

Every observed position (of *other* robots — a robot is assumed to
know its own position from odometry) is perturbed by independent
zero-mean Gaussian noise of a configurable standard deviation, freshly
drawn per observation.  Movements themselves are exact: this models
imprecise *sensing*, not imprecise actuation.

Decoders see perturbed excursions; whether they survive depends on
their guard bands.  A robot observed "off home" by less than its
decoder's threshold stays classified as idle, and an excursion whose
perceived direction drifts past the slice tolerance raises
``AmbiguousDirectionError`` — both failure modes are exercised by
``benchmarks/bench_a5_noise.py``.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.errors import ModelError
from repro.geometry.vec import Vec2
from repro.model.robot import Robot
from repro.model.scheduler import Scheduler
from repro.model.simulator import Simulator
from repro.model.trace import TracePolicy

__all__ = ["NoisyObservationSimulator"]


class NoisyObservationSimulator(Simulator):
    """SSM with Gaussian position-sensing noise.

    Args:
        robots: the swarm.
        noise_std: standard deviation of the per-axis position error
            (world units); 0 reduces to the base engine.
        seed: RNG seed; runs are reproducible.
        scheduler: activation policy.
    """

    def __init__(
        self,
        robots: Sequence[Robot],
        noise_std: float,
        seed: int = 0,
        scheduler: Optional[Scheduler] = None,
        *,
        caching: bool = True,
        trace_policy: Optional[TracePolicy] = None,
    ) -> None:
        if noise_std < 0.0:
            raise ModelError(f"noise_std must be >= 0, got {noise_std}")
        self._noise_std = noise_std
        self._noise_rng = random.Random(seed)
        super().__init__(
            robots, scheduler, caching=caching, trace_policy=trace_policy
        )

    @property
    def noise_std(self) -> float:
        """The sensing-noise standard deviation (world units)."""
        return self._noise_std

    def _config_for_observation(self, index: int) -> Sequence[Vec2]:
        # The observer's own position is spared: odometry is exact.
        base = super()._config_for_observation(index)
        if self._noise_std == 0.0:
            return base
        noisy: List[Vec2] = []
        for i, position in enumerate(base):
            if i == index:
                noisy.append(position)
            else:
                noisy.append(
                    Vec2(
                        position.x + self._noise_rng.gauss(0.0, self._noise_std),
                        position.y + self._noise_rng.gauss(0.0, self._noise_std),
                    )
                )
        return noisy
