"""The semi-synchronous robot model (SSM) of Suzuki-Yamashita.

This subpackage is the execution substrate the paper adopts
(Section 2): ``n`` mobile robots viewed as points in the plane, each
with its own local coordinate system, activated by a scheduler at
discrete instants ``t0, t1, ...``.  An active robot observes the
instantaneous configuration, computes a destination with its protocol,
and moves toward it by at most its per-step bound ``sigma``.

Public surface:

* :class:`~repro.model.robot.Robot` — a robot specification.
* :class:`~repro.model.observation.Observation` /
  :class:`~repro.model.observation.ObservedRobot` — activation snapshots.
* :class:`~repro.model.protocol.Protocol` — the state-machine interface
  all movement protocols implement.
* Schedulers: synchronous, fair-asynchronous, round-robin, scripted.
* :class:`~repro.model.simulator.Simulator` — the engine.
* :class:`~repro.model.trace.Trace` — recorded histories.
"""

from repro.model.robot import Robot
from repro.model.observation import Observation, ObservedRobot
from repro.model.protocol import BitEvent, Protocol
from repro.model.scheduler import (
    FairAsynchronousScheduler,
    RoundRobinScheduler,
    Scheduler,
    ScriptedScheduler,
    SynchronousScheduler,
)
from repro.model.simulator import Simulator
from repro.model.trace import Trace, TracePolicy, TraceStep

__all__ = [
    "Robot",
    "Observation",
    "ObservedRobot",
    "Protocol",
    "BitEvent",
    "Scheduler",
    "SynchronousScheduler",
    "FairAsynchronousScheduler",
    "RoundRobinScheduler",
    "ScriptedScheduler",
    "Simulator",
    "Trace",
    "TracePolicy",
    "TraceStep",
]
