"""The SSM simulation engine.

Implements the computation step of Section 2 exactly:

    "At each time instant ``t_j``, each robot ``r_i`` is either active
    or inactive.  The former means that, during the computation step
    ``(t_j, t_{j+1})``, using a given algorithm, ``r_i`` computes in
    its local coordinate system a position ``p_i(t_{j+1})`` depending
    only on the system configuration at ``t_j``, and moves towards
    ``p_i(t_{j+1})`` [...].  In every single activation, the distance
    traveled by any robot ``r`` is bounded by ``sigma_r``."

All active robots of an instant observe the *same* configuration
``P(t_j)`` and move simultaneously; inactive robots stay put.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ModelError, SchedulerError
from repro.geometry.vec import Vec2
from repro.model.observation import Observation, ObservedRobot
from repro.model.protocol import BindingInfo
from repro.model.robot import Robot
from repro.model.scheduler import Scheduler, SynchronousScheduler
from repro.model.trace import Trace, TraceStep

__all__ = ["Simulator"]


class Simulator:
    """Drives a swarm of robots under a scheduler.

    Args:
        robots: the swarm; at least one robot, pairwise-distinct
            initial positions, and pairwise-distinct protocol
            instances.
        scheduler: activation policy; defaults to fully synchronous.

    The constructor *binds* every protocol: each robot learns its
    tracking index, the swarm size, its movement bound in local units,
    the initial configuration ``P(t_0)`` expressed in its stationary
    private frame, and (in identified systems) the observable IDs.
    """

    def __init__(self, robots: Sequence[Robot], scheduler: Optional[Scheduler] = None) -> None:
        if not robots:
            raise ModelError("a simulation needs at least one robot")
        protocols = [r.protocol for r in robots]
        if len({id(p) for p in protocols}) != len(protocols):
            raise ModelError("every robot needs its own protocol instance")
        positions = [r.position for r in robots]
        for i in range(len(positions)):
            for j in range(i + 1, len(positions)):
                if positions[i] == positions[j]:
                    raise ModelError(
                        f"robots {i} and {j} share the initial position {positions[i]!r}"
                    )
        ids = [r.observable_id for r in robots]
        self._identified = all(v is not None for v in ids)
        if not self._identified and any(v is not None for v in ids):
            raise ModelError(
                "either every robot has an observable_id (identified system) "
                "or none does (anonymous system)"
            )
        if self._identified and len(set(ids)) != len(ids):
            raise ModelError("observable ids must be pairwise distinct")

        self._robots = list(robots)
        self._scheduler = scheduler if scheduler is not None else SynchronousScheduler()
        self._positions: List[Vec2] = positions[:]
        self._anchors: Tuple[Vec2, ...] = tuple(positions)
        self._time = 0
        self._trace = Trace(initial_positions=tuple(positions))

        observable_ids = tuple(ids) if self._identified else None
        world_visibility = self._world_visibility_radius()
        for index, robot in enumerate(self._robots):
            visible = self._visible_from(index)
            initial_local = tuple(
                robot.frame.to_local(p, self._anchors[index]) if i in visible else None
                for i, p in enumerate(positions)
            )
            robot.protocol.bind(
                BindingInfo(
                    index=index,
                    count=len(self._robots),
                    sigma=robot.sigma / robot.frame.scale,
                    initial_positions=initial_local,
                    observable_ids=observable_ids,
                    visibility_radius=(
                        world_visibility / robot.frame.scale
                        if world_visibility is not None
                        else None
                    ),
                )
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def time(self) -> int:
        """The current instant ``t_j``."""
        return self._time

    @property
    def count(self) -> int:
        """Number of robots."""
        return len(self._robots)

    @property
    def robots(self) -> Tuple[Robot, ...]:
        """The robot specifications (read-only view)."""
        return tuple(self._robots)

    @property
    def positions(self) -> Tuple[Vec2, ...]:
        """Current world positions ``P(t_j)``."""
        return tuple(self._positions)

    @property
    def trace(self) -> Trace:
        """The recorded history so far."""
        return self._trace

    def protocol_of(self, index: int):
        """The protocol instance of robot ``index``."""
        return self._robots[index].protocol

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> TraceStep:
        """Advance one instant: activate, observe, compute, move."""
        active = self._scheduler.activations(self._time, self.count)
        if not active:
            raise SchedulerError(f"empty activation set at t={self._time}")
        if any(not (0 <= i < self.count) for i in active):
            raise SchedulerError(f"activation set {sorted(active)} out of range")

        # All active robots observe the same configuration P(t_j)...
        new_positions: Dict[int, Vec2] = {}
        for index in sorted(active):
            robot = self._robots[index]
            observation = self._observe(index)
            local_target = robot.protocol.on_activate(observation)
            world_target = robot.frame.to_world(local_target, self._anchors[index])
            clamped = self._positions[index].clamped_toward(world_target, robot.sigma)
            new_positions[index] = self._constrain_destination(index, clamped)

        # ...and move simultaneously.
        for index, position in new_positions.items():
            self._positions[index] = position

        step = TraceStep(
            time=self._time,
            active=frozenset(active),
            positions=tuple(self._positions),
        )
        self._trace.steps.append(step)
        self._time += 1
        return step

    def run(self, steps: int) -> Trace:
        """Advance a fixed number of instants; returns the trace."""
        if steps < 0:
            raise ModelError(f"steps must be >= 0, got {steps}")
        for _ in range(steps):
            self.step()
        return self._trace

    def run_until(
        self,
        predicate: Callable[["Simulator"], bool],
        max_steps: int,
    ) -> bool:
        """Step until ``predicate(self)`` holds or ``max_steps`` elapse.

        Returns True when the predicate was satisfied.  The predicate
        is also checked before the first step.
        """
        if max_steps < 0:
            raise ModelError(f"max_steps must be >= 0, got {max_steps}")
        for _ in range(max_steps):
            if predicate(self):
                return True
            self.step()
        return predicate(self)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def displace(self, index: int, position: Vec2) -> None:
        """Teleport a robot out-of-band — a *transient fault*.

        This is a testing / fault-injection API, not part of the model:
        it corrupts the configuration the way the self-stabilization
        discussion of Section 5 envisages (arbitrary transient state
        perturbation).  Protocol-internal state (homes, granulars) is
        deliberately left stale; recovering from that is exactly what
        :mod:`repro.stabilization` exists for.
        """
        if not (0 <= index < self.count):
            raise ModelError(f"unknown robot {index}")
        for i, existing in enumerate(self._positions):
            if i != index and existing == position:
                raise ModelError(f"displacement collides with robot {i}")
        self._positions[index] = position

    # ------------------------------------------------------------------
    # Internals / extension hooks
    # ------------------------------------------------------------------
    def _constrain_destination(self, index: int, destination: Vec2) -> Vec2:
        """Environment-level movement constraint hook.

        The base model is the continuous plane (identity).  The
        Section 5 discrete worlds (:mod:`repro.discrete`) override this
        to snap destinations onto a lattice.
        """
        return destination

    def _world_visibility_radius(self) -> Optional[float]:
        """Visibility range in world units; None means unlimited.

        The base simulator implements the paper's default model (every
        robot sees every robot); :class:`repro.visibility.simulator.
        VisibilitySimulator` overrides this.
        """
        return None

    def _visible_from(self, index: int) -> frozenset:
        """Indices visible to ``index`` (always includes itself).

        Evaluated on the anchor configuration ``P(t_0)``: protocol
        movements stay within granular-scale bands, so the visibility
        graph is treated as static for a run.
        """
        radius = self._world_visibility_radius()
        if radius is None:
            return frozenset(range(self.count))
        me = self._anchors[index]
        return frozenset(
            i for i in range(self.count) if me.distance_to(self._anchors[i]) <= radius
        )

    def _config_for_observation(self, index: int) -> Sequence[Vec2]:
        """The configuration an activation's Look phase returns.

        The SSM default is the instantaneous ``P(t_j)``; the CORDA-style
        :class:`repro.corda.simulator.StaleLookSimulator` overrides this
        with a (boundedly) stale configuration.
        """
        return self._positions

    def _observe(self, index: int) -> Observation:
        robot = self._robots[index]
        anchor = self._anchors[index]
        visible = self._visible_from(index)
        config = self._config_for_observation(index)
        observed = tuple(
            ObservedRobot(
                index=i,
                position=robot.frame.to_local(config[i], anchor),
                observable_id=self._robots[i].observable_id if self._identified else None,
            )
            for i in range(self.count)
            if i in visible
        )
        return Observation(time=self._time, self_index=index, robots=observed)
