"""The SSM simulation engine.

Implements the computation step of Section 2 exactly:

    "At each time instant ``t_j``, each robot ``r_i`` is either active
    or inactive.  The former means that, during the computation step
    ``(t_j, t_{j+1})``, using a given algorithm, ``r_i`` computes in
    its local coordinate system a position ``p_i(t_{j+1})`` depending
    only on the system configuration at ``t_j``, and moves towards
    ``p_i(t_{j+1})`` [...].  In every single activation, the distance
    traveled by any robot ``r`` is bounded by ``sigma_r``."

All active robots of an instant observe the *same* configuration
``P(t_j)`` and move simultaneously; inactive robots stay put.

Hot-path layout
---------------

The engine tracks a **configuration epoch**: a counter bumped only when
some position actually changes (a protocol movement or a
:meth:`Simulator.displace` fault).  Everything derived from the
configuration is cached against that epoch:

* per-robot visibility sets are computed once at construction (they
  depend only on the immutable anchors);
* each robot's last observation is kept and reused — wholesale when
  the epoch did not advance, per-entry for robots whose position epoch
  predates the cached build (silent robots under asynchronous
  schedules are the common case);
* derived geometry (SEC, Voronoi, hull, relative naming) is served by
  a :class:`~repro.perf.cache.CachedGeometry` facade via
  :attr:`Simulator.geometry`.

Caching is semantically transparent — ``caching=False`` runs the
original always-rebuild pipeline and produces bit-identical traces —
and observable through :attr:`Simulator.stats`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ModelError, SchedulerError
from repro.geometry.vec import Vec2
from repro.model.observation import Observation, ObservedRobot
from repro.model.protocol import BindingInfo
from repro.model.robot import Robot
from repro.model.scheduler import Scheduler, SynchronousScheduler
from repro.model.trace import Trace, TracePolicy, TraceStep
from repro.perf.cache import CachedGeometry
from repro.perf.counters import PerfStats

__all__ = ["Simulator"]


class _ObservationCacheEntry:
    """One robot's last built observation, with reuse metadata."""

    __slots__ = ("epoch", "live", "config_ref", "world", "observed", "index_map")

    def __init__(
        self,
        epoch: int,
        live: bool,
        config_ref: Optional[Sequence[Vec2]],
        world: Tuple[Vec2, ...],
        observed: Tuple[ObservedRobot, ...],
        index_map: Dict[int, Vec2],
    ) -> None:
        self.epoch = epoch
        self.live = live
        self.config_ref = config_ref
        self.world = world
        self.observed = observed
        self.index_map = index_map


class Simulator:
    """Drives a swarm of robots under a scheduler.

    Args:
        robots: the swarm; at least one robot, pairwise-distinct
            initial positions, and pairwise-distinct protocol
            instances.
        scheduler: activation policy; defaults to fully synchronous.
        caching: enable the epoch-based hot-path caches (default).
            Disabling them changes performance only, never results.
        trace_policy: optional memory bound for the recorded trace
            (ring buffer / stride sampling; see
            :class:`~repro.model.trace.TracePolicy`).

    The constructor *binds* every protocol: each robot learns its
    tracking index, the swarm size, its movement bound in local units,
    the initial configuration ``P(t_0)`` expressed in its stationary
    private frame, and (in identified systems) the observable IDs.
    """

    def __init__(
        self,
        robots: Sequence[Robot],
        scheduler: Optional[Scheduler] = None,
        *,
        caching: bool = True,
        trace_policy: Optional[TracePolicy] = None,
    ) -> None:
        if not robots:
            raise ModelError("a simulation needs at least one robot")
        protocols = [r.protocol for r in robots]
        if len({id(p) for p in protocols}) != len(protocols):
            raise ModelError("every robot needs its own protocol instance")
        positions = [r.position for r in robots]
        seen: Dict[Vec2, int] = {}
        for i, p in enumerate(positions):
            j = seen.get(p)
            if j is not None:
                raise ModelError(
                    f"robots {j} and {i} share the initial position {p!r}"
                )
            seen[p] = i
        ids = [r.observable_id for r in robots]
        self._identified = all(v is not None for v in ids)
        if not self._identified and any(v is not None for v in ids):
            raise ModelError(
                "either every robot has an observable_id (identified system) "
                "or none does (anonymous system)"
            )
        if self._identified and len(set(ids)) != len(ids):
            raise ModelError("observable ids must be pairwise distinct")

        self._robots = list(robots)
        self._scheduler = scheduler if scheduler is not None else SynchronousScheduler()
        self._positions: List[Vec2] = positions[:]
        self._anchors: Tuple[Vec2, ...] = tuple(positions)
        self._time = 0
        self._trace = Trace(
            initial_positions=tuple(positions),
            policy=trace_policy if trace_policy is not None else TracePolicy(),
        )

        # --- hot-path state -------------------------------------------
        self._caching = bool(caching)
        self._stats = PerfStats()
        self._epoch = 0
        self._pos_epoch: List[int] = [0] * len(self._robots)
        self._observed_ids: Tuple[Optional[int], ...] = (
            tuple(ids) if self._identified else (None,) * len(self._robots)
        )
        # Visibility depends only on the immutable anchors: compute it
        # once per robot instead of on every observe.  Under unlimited
        # visibility every robot sees the same full set, so one shared
        # frozenset/tuple serves all n robots — O(n) memory instead of
        # the O(n²) that made 10k-robot swarms impossible to build.
        if self._world_visibility_radius() is None:
            full_set = frozenset(range(len(self._robots)))
            full_list = tuple(range(len(self._robots)))
            self._visible_sets: Tuple[frozenset, ...] = (full_set,) * len(self._robots)
            self._visible_lists: Tuple[Tuple[int, ...], ...] = (full_list,) * len(
                self._robots
            )
        else:
            self._visible_sets = tuple(
                self._compute_visible_from(i) for i in range(len(self._robots))
            )
            self._visible_lists = tuple(tuple(sorted(v)) for v in self._visible_sets)
        # Per-robot (to_local, anchor) pairs: the observe loop is the
        # hottest code in the engine, so attribute chases are hoisted.
        self._local_transforms: Tuple[Tuple[Callable, Vec2], ...] = tuple(
            (robot.frame.to_local, self._anchors[i])
            for i, robot in enumerate(self._robots)
        )
        self._obs_cache: List[Optional[_ObservationCacheEntry]] = [None] * len(
            self._robots
        )
        self._geometry = CachedGeometry(stats=self._stats, enabled=self._caching)
        self._step_listeners: List[Callable[["Simulator", TraceStep], None]] = []
        self._fault_listeners: List[Callable[["Simulator", int, Vec2, Vec2], None]] = []
        # Observability injection point: when set, called at every
        # phase boundary of step().  None (the default) costs one
        # identity check per phase — the zero-overhead-when-disabled
        # contract of repro.obs.
        self._phase_hook: Optional[Callable[[str, int], None]] = None
        # Per-robot Look/Compute/Move hook — the vector-clock injection
        # point of repro.obs.causal.  Same contract as the phase hook:
        # None by default, one identity check per robot phase.
        self._robot_phase_hook: Optional[Callable[[str, int, int], None]] = None

        observable_ids = tuple(ids) if self._identified else None
        world_visibility = self._world_visibility_radius()
        for index, robot in enumerate(self._robots):
            visible = self._visible_from(index)
            initial_local = self._initial_local_view(index, robot, visible, positions)
            robot.protocol.bind(
                BindingInfo(
                    index=index,
                    count=len(self._robots),
                    sigma=robot.sigma / robot.frame.scale,
                    initial_positions=initial_local,
                    observable_ids=observable_ids,
                    visibility_radius=(
                        world_visibility / robot.frame.scale
                        if world_visibility is not None
                        else None
                    ),
                )
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def time(self) -> int:
        """The current instant ``t_j``."""
        return self._time

    @property
    def count(self) -> int:
        """Number of robots."""
        return len(self._robots)

    @property
    def robots(self) -> Tuple[Robot, ...]:
        """The robot specifications (read-only view)."""
        return tuple(self._robots)

    @property
    def positions(self) -> Tuple[Vec2, ...]:
        """Current world positions ``P(t_j)``."""
        return tuple(self._positions)

    @property
    def trace(self) -> Trace:
        """The recorded history so far."""
        return self._trace

    @property
    def epoch(self) -> int:
        """The configuration epoch (bumps only when positions change)."""
        return self._epoch

    @property
    def stats(self) -> PerfStats:
        """Live performance counters of the caching layer."""
        return self._stats

    @property
    def caching_enabled(self) -> bool:
        """Whether the hot-path caches are active."""
        return self._caching

    @property
    def geometry(self) -> CachedGeometry:
        """Derived geometry of ``P(t_j)``, memoised per epoch.

        The facade is synchronised with the current configuration on
        every access; consumers may call it on every activation and pay
        the geometric cost only when the configuration changed.
        """
        self._geometry.update(self._epoch, lambda: self._positions)
        return self._geometry

    def protocol_of(self, index: int):
        """The protocol instance of robot ``index``."""
        return self._robots[index].protocol

    # ------------------------------------------------------------------
    # Trace stream
    # ------------------------------------------------------------------
    def add_step_listener(
        self, listener: Callable[["Simulator", TraceStep], None]
    ) -> None:
        """Subscribe to the live trace stream.

        The listener is called after every :meth:`step`, with the
        simulator and the freshly recorded :class:`TraceStep` — even
        when the trace's retention policy drops the step.  Invariant
        monitors (:mod:`repro.verify.monitors`) attach here so they see
        the complete history regardless of trace bounding.  Listeners
        must not mutate the simulation.
        """
        self._step_listeners.append(listener)

    def remove_step_listener(
        self, listener: Callable[["Simulator", TraceStep], None]
    ) -> None:
        """Unsubscribe a previously added step listener."""
        self._step_listeners.remove(listener)

    def add_fault_listener(
        self, listener: Callable[["Simulator", int, Vec2, Vec2], None]
    ) -> None:
        """Subscribe to out-of-band fault injections.

        The listener is called after every :meth:`displace` with
        ``(simulator, index, old_position, new_position)``.  The
        observability recorder uses this to put transient faults on
        the run's event timeline.
        """
        self._fault_listeners.append(listener)

    def remove_fault_listener(
        self, listener: Callable[["Simulator", int, Vec2, Vec2], None]
    ) -> None:
        """Unsubscribe a previously added fault listener."""
        self._fault_listeners.remove(listener)

    def set_phase_hook(
        self, hook: Optional[Callable[[str, int], None]]
    ) -> Optional[Callable[[str, int], None]]:
        """Install (or clear, with None) the phase-boundary hook.

        The hook is called as ``hook(phase, time)`` when :meth:`step`
        enters each of its phases — ``"schedule"``, ``"compute"``
        (the observe+compute loop), ``"move"``, ``"record"`` — and
        once more as ``hook("end", time)`` after the step listeners
        ran.  Inside the compute loop the hook also fires at the two
        per-robot sub-phases, ``"compute.observe"`` (building the
        robot's observation) and ``"compute.decide"`` (the protocol's
        Compute plus target clamping); the dotted names let the span
        profiler attribute *self* time to the stage that actually
        spent it while rolling totals up into ``compute``.  An
        :class:`~repro.obs.recorder.ObsRecorder` pairs these calls
        with an injected monotonic clock to build the hot-path
        profile; the hook must not mutate the simulation.  Returns the
        previously installed hook.
        """
        previous = self._phase_hook
        self._phase_hook = hook
        return previous

    def set_robot_phase_hook(
        self, hook: Optional[Callable[[str, int, int], None]]
    ) -> Optional[Callable[[str, int, int], None]]:
        """Install (or clear, with None) the per-robot phase hook.

        The hook is called as ``hook(phase, robot, time)`` at each
        robot's Look (``"look"``, just before its observation is
        built), Compute (``"compute"``, just before its protocol runs)
        and Move (``"move"``, as its destination is applied) — the
        three phases of one activation cycle.  The causal tracer
        (:mod:`repro.obs.causal`) advances each robot's vector clock
        here; the hook must not mutate the simulation.  Returns the
        previously installed hook.
        """
        previous = self._robot_phase_hook
        self._robot_phase_hook = hook
        return previous

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> TraceStep:
        """Advance one instant: activate, observe, compute, move."""
        hook = self._phase_hook
        rhook = self._robot_phase_hook
        now = self._time
        if hook is not None:
            hook("schedule", now)
        active = self._scheduler.activations(self._time, self.count)
        if not active:
            raise SchedulerError(f"empty activation set at t={self._time}")
        if any(not (0 <= i < self.count) for i in active):
            raise SchedulerError(f"activation set {sorted(active)} out of range")

        # All active robots observe the same configuration P(t_j)...
        if hook is not None:
            hook("compute", now)
        new_positions: Dict[int, Vec2] = {}
        for index in sorted(active):
            robot = self._robots[index]
            if hook is not None:
                hook("compute.observe", now)
            if rhook is not None:
                rhook("look", index, now)
            observation = self._observe(index)
            if hook is not None:
                hook("compute.decide", now)
            if rhook is not None:
                rhook("compute", index, now)
            local_target = robot.protocol.on_activate(observation)
            world_target = robot.frame.to_world(local_target, self._anchors[index])
            clamped = self._positions[index].clamped_toward(world_target, robot.sigma)
            new_positions[index] = self._constrain_destination(index, clamped)

        # ...and move simultaneously.  The epoch only advances when a
        # position actually changed; per-robot position epochs let
        # observers keep cached entries for everyone who stayed put.
        if hook is not None:
            hook("move", now)
        moved = [
            index
            for index, position in new_positions.items()
            if position != self._positions[index]
        ]
        for index, position in new_positions.items():
            if rhook is not None:
                rhook("move", index, now)
            self._positions[index] = position
        if moved:
            self._epoch += 1
            for index in moved:
                self._pos_epoch[index] = self._epoch

        if hook is not None:
            hook("record", now)
        step = TraceStep(
            time=self._time,
            active=frozenset(active),
            positions=tuple(self._positions),
        )
        self._trace.record(step)
        self._time += 1
        for listener in self._step_listeners:
            listener(self, step)
        if hook is not None:
            hook("end", now)
        return step

    def run(self, steps: int) -> Trace:
        """Advance a fixed number of instants; returns the trace."""
        if steps < 0:
            raise ModelError(f"steps must be >= 0, got {steps}")
        for _ in range(steps):
            self.step()
        return self._trace

    def run_until(
        self,
        predicate: Callable[["Simulator"], bool],
        max_steps: int,
    ) -> bool:
        """Step until ``predicate(self)`` holds or ``max_steps`` elapse.

        Returns True when the predicate was satisfied.  The predicate
        is also checked before the first step.
        """
        if max_steps < 0:
            raise ModelError(f"max_steps must be >= 0, got {max_steps}")
        for _ in range(max_steps):
            if predicate(self):
                return True
            self.step()
        return predicate(self)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def displace(self, index: int, position: Vec2) -> None:
        """Teleport a robot out-of-band — a *transient fault*.

        This is a testing / fault-injection API, not part of the model:
        it corrupts the configuration the way the self-stabilization
        discussion of Section 5 envisages (arbitrary transient state
        perturbation).  Protocol-internal state (homes, granulars) is
        deliberately left stale; recovering from that is exactly what
        :mod:`repro.stabilization` exists for.

        A displacement always bumps the configuration epoch, so every
        cached derived quantity is recomputed on next use.
        """
        if not (0 <= index < self.count):
            raise ModelError(f"unknown robot {index}")
        for i, existing in enumerate(self._positions):
            if i != index and existing == position:
                raise ModelError(f"displacement collides with robot {i}")
        old = self._positions[index]
        self._positions[index] = position
        self._epoch += 1
        self._pos_epoch[index] = self._epoch
        for listener in self._fault_listeners:
            listener(self, index, old, position)

    # ------------------------------------------------------------------
    # Internals / extension hooks
    # ------------------------------------------------------------------
    def _constrain_destination(self, index: int, destination: Vec2) -> Vec2:
        """Environment-level movement constraint hook.

        The base model is the continuous plane (identity).  The
        Section 5 discrete worlds (:mod:`repro.discrete`) override this
        to snap destinations onto a lattice.
        """
        return destination

    def _initial_local_view(
        self,
        index: int,
        robot: Robot,
        visible: frozenset,
        positions: Sequence[Vec2],
    ) -> Sequence[Optional[Vec2]]:
        """The ``initial_positions`` sequence handed to one protocol bind.

        Entry ``i`` is ``P_i(t_0)`` in the observer's private frame, or
        None for robots outside its visibility range.  The base engine
        materializes the tuple eagerly; the event engine's huge-swarm
        mode (:class:`repro.events.engine.EventSimulator` with
        ``lazy_views=True``) overrides this with an on-demand view so
        building an n-robot swarm stays O(n) instead of O(n²).
        """
        anchor = self._anchors[index]
        to_local = robot.frame.to_local
        return tuple(
            to_local(p, anchor) if i in visible else None
            for i, p in enumerate(positions)
        )

    def _world_visibility_radius(self) -> Optional[float]:
        """Visibility range in world units; None means unlimited.

        The base simulator implements the paper's default model (every
        robot sees every robot); :class:`repro.visibility.simulator.
        VisibilitySimulator` overrides this.
        """
        return None

    def _compute_visible_from(self, index: int) -> frozenset:
        """Visibility of ``index`` from scratch (anchors only)."""
        radius = self._world_visibility_radius()
        if radius is None:
            return frozenset(range(self.count))
        me = self._anchors[index]
        return frozenset(
            i for i in range(self.count) if me.distance_to(self._anchors[i]) <= radius
        )

    def _visible_from(self, index: int) -> frozenset:
        """Indices visible to ``index`` (always includes itself).

        Evaluated on the anchor configuration ``P(t_0)``: protocol
        movements stay within granular-scale bands, so the visibility
        graph is treated as static for a run — which also makes the
        per-robot result cacheable at construction time.
        """
        if self._caching:
            return self._visible_sets[index]
        return self._compute_visible_from(index)

    def _config_for_observation(self, index: int) -> Sequence[Vec2]:
        """The configuration an activation's Look phase returns.

        The SSM default is the instantaneous ``P(t_j)``; the CORDA-style
        :class:`repro.corda.simulator.StaleLookSimulator` overrides this
        with a (boundedly) stale configuration.
        """
        return self._positions

    def _observe(self, index: int) -> Observation:
        # Subclass hooks may have side effects (stale-look bookkeeping,
        # noise RNG draws), so the config is fetched unconditionally —
        # caching must never change how often hooks run.
        config = self._config_for_observation(index)
        if not self._caching:
            return self._observe_uncached(index, config)

        live = config is self._positions
        entry = self._obs_cache[index]
        if entry is not None:
            if (live and entry.live and entry.epoch == self._epoch) or (
                not live and entry.config_ref is config
            ):
                # Nothing the observer can see has changed: reuse the
                # whole snapshot (only the timestamp differs).
                self._stats.cache_hits += 1
                self._stats.observations_reused += len(entry.observed)
                return Observation(
                    time=self._time,
                    self_index=index,
                    robots=entry.observed,
                    _by_index=entry.index_map,
                )

        self._stats.cache_misses += 1
        visible = self._visible_lists[index]
        to_local, anchor = self._local_transforms[index]
        obs_ids = self._observed_ids
        built: List[ObservedRobot] = []
        reused = 0

        if entry is not None and live and entry.live:
            # Per-entry reuse by position epoch: integer compare per
            # robot instead of a transform + allocation.
            pos_epoch = self._pos_epoch
            base_epoch = entry.epoch
            old = entry.observed
            for k, i in enumerate(visible):
                if pos_epoch[i] <= base_epoch:
                    built.append(old[k])
                    reused += 1
                else:
                    built.append(
                        ObservedRobot(
                            index=i,
                            position=to_local(config[i], anchor),
                            observable_id=obs_ids[i],
                        )
                    )
        elif entry is not None:
            # Cached build came from (or is compared against) a
            # non-live snapshot: reuse entries whose world position is
            # value-identical.
            old_world = entry.world
            old = entry.observed
            for k, i in enumerate(visible):
                p = config[i]
                if p == old_world[k]:
                    built.append(old[k])
                    reused += 1
                else:
                    built.append(
                        ObservedRobot(
                            index=i,
                            position=to_local(p, anchor),
                            observable_id=obs_ids[i],
                        )
                    )
        else:
            for i in visible:
                built.append(
                    ObservedRobot(
                        index=i,
                        position=to_local(config[i], anchor),
                        observable_id=obs_ids[i],
                    )
                )

        observed = tuple(built)
        index_map = {r.index: r.position for r in observed}
        self._stats.observations_built += len(observed) - reused
        self._stats.observations_reused += reused
        self._obs_cache[index] = _ObservationCacheEntry(
            epoch=self._epoch,
            live=live,
            config_ref=None if live else config,
            world=tuple(config[i] for i in visible),
            observed=observed,
            index_map=index_map,
        )
        return Observation(
            time=self._time, self_index=index, robots=observed, _by_index=index_map
        )

    def _observe_uncached(self, index: int, config: Sequence[Vec2]) -> Observation:
        """The original always-rebuild pipeline (A/B baseline)."""
        robot = self._robots[index]
        anchor = self._anchors[index]
        visible = self._visible_from(index)
        observed = tuple(
            ObservedRobot(
                index=i,
                position=robot.frame.to_local(config[i], anchor),
                observable_id=self._robots[i].observable_id if self._identified else None,
            )
            for i in range(self.count)
            if i in visible
        )
        self._stats.observations_built += len(observed)
        return Observation(time=self._time, self_index=index, robots=observed)
