"""Robot specifications.

A :class:`Robot` bundles everything the simulator needs to know about
one robot: where it starts, how it perceives the world (its local
frame), how far it can travel in one activation (``sigma``), whether it
carries an observable identifier, and which protocol instance serves as
its non-oblivious memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.geometry.frames import Frame
from repro.geometry.vec import Vec2
from repro.model.protocol import Protocol

__all__ = ["Robot"]


@dataclass
class Robot:
    """One robot of the swarm.

    Attributes:
        position: initial world position (the simulator owns the
            evolving position; this field is never mutated).
        protocol: the movement protocol instance — the robot's entire
            behaviour and memory.  Each robot must have its *own*
            instance.
        frame: the robot's local coordinate system (rotation, unit
            scale, handedness).  Defaults to the world frame.
        sigma: maximum distance (world units) travelled in a single
            activation; must be positive.  The paper allows this bound
            to differ between robots.
        observable_id: the visible identifier in *identified* systems,
            or None in anonymous ones.  Observable means: it appears in
            every other robot's observations.
    """

    position: Vec2
    protocol: Protocol
    frame: Frame = field(default_factory=Frame)
    sigma: float = 0.25
    observable_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.sigma <= 0.0:
            raise ValueError(f"sigma must be positive, got {self.sigma}")
