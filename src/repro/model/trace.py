"""Execution traces.

The simulator records the full history of a run: who was active when,
and where everyone was after each step.  Analysis code (metrics,
collision audits, figure regeneration) and many tests consume traces
instead of peeking into live simulator state.

By default every step is retained.  Long asynchronous runs (hundreds
of thousands of instants) would then hold O(steps * n) position tuples,
so a :class:`TracePolicy` can bound memory two ways:

* **ring buffer** (``capacity``): only the most recent ``capacity``
  recorded steps are kept; older ones are evicted (counted in
  ``dropped``).
* **stride sampling** (``stride``): only every ``stride``-th instant is
  recorded (the rest are counted in ``skipped``).

Both modes always keep the *latest* step reachable via
:attr:`Trace.latest` / :meth:`Trace.positions_at`, and the aggregate
metrics operate on whatever was retained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ModelError
from repro.geometry.vec import Vec2

__all__ = ["TraceStep", "Trace", "TracePolicy"]


@dataclass(frozen=True, slots=True)
class TraceStep:
    """The outcome of one instant.

    Attributes:
        time: the instant ``t_j``.
        active: indices of the robots activated at ``t_j``.
        positions: world positions of all robots at ``t_{j+1}`` (after
            the movements of the step).
    """

    time: int
    active: FrozenSet[int]
    positions: Tuple[Vec2, ...]


@dataclass(frozen=True, slots=True)
class TracePolicy:
    """Memory-control policy for :class:`Trace` recording.

    Attributes:
        capacity: when set, at most this many recorded steps are
            retained (a ring buffer of the most recent ones).
        stride: record only instants whose time is a multiple of this
            (1 = record everything).
    """

    capacity: Optional[int] = None
    stride: int = 1

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity < 1:
            raise ModelError(f"capacity must be >= 1, got {self.capacity}")
        if self.stride < 1:
            raise ModelError(f"stride must be >= 1, got {self.stride}")

    @property
    def bounded(self) -> bool:
        """Whether this policy can drop steps."""
        return self.capacity is not None or self.stride > 1


@dataclass
class Trace:
    """A complete (or policy-bounded) run history.

    Attributes:
        initial_positions: the configuration ``P(t_0)``.
        steps: the retained :class:`TraceStep` records, ascending time.
        policy: what to retain (default: everything).
        dropped: steps evicted by the ring buffer.
        skipped: steps never recorded due to stride sampling.
    """

    initial_positions: Tuple[Vec2, ...]
    steps: List[TraceStep] = field(default_factory=list)
    policy: TracePolicy = field(default_factory=TracePolicy)
    dropped: int = 0
    skipped: int = 0
    _latest: Optional[TraceStep] = field(default=None, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[TraceStep]:
        return iter(self.steps)

    @property
    def count(self) -> int:
        """Number of robots."""
        return len(self.initial_positions)

    @property
    def total_steps(self) -> int:
        """Instants simulated, including dropped and skipped ones."""
        return len(self.steps) + self.dropped + self.skipped

    @property
    def latest(self) -> Optional[TraceStep]:
        """The most recent step, retained or not (None before any)."""
        if self._latest is not None:
            return self._latest
        return self.steps[-1] if self.steps else None

    def record(self, step: TraceStep) -> None:
        """Record one step under the trace's retention policy."""
        self._latest = step
        policy = self.policy
        if policy.stride > 1 and step.time % policy.stride != 0:
            self.skipped += 1
            return
        self.steps.append(step)
        if policy.capacity is not None and len(self.steps) > policy.capacity:
            del self.steps[0]
            self.dropped += 1

    def positions_at(self, time: int) -> Tuple[Vec2, ...]:
        """The configuration ``P(t)``; ``time`` from 0 to ``len(steps)``.

        Raises:
            ModelError: when the instant was dropped or skipped under a
                bounding policy.
        """
        if time == 0:
            return self.initial_positions
        latest = self._latest
        if latest is not None and time - 1 == latest.time:
            return latest.positions
        if not self.policy.bounded:
            return self.steps[time - 1].positions
        # Bounded trace: binary-search the retained steps by time.
        lo, hi = 0, len(self.steps)
        target = time - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.steps[mid].time < target:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self.steps) and self.steps[lo].time == target:
            return self.steps[lo].positions
        raise ModelError(
            f"instant {time} is not retained by this trace "
            f"(policy {self.policy!r}; {self.dropped} dropped, "
            f"{self.skipped} skipped)"
        )

    def retained_times(self) -> List[int]:
        """The instants whose steps are retained, in ascending order.

        Under a bounding policy this is the surviving subset; audits
        that sample the history (the verification monitors, eviction
        tests) use it to know which ``positions_at`` queries are legal.
        """
        return [step.time for step in self.steps]

    def path_of(self, index: int) -> List[Vec2]:
        """The retained position sequence of one robot."""
        return [self.initial_positions[index]] + [s.positions[index] for s in self.steps]

    def distance_travelled(self, index: int) -> float:
        """Total world distance covered by one robot (retained steps)."""
        path = self.path_of(index)
        return sum(a.distance_to(b) for a, b in zip(path, path[1:]))

    def activation_count(self, index: int) -> int:
        """How many retained instants the robot was active."""
        return sum(1 for s in self.steps if index in s.active)

    def min_pairwise_distance(self) -> float:
        """The smallest inter-robot distance over the retained history.

        The collision-avoidance audits assert this never falls to zero
        (Section 3.2's Voronoi-confinement guarantee).
        """
        best = float("inf")
        for positions in self._retained_configurations():
            for i in range(len(positions)):
                for j in range(i + 1, len(positions)):
                    best = min(best, positions[i].distance_to(positions[j]))
        return best

    def _retained_configurations(self) -> Iterator[Tuple[Vec2, ...]]:
        yield self.initial_positions
        for step in self.steps:
            yield step.positions

    def movements_of(self, index: int) -> List[Tuple[int, Vec2, Vec2]]:
        """Every actual movement of a robot as ``(time, before, after)``.

        Only retained steps where the position changed are reported;
        the "silence" audits check that idle robots produce none.
        """
        moves: List[Tuple[int, Vec2, Vec2]] = []
        previous = self.initial_positions[index]
        for step in self.steps:
            current = step.positions[index]
            if current != previous:
                moves.append((step.time, previous, current))
            previous = current
        return moves


def bounding_box(points: Sequence[Vec2]) -> Tuple[Vec2, Vec2]:
    """Axis-aligned bounding box of a point set as ``(lo, hi)``."""
    if not points:
        raise ValueError("bounding_box of an empty point set")
    return (
        Vec2(min(p.x for p in points), min(p.y for p in points)),
        Vec2(max(p.x for p in points), max(p.y for p in points)),
    )
