"""Execution traces.

The simulator records the full history of a run: who was active when,
and where everyone was after each step.  Analysis code (metrics,
collision audits, figure regeneration) and many tests consume traces
instead of peeking into live simulator state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, List, Sequence, Tuple

from repro.geometry.vec import Vec2

__all__ = ["TraceStep", "Trace"]


@dataclass(frozen=True, slots=True)
class TraceStep:
    """The outcome of one instant.

    Attributes:
        time: the instant ``t_j``.
        active: indices of the robots activated at ``t_j``.
        positions: world positions of all robots at ``t_{j+1}`` (after
            the movements of the step).
    """

    time: int
    active: FrozenSet[int]
    positions: Tuple[Vec2, ...]


@dataclass
class Trace:
    """A complete run history.

    Attributes:
        initial_positions: the configuration ``P(t_0)``.
        steps: one :class:`TraceStep` per simulated instant.
    """

    initial_positions: Tuple[Vec2, ...]
    steps: List[TraceStep] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[TraceStep]:
        return iter(self.steps)

    @property
    def count(self) -> int:
        """Number of robots."""
        return len(self.initial_positions)

    def positions_at(self, time: int) -> Tuple[Vec2, ...]:
        """The configuration ``P(t)``; ``time`` from 0 to ``len(steps)``."""
        if time == 0:
            return self.initial_positions
        return self.steps[time - 1].positions

    def path_of(self, index: int) -> List[Vec2]:
        """The full position sequence of one robot (length steps+1)."""
        return [self.initial_positions[index]] + [s.positions[index] for s in self.steps]

    def distance_travelled(self, index: int) -> float:
        """Total world distance covered by one robot."""
        path = self.path_of(index)
        return sum(a.distance_to(b) for a, b in zip(path, path[1:]))

    def activation_count(self, index: int) -> int:
        """How many instants the robot was active."""
        return sum(1 for s in self.steps if index in s.active)

    def min_pairwise_distance(self) -> float:
        """The smallest inter-robot distance over the whole run.

        The collision-avoidance audits assert this never falls to zero
        (Section 3.2's Voronoi-confinement guarantee).
        """
        best = float("inf")
        for time in range(len(self.steps) + 1):
            positions = self.positions_at(time)
            for i in range(len(positions)):
                for j in range(i + 1, len(positions)):
                    best = min(best, positions[i].distance_to(positions[j]))
        return best

    def movements_of(self, index: int) -> List[Tuple[int, Vec2, Vec2]]:
        """Every actual movement of a robot as ``(time, before, after)``.

        Only steps where the position changed are reported; the
        "silence" audits check that idle robots produce none.
        """
        moves: List[Tuple[int, Vec2, Vec2]] = []
        previous = self.initial_positions[index]
        for step in self.steps:
            current = step.positions[index]
            if current != previous:
                moves.append((step.time, previous, current))
            previous = current
        return moves


def bounding_box(points: Sequence[Vec2]) -> Tuple[Vec2, Vec2]:
    """Axis-aligned bounding box of a point set as ``(lo, hi)``."""
    if not points:
        raise ValueError("bounding_box of an empty point set")
    return (
        Vec2(min(p.x for p in points), min(p.y for p in points)),
        Vec2(max(p.x for p in points), max(p.y for p in points)),
    )
