"""The protocol interface — a robot's behaviour and memory.

A :class:`Protocol` instance is one robot's non-oblivious state
machine.  The simulator calls :meth:`Protocol.bind` once before the run
and :meth:`Protocol.on_activate` at every activation; everything else
(bit queues, decoded traffic) is the programming surface the channel
layer and the applications build on.

All six protocols of the paper transmit *bits*; message framing on top
of bits lives in :mod:`repro.coding` and :mod:`repro.channels`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Tuple

from repro.errors import ProtocolError
from repro.geometry.vec import Vec2
from repro.model.observation import Observation

__all__ = ["BitEvent", "Protocol", "BindingInfo"]


@dataclass(frozen=True, slots=True)
class BitEvent:
    """One decoded bit in transit.

    Attributes:
        time: the instant at which the decoding observer saw the
            movement that completed the bit.
        src: tracking index of the sender.
        dst: tracking index of the addressee.
        bit: the decoded bit, 0 or 1.
    """

    time: int
    src: int
    dst: int
    bit: int


@dataclass(frozen=True, slots=True)
class BindingInfo:
    """Everything a robot knows about itself and the system at start.

    Attributes:
        index: the robot's own tracking index.
        count: number of robots ``n``.
        sigma: the robot's per-activation movement bound, expressed in
            its *local* units.
        initial_positions: ``P(t_0)`` in the robot's stationary private
            frame (Section 4.2 assumes the robots know ``P(t_0)``; in
            synchronous runs this equals the first observation anyway).
            Under limited visibility (:mod:`repro.visibility`) entries
            for robots outside the observer's range are None.
        observable_ids: the visible identifiers by tracking index, or
            None in anonymous systems.
        visibility_radius: the observer's visibility range in *local*
            units, or None for the paper's default unlimited-visibility
            setting.
    """

    index: int
    count: int
    sigma: float
    initial_positions: Tuple[Optional[Vec2], ...]
    observable_ids: Optional[Tuple[int, ...]] = None
    visibility_radius: Optional[float] = None


class Protocol(ABC):
    """Base class of all movement protocols.

    Subclasses implement :meth:`_compute` (the movement rule) and
    :meth:`_decode` (the observation rule).  The base class manages the
    outgoing bit queue and the incoming/overheard bit logs.
    """

    #: Whether the protocol satisfies the paper's *silence* property:
    #: a robot with nothing to send does not move.  The synchronous
    #: family is silent; the asynchronous protocols and the flocking
    #: overlay move while idle (Remark 4.3 / the common drift) and
    #: override this to False.  The silence invariant monitor
    #: (:mod:`repro.verify.monitors`) keys on this declaration.
    idle_silent: bool = True

    def __init__(self) -> None:
        self._info: Optional[BindingInfo] = None
        self._outgoing: Deque[Tuple[int, int]] = deque()
        self._received: List[BitEvent] = []
        self._overheard: List[BitEvent] = []
        self._activations: int = 0
        # Observability sink (set by repro.obs.recorder.ObsRecorder).
        # None by default: the hot path pays one identity check per
        # activation, and no bit-lifecycle events are dispatched.
        self._obs_sink = None
        self._obs_time: int = -1
        self._obs_pop: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------------
    # Simulator-facing lifecycle
    # ------------------------------------------------------------------
    def bind(self, info: BindingInfo) -> None:
        """Attach the protocol to a robot; called once by the simulator."""
        if self._info is not None:
            raise ProtocolError(
                "protocol instance already bound; every robot needs its own instance"
            )
        self._info = info
        self._on_bind(info)

    def on_activate(self, observation: Observation) -> Vec2:
        """Handle one activation; returns the destination (local frame).

        Order matters and mirrors the model: the robot first *observes*
        (decodes everyone's movements from the snapshot), then
        *computes* its own destination.
        """
        info = self._require_info()
        if observation.self_index != info.index:
            raise ProtocolError(
                f"observation for robot {observation.self_index} delivered to "
                f"protocol bound to robot {info.index}"
            )
        self._activations += 1
        sink = self._obs_sink
        if sink is not None:
            self._obs_time = observation.time
        for event in self._decode(observation):
            self._overheard.append(event)
            if event.dst == info.index:
                self._received.append(event)
                if sink is not None:
                    sink.bit_receipt(info.index, event)
            elif sink is not None:
                sink.bit_overheard(info.index, event)
        target = self._compute(observation)
        if sink is not None and self._obs_pop is not None:
            dst, bit = self._obs_pop
            self._obs_pop = None
            sink.bit_moved(info.index, dst, bit, observation.time, target)
        return target

    # ------------------------------------------------------------------
    # Application-facing API
    # ------------------------------------------------------------------
    def send_bit(self, dst: int, bit: int) -> None:
        """Queue one bit for the robot with tracking index ``dst``."""
        info = self._require_info()
        if bit not in (0, 1):
            raise ProtocolError(f"bit must be 0 or 1, got {bit!r}")
        if not (0 <= dst < info.count):
            raise ProtocolError(f"destination index {dst} out of range")
        if dst == info.index:
            raise ProtocolError("a robot cannot address a movement-bit to itself")
        self._outgoing.append((dst, bit))

    def send_bits(self, dst: int, bits: Sequence[int]) -> None:
        """Queue a bit sequence for ``dst`` (in order)."""
        for bit in bits:
            self.send_bit(dst, bit)

    @property
    def pending_bits(self) -> int:
        """Number of queued bits not yet transmitted."""
        return len(self._outgoing)

    @property
    def received(self) -> Tuple[BitEvent, ...]:
        """Bits addressed to this robot, in decoding order."""
        return tuple(self._received)

    @property
    def overheard(self) -> Tuple[BitEvent, ...]:
        """Every bit this robot decoded, whoever it was addressed to.

        The paper notes that "every robot is able to know all the
        messages sent in the system", which "could provide
        fault-tolerance by redundancy"; this log is that capability.
        """
        return tuple(self._overheard)

    @property
    def activations(self) -> int:
        """How many times this robot has been activated."""
        return self._activations

    @property
    def info(self) -> BindingInfo:
        """The binding info (raises if not yet bound)."""
        return self._require_info()

    # ------------------------------------------------------------------
    # Subclass surface
    # ------------------------------------------------------------------
    def _on_bind(self, info: BindingInfo) -> None:
        """Hook for subclass preprocessing (Voronoi, naming, ...)."""

    @abstractmethod
    def _decode(self, observation: Observation) -> List[BitEvent]:
        """Decode other robots' movements visible in this snapshot."""

    @abstractmethod
    def _compute(self, observation: Observation) -> Vec2:
        """The movement rule: destination in the stationary local frame."""

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _require_info(self) -> BindingInfo:
        if self._info is None:
            raise ProtocolError("protocol not bound to a robot yet")
        return self._info

    def _next_outgoing(self) -> Optional[Tuple[int, int]]:
        """Pop the next queued (dst, bit), or None when idle."""
        if self._outgoing:
            entry = self._outgoing.popleft()
            sink = self._obs_sink
            if sink is not None:
                self._obs_pop = entry
                sink.bit_encode_started(
                    self._require_info().index, entry[0], entry[1], self._obs_time
                )
            return entry
        return None

    def _peek_outgoing(self) -> Optional[Tuple[int, int]]:
        """The next queued (dst, bit) without removing it."""
        if self._outgoing:
            return self._outgoing[0]
        return None
