"""Activation schedulers.

Section 2: "The concurrent activation of robots is modeled by the
interleaving model in which the robot activations are driven by a
uniform fair scheduler. [...] In the former case [synchronous], every
robot is active at each instant.  The latter [asynchronous] means that
at least one robot is required to be active at each instant."

The fair asynchronous scheduler here enforces a *quantified* fairness
bound: every robot is activated at least once in every window of
``fairness_bound`` consecutive instants.  The paper only needs
eventual fairness; the quantitative bound makes latency measurable and
termination provable in tests.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import FrozenSet, List, Optional, Sequence

from repro.errors import SchedulerError

__all__ = [
    "Scheduler",
    "SynchronousScheduler",
    "FairAsynchronousScheduler",
    "RoundRobinScheduler",
    "ScriptedScheduler",
]


class Scheduler(ABC):
    """Chooses which robots are active at each instant."""

    @abstractmethod
    def activations(self, time: int, count: int) -> FrozenSet[int]:
        """The (nonempty) set of active robot indices at ``time``.

        The simulator calls this with strictly increasing ``time``
        starting from 0 and a constant ``count``.
        """


class SynchronousScheduler(Scheduler):
    """Every robot is active at every instant (Section 3 setting)."""

    def activations(self, time: int, count: int) -> FrozenSet[int]:
        if count < 1:
            raise SchedulerError("cannot schedule an empty swarm")
        return frozenset(range(count))


class FairAsynchronousScheduler(Scheduler):
    """Random nonempty activation sets with a hard fairness window.

    At each instant every robot is independently active with
    probability ``activation_probability``; the set is then patched to
    guarantee (a) it is nonempty and (b) no robot stays inactive for
    ``fairness_bound`` or more consecutive instants.

    With ``activation_probability=1.0`` this degenerates to the
    synchronous scheduler; with a small probability and a large bound
    it approaches the adversarial end of the SSM spectrum.

    Args:
        fairness_bound: ``k >= 1`` — every robot is active at least
            once in any window of ``k`` instants.
        activation_probability: per-robot independent activation
            probability in ``(0, 1]``.
        seed: RNG seed; runs are deterministic given the seed.
        activate_all_first: when True, instant 0 activates everyone —
            the Section 4.2 assumption "all the robots are awake in
            t0".
    """

    def __init__(
        self,
        fairness_bound: int = 4,
        activation_probability: float = 0.5,
        seed: int = 0,
        activate_all_first: bool = True,
    ) -> None:
        if fairness_bound < 1:
            raise SchedulerError(f"fairness_bound must be >= 1, got {fairness_bound}")
        if not (0.0 < activation_probability <= 1.0):
            raise SchedulerError(
                f"activation_probability must be in (0, 1], got {activation_probability}"
            )
        self.fairness_bound = fairness_bound
        self.activation_probability = activation_probability
        self.activate_all_first = activate_all_first
        self._rng = random.Random(seed)
        self._last_active: Optional[List[int]] = None
        self._expected_time = 0

    def activations(self, time: int, count: int) -> FrozenSet[int]:
        if count < 1:
            raise SchedulerError("cannot schedule an empty swarm")
        if time != self._expected_time:
            raise SchedulerError(
                f"scheduler driven out of order: expected t={self._expected_time}, got t={time}"
            )
        self._expected_time += 1

        if self._last_active is None:
            self._last_active = [-1] * count
        elif len(self._last_active) != count:
            raise SchedulerError("robot count changed mid-run")

        if time == 0 and self.activate_all_first:
            active = set(range(count))
        else:
            active = {
                i
                for i in range(count)
                if self._rng.random() < self.activation_probability
            }
            # Fairness patch: anyone inactive for the whole trailing
            # window must run now.
            for i in range(count):
                if time - self._last_active[i] >= self.fairness_bound:
                    active.add(i)
            if not active:
                active.add(self._rng.randrange(count))

        for i in active:
            self._last_active[i] = time
        return frozenset(active)


class RoundRobinScheduler(Scheduler):
    """Exactly one robot active per instant, cyclically.

    The slowest fair schedule: a useful worst case for latency
    measurements (fairness bound equals the swarm size).
    """

    def __init__(self, activate_all_first: bool = False) -> None:
        self.activate_all_first = activate_all_first

    def activations(self, time: int, count: int) -> FrozenSet[int]:
        if count < 1:
            raise SchedulerError("cannot schedule an empty swarm")
        if time == 0 and self.activate_all_first:
            return frozenset(range(count))
        offset = time - 1 if self.activate_all_first else time
        return frozenset({offset % count})


class ScriptedScheduler(Scheduler):
    """Replays an explicit activation script (for tests).

    Args:
        script: one activation set per instant; the run must not be
            longer than the script.
    """

    def __init__(self, script: Sequence[Sequence[int]]) -> None:
        self._script = [frozenset(step) for step in script]
        for t, step in enumerate(self._script):
            if not step:
                raise SchedulerError(f"scripted activation set at t={t} is empty")

    def activations(self, time: int, count: int) -> FrozenSet[int]:
        if time >= len(self._script):
            raise SchedulerError(f"script exhausted at t={time}")
        step = self._script[time]
        if any(not (0 <= i < count) for i in step):
            raise SchedulerError(f"script at t={time} names an unknown robot: {sorted(step)}")
        return step
