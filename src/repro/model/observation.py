"""Observations — the snapshots an active robot receives.

When a robot is activated at instant ``t_j`` it observes the positions
of all robots in the configuration ``P(t_j)``, expressed in its own
coordinates.  Two modelling conventions deserve a note:

**Stationary private frame.**  Positions are reported in the robot's
*stationary* frame: the orientation, scale and handedness of its local
frame, but anchored at its *initial* position rather than its current
one.  A real SSM robot observes relative to its current position, but a
non-oblivious robot can reconstruct the stationary view exactly by
dead-reckoning the movements it has itself computed (it knows every
destination it chose and its own ``sigma``).  Using the stationary view
directly keeps every protocol implementation free of self-motion
compensation boilerplate without granting any extra power.

**Stable indices.**  Observed robots are listed in a fixed order, so an
observer can correlate "the same robot" across successive snapshots.
In the paper's protocols this correlation is always geometrically
recoverable — each robot is confined to its own granular (synchronous
and n-robot asynchronous protocols) or to its own half-line and
excursion band (two-robot asynchronous protocol) — so stable indices
are a simulation convenience, not an anonymity leak.  Anonymous
protocols must not treat the index as an agreed name: the naming layers
derive names from geometry only, and tests enforce that the derived
names agree across observers while indices are never exchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.geometry.vec import Vec2

__all__ = ["ObservedRobot", "Observation"]


@dataclass(frozen=True, slots=True)
class ObservedRobot:
    """One robot as seen by an observer.

    Attributes:
        index: stable per-run tracking index (see module docstring).
        position: the robot's position in the observer's stationary
            private frame.
        observable_id: the robot's visible identifier in identified
            systems; None when the system is anonymous.
    """

    index: int
    position: Vec2
    observable_id: Optional[int] = None


@dataclass(frozen=True, slots=True)
class Observation:
    """An activation snapshot.

    Under unlimited visibility (the paper's default) ``robots`` holds
    every robot, ordered by index.  Under limited visibility (the
    Section 5 extension, :mod:`repro.visibility`) it holds only the
    robots the observer can see — always including the observer itself
    — so lookups go through the tracking index, not tuple position.

    Attributes:
        time: the instant ``t_j`` at which the snapshot was taken.
        self_index: the observer's own tracking index.
        robots: the observed robots, ordered by index.
    """

    time: int
    self_index: int
    robots: Tuple[ObservedRobot, ...]
    # Lazily built index -> position map; decoders look every robot up
    # on every activation, so the O(n) scan per lookup was the hottest
    # loop in the whole engine.  compare=False keeps equality and hash
    # semantics identical to the original three-field dataclass.
    _by_index: Optional[Dict[int, Vec2]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def count(self) -> int:
        """Number of robots visible in this snapshot."""
        return len(self.robots)

    @property
    def self_position(self) -> Vec2:
        """The observer's own current position (stationary frame)."""
        position = self.get(self.self_index)
        if position is None:  # pragma: no cover - simulator always includes self
            raise KeyError(f"observer {self.self_index} missing from its own snapshot")
        return position

    def get(self, index: int) -> Optional[Vec2]:
        """Position of a robot, or None when it is not visible (O(1))."""
        lookup = self._by_index
        if lookup is None:
            lookup = {robot.index: robot.position for robot in self.robots}
            object.__setattr__(self, "_by_index", lookup)
        return lookup.get(index)

    def position_of(self, index: int) -> Vec2:
        """Position of the robot with the given tracking index.

        Raises:
            KeyError: when the robot is outside the observer's
                visibility range.
        """
        position = self.get(index)
        if position is None:
            raise KeyError(f"robot {index} is not visible in this snapshot")
        return position

    def visible_indices(self) -> Tuple[int, ...]:
        """Tracking indices present in this snapshot, ascending."""
        return tuple(r.index for r in self.robots)

    def others(self) -> Sequence[ObservedRobot]:
        """All observed robots except the observer itself."""
        return [r for r in self.robots if r.index != self.self_index]

    def positions(self) -> Tuple[Vec2, ...]:
        """All visible positions in index order (observer included)."""
        return tuple(r.position for r in self.robots)
