"""Command-line interface.

Usage::

    python -m repro demo                 # quickstart in the terminal
    python -m repro figures OUTDIR       # regenerate the paper's figures as SVG
    python -m repro tradeoff [--n ...]   # print the §5 slice trade-off table
    python -m repro animate              # terminal movie of an async exchange

The CLI only orchestrates library calls; everything it does is
available programmatically.
"""

from __future__ import annotations

import argparse
import os
from typing import List, Optional, Sequence

from repro.analysis.complexity import slice_tradeoff_table
from repro.analysis.render import render_configuration
from repro.analysis.svg import svg_configuration, svg_trace, write_svg
from repro.apps.harness import SwarmHarness, ring_positions
from repro.geometry.vec import Vec2
from repro.model.scheduler import FairAsynchronousScheduler
from repro.naming.symmetry import figure3_configuration
from repro.protocols.async_n import AsyncNProtocol
from repro.protocols.async_two import AsyncTwoProtocol
from repro.protocols.sync_granular import SyncGranularProtocol
from repro.protocols.sync_two import SyncTwoProtocol

__all__ = ["main"]


def _cmd_demo(_: argparse.Namespace) -> int:
    positions = ring_positions(6, radius=10.0, jitter=0.05)
    print("The swarm:")
    print(render_configuration(positions))
    harness = SwarmHarness(
        positions, protocol_factory=lambda: SyncGranularProtocol(), sigma=4.0
    )
    message = "hello, robot 3"
    harness.channel(0).send(3, message)
    delivered = harness.pump(lambda h: len(h.channel(3).inbox) >= 1, max_steps=2000)
    if not delivered:  # pragma: no cover - deterministic success
        print("delivery failed")
        return 1
    received = harness.channel(3).inbox[0]
    print(f"\nrobot 0 -> robot 3 by movement signals: {received.text()!r}")
    print(f"instants: {harness.simulator.time}")
    return 0


def _figure1(outdir: str) -> str:
    h = SwarmHarness(
        [Vec2(0.0, 0.0), Vec2(8.0, 0.0)],
        protocol_factory=lambda: SyncTwoProtocol(),
        identified=False,
        sigma=8.0,
    )
    h.channel(0).send(1, "hi")
    h.channel(1).send(0, "yo")
    h.run(70)
    return write_svg(svg_trace(h.simulator.trace), os.path.join(outdir, "fig1_sync_two.svg"))


def _figure2(outdir: str) -> str:
    h = SwarmHarness(
        ring_positions(12, radius=10.0, jitter=0.06),
        protocol_factory=lambda: SyncGranularProtocol(),
        sigma=4.0,
    )
    protocol = h.simulator.protocol_of(0)
    granulars = {j: protocol.granular_of(j) for j in range(12)}
    positions = [r.position for r in h.robots]
    return write_svg(
        svg_configuration(positions, granulars=granulars),
        os.path.join(outdir, "fig2_granulars.svg"),
    )


def _figure3(outdir: str) -> str:
    points = figure3_configuration()
    return write_svg(
        svg_configuration(points), os.path.join(outdir, "fig3_symmetry.svg")
    )


def _figure5(outdir: str) -> str:
    h = SwarmHarness(
        [Vec2(0.0, 0.0), Vec2(10.0, 0.0)],
        protocol_factory=lambda: AsyncTwoProtocol(),
        scheduler=FairAsynchronousScheduler(fairness_bound=4, seed=23),
        identified=False,
        sigma=10.0,
    )
    h.simulator.protocol_of(0).send_bits(1, [0, 0, 1])
    h.simulator.protocol_of(1).send_bits(0, [0])
    h.run(350)
    return write_svg(svg_trace(h.simulator.trace), os.path.join(outdir, "fig5_async_two.svg"))


def _figure6(outdir: str) -> str:
    h = SwarmHarness(
        ring_positions(4, radius=10.0, jitter=0.07),
        protocol_factory=lambda: AsyncNProtocol(naming="sec"),
        scheduler=FairAsynchronousScheduler(fairness_bound=3, seed=4),
        identified=False,
        frame_regime="chirality",
        sigma=4.0,
    )
    h.simulator.protocol_of(0).send_bits(2, [1, 0])
    h.run(300)
    return write_svg(svg_trace(h.simulator.trace), os.path.join(outdir, "fig6_async_n.svg"))


def _cmd_figures(args: argparse.Namespace) -> int:
    os.makedirs(args.outdir, exist_ok=True)
    produced: List[str] = [
        _figure1(args.outdir),
        _figure2(args.outdir),
        _figure3(args.outdir),
        _figure5(args.outdir),
        _figure6(args.outdir),
    ]
    for path in produced:
        print(f"wrote {path}")
    return 0


def _cmd_animate(args: argparse.Namespace) -> int:
    from repro.analysis.animate import play

    h = SwarmHarness(
        [Vec2(0.0, 0.0), Vec2(10.0, 0.0)],
        protocol_factory=lambda: AsyncTwoProtocol(bounded=True),
        scheduler=FairAsynchronousScheduler(fairness_bound=3, seed=args.seed),
        identified=False,
        sigma=10.0,
    )
    h.simulator.protocol_of(0).send_bits(1, [1, 0, 1])
    h.simulator.protocol_of(1).send_bits(0, [0, 1])
    h.run(args.steps)
    frames = play(
        h.simulator.trace,
        delay=args.delay,
        every=max(1, args.steps // 120),
    )
    print(f"\n{frames} frames; bits exchanged: "
          f"{[e.bit for e in h.simulator.protocol_of(1).received]} / "
          f"{[e.bit for e in h.simulator.protocol_of(0).received]}")
    return 0


def _cmd_tradeoff(args: argparse.Namespace) -> int:
    rows = slice_tradeoff_table(args.n, bases=args.k or ())
    header = f"{'n':>6} {'k':>4} {'digits':>6} {'steps(2n)':>9} {'steps(2k+1)':>11} {'slowdown':>8}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row.n:>6} {row.k:>4} {row.digits:>6} {row.steps_full:>9} "
            f"{row.steps_logk:>11} {row.slowdown:>8.2f}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Deaf, Dumb, and Chatting Robots — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="send one message across a small swarm")
    demo.set_defaults(handler=_cmd_demo)

    figures = sub.add_parser("figures", help="regenerate the paper's figures as SVG")
    figures.add_argument("outdir", help="output directory")
    figures.set_defaults(handler=_cmd_figures)

    animate = sub.add_parser(
        "animate", help="play an asynchronous two-robot exchange in the terminal"
    )
    animate.add_argument("--steps", type=int, default=240, help="instants to simulate")
    animate.add_argument("--delay", type=float, default=0.05, help="seconds per frame")
    animate.add_argument("--seed", type=int, default=7, help="scheduler seed")
    animate.set_defaults(handler=_cmd_animate)

    tradeoff = sub.add_parser("tradeoff", help="print the §5 slice trade-off table")
    tradeoff.add_argument(
        "--n", type=int, nargs="+", default=[16, 64, 256, 1024], help="swarm sizes"
    )
    tradeoff.add_argument("--k", type=int, nargs="+", help="digit bases (default: log n)")
    tradeoff.set_defaults(handler=_cmd_tradeoff)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
