"""Wireless-primary / movement-backup channel stack.

    "in the context of robots (explicitly) communicating by means of
    communication (e.g., wireless), since our protocols allow robots to
    explicitly communicate even if their communication devices are
    faulty, in a very real sense, our solution can serve as a
    communication backup" (Section 1).

The :class:`DualChannelStack` sends over the simulated wireless medium
when it can and falls back to the movement channel when it cannot:

* a **detectable** wireless failure (own device crashed) triggers an
  immediate movement-channel transmission;
* **silent** losses (jamming, drops) are caught by an acknowledgement
  timeout: data frames are ACKed over wireless, and any frame unacked
  after ``ack_timeout`` instants is retransmitted over the movement
  channel.

Frames carry a small header (one id byte + one kind byte) so receivers
can de-duplicate when both paths eventually deliver.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from repro.channels.transport import MovementChannel
from repro.errors import ChannelDownError, ChannelError
from repro.faults.wireless import SimulatedWireless

__all__ = ["StackMessage", "DualChannelStack"]

_KIND_DATA = 0
_KIND_ACK = 1


@dataclass(frozen=True, slots=True)
class StackMessage:
    """A de-duplicated application message delivered by the stack.

    Attributes:
        src: sender index.
        payload: message bytes.
        via: ``"wireless"`` or ``"movement"`` — which path delivered
            the first copy.
        delivered_at: instant of first delivery.
    """

    src: int
    payload: bytes
    via: str
    delivered_at: int


class DualChannelStack:
    """One robot's fault-tolerant messaging endpoint.

    Args:
        index: the robot's tracking index.
        wireless: the shared radio medium.
        movement: the robot's movement channel (backup path).
        ack_timeout: instants to wait for a wireless ACK before
            retransmitting over the movement channel.
    """

    def __init__(
        self,
        index: int,
        wireless: SimulatedWireless,
        movement: MovementChannel,
        ack_timeout: int = 8,
    ) -> None:
        if ack_timeout < 1:
            raise ChannelError(f"ack_timeout must be >= 1, got {ack_timeout}")
        self._index = index
        self._wireless = wireless
        self._movement = movement
        self._ack_timeout = ack_timeout
        self._next_id = 0
        # msg_id -> (dst, payload, sent_at)
        self._awaiting_ack: Dict[int, Tuple[int, bytes, int]] = {}
        # De-duplication: per sender, the recently seen message ids.
        # Ids are one byte and wrap; keeping them forever would make a
        # wrapped id collide with its ancestor and drop a fresh message,
        # so the window is bounded (retransmissions of one message all
        # land well within it).
        self._seen: Dict[int, "deque[int]"] = {}
        self._inbox: List[StackMessage] = []
        self._fallbacks = 0
        self._movement_cursor = 0  # prefix of movement.inbox already read

    @property
    def inbox(self) -> List[StackMessage]:
        """Messages delivered to this robot (de-duplicated)."""
        return list(self._inbox)

    @property
    def fallback_count(self) -> int:
        """How many messages travelled over the movement backup."""
        return self._fallbacks

    @property
    def unacked(self) -> int:
        """Data frames still waiting for a wireless ACK."""
        return len(self._awaiting_ack)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, dst: int, payload: Union[str, bytes], time: int) -> str:
        """Send a message; returns the path used (``"wireless"`` or
        ``"movement"``)."""
        data = payload.encode("utf-8") if isinstance(payload, str) else bytes(payload)
        msg_id = self._next_id % 256
        self._next_id += 1
        try:
            self._wireless.send(self._index, dst, self._envelope(msg_id, _KIND_DATA, data), time)
        except ChannelDownError:
            self._send_via_movement(dst, msg_id, data)
            return "movement"
        self._awaiting_ack[msg_id] = (dst, data, time)
        return "wireless"

    def _send_via_movement(self, dst: int, msg_id: int, data: bytes) -> None:
        self._movement.send(dst, self._envelope(msg_id, _KIND_DATA, data))
        self._fallbacks += 1

    # ------------------------------------------------------------------
    # Progress — call once per simulated instant
    # ------------------------------------------------------------------
    def tick(self, time: int) -> None:
        """Receive from both paths, ACK data, retransmit timed-out frames."""
        # Wireless deliveries.
        for frame in self._wireless.receive(self._index):
            msg_id, kind, data = self._open(frame.payload)
            if kind == _KIND_ACK:
                self._awaiting_ack.pop(msg_id, None)
                continue
            self._deliver(frame.src, msg_id, data, "wireless", time)
            try:
                self._wireless.send(
                    self._index, frame.src, self._envelope(msg_id, _KIND_ACK, b""), time
                )
            except ChannelDownError:
                pass  # the sender's timeout covers us
        # Movement-channel deliveries.  Read through a private cursor
        # over the channel inbox: other consumers (e.g. a harness that
        # polls every step) must not be able to steal our frames.
        inbox = self._movement.inbox
        while self._movement_cursor < len(inbox):
            message = inbox[self._movement_cursor]
            self._movement_cursor += 1
            msg_id, kind, data = self._open(message.payload)
            if kind == _KIND_DATA:
                self._deliver(message.src, msg_id, data, "movement", time)
        # Timeouts: silent wireless losses fall back to movement.
        for msg_id in list(self._awaiting_ack):
            dst, data, sent_at = self._awaiting_ack[msg_id]
            if time - sent_at >= self._ack_timeout:
                del self._awaiting_ack[msg_id]
                self._send_via_movement(dst, msg_id, data)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    _SEEN_WINDOW = 128  # ids remembered per sender (ids wrap at 256)

    def _deliver(self, src: int, msg_id: int, data: bytes, via: str, time: int) -> None:
        window = self._seen.setdefault(src, deque(maxlen=self._SEEN_WINDOW))
        if msg_id in window:
            return
        window.append(msg_id)
        self._inbox.append(StackMessage(src=src, payload=data, via=via, delivered_at=time))

    @staticmethod
    def _envelope(msg_id: int, kind: int, data: bytes) -> bytes:
        return bytes((msg_id, kind)) + data

    @staticmethod
    def _open(blob: bytes) -> Tuple[int, int, bytes]:
        if len(blob) < 2:
            raise ChannelError(f"malformed stack frame of {len(blob)} bytes")
        return blob[0], blob[1], blob[2:]
