"""Message-level channels over the movement protocols.

* :class:`~repro.channels.transport.MovementChannel` — send/receive
  whole messages (framed byte payloads) over any movement protocol.
* :class:`~repro.channels.mailbox.OverhearingMonitor` — reassemble
  *every* message in the system from a robot's overheard bits (the
  paper's redundancy remark), plus relaying helpers.
* :class:`~repro.channels.stack.DualChannelStack` — a simulated
  wireless primary with the movement channel as backup: the paper's
  fault-tolerance motivation ("our solution can serve as a
  communication backup").
"""

from repro.channels.transport import Message, MovementChannel
from repro.channels.mailbox import OverheardMessage, OverhearingMonitor
from repro.channels.stack import DualChannelStack, StackMessage

__all__ = [
    "Message",
    "MovementChannel",
    "OverheardMessage",
    "OverhearingMonitor",
    "DualChannelStack",
    "StackMessage",
]
