"""Overhearing and relaying — the paper's redundancy remark.

    "Note first that every robot observes the movements of all the
    robots.  So, every robot is able to know all the messages sent in
    the system.  This could provide fault-tolerance by redundancy, any
    robot being able to send any message again to its addressee."

:class:`OverhearingMonitor` reconstructs every (src, dst) message
stream from a robot's ``overheard`` bit log; :meth:`relay` re-sends an
overheard message to its addressee through the monitoring robot's own
protocol — the "send any message again" capability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.coding.bitstream import FrameDecoder, encode_message
from repro.errors import ChannelError
from repro.model.protocol import Protocol

__all__ = ["OverheardMessage", "OverhearingMonitor"]


@dataclass(frozen=True, slots=True)
class OverheardMessage:
    """A message reconstructed from overheard movements.

    Attributes:
        src: the original sender.
        dst: the original addressee.
        payload: the message bytes.
        completed_at: instant whose observation completed the frame.
    """

    src: int
    dst: int
    payload: bytes
    completed_at: int


class OverhearingMonitor:
    """Reassembles every message in the system at one observer."""

    def __init__(self, protocol: Protocol) -> None:
        self._protocol = protocol
        self._decoders: Dict[Tuple[int, int], FrameDecoder] = {}
        self._consumed = 0
        self._log: List[OverheardMessage] = []

    @property
    def log(self) -> List[OverheardMessage]:
        """Every message overheard so far, in completion order."""
        self.poll()
        return list(self._log)

    def poll(self) -> List[OverheardMessage]:
        """Drain new overheard bits; return newly completed messages."""
        events = self._protocol.overheard
        fresh: List[OverheardMessage] = []
        while self._consumed < len(events):
            event = events[self._consumed]
            self._consumed += 1
            decoder = self._decoders.setdefault((event.src, event.dst), FrameDecoder())
            payload = decoder.push(event.bit)
            if payload is not None:
                message = OverheardMessage(
                    src=event.src,
                    dst=event.dst,
                    payload=payload,
                    completed_at=event.time,
                )
                self._log.append(message)
                fresh.append(message)
        return fresh

    def messages_between(self, src: int, dst: int) -> List[OverheardMessage]:
        """The overheard stream from ``src`` to ``dst``."""
        self.poll()
        return [m for m in self._log if m.src == src and m.dst == dst]

    def relay(self, message: OverheardMessage) -> int:
        """Re-send an overheard message to its addressee.

        The relaying robot transmits the payload through its own
        protocol; the addressee receives it as a message from the
        relayer (the movement medium cannot forge the original
        sender).  Returns the number of bits queued.

        Raises:
            ChannelError: when the addressee is the relayer itself.
        """
        me = self._protocol.info.index
        if message.dst == me:
            raise ChannelError("cannot relay a message to oneself")
        bits = encode_message(message.payload)
        self._protocol.send_bits(message.dst, bits)
        return len(bits)
