"""Message transport over a movement protocol.

A :class:`MovementChannel` turns the bit-level protocol surface into a
message API: :meth:`MovementChannel.send` frames a payload
(length-prefixed, see :mod:`repro.coding.bitstream`) and queues its
bits; :meth:`MovementChannel.poll` drains newly decoded incoming bits
into per-sender frame decoders and returns completed messages.

One channel wraps one robot's protocol; poll it after simulator steps
(any cadence — decoding state is persistent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Union

from repro.coding.bitstream import FrameDecoder, encode_message
from repro.errors import ChannelError
from repro.model.protocol import Protocol

__all__ = ["Message", "MovementChannel"]


@dataclass(frozen=True, slots=True)
class Message:
    """A delivered application message.

    Attributes:
        src: tracking index of the sender.
        dst: tracking index of the receiver (always the channel owner
            for :class:`MovementChannel` deliveries).
        payload: the message bytes.
        completed_at: the instant whose observation completed the
            frame (the delivery time).
    """

    src: int
    dst: int
    payload: bytes
    completed_at: int

    def text(self) -> str:
        """The payload decoded as UTF-8 (convenience for chat apps)."""
        return self.payload.decode("utf-8")


class MovementChannel:
    """Framed message endpoint on top of one robot's protocol."""

    def __init__(self, protocol: Protocol) -> None:
        self._protocol = protocol
        self._decoders: Dict[int, FrameDecoder] = {}
        self._consumed = 0  # prefix of protocol.received already drained
        self._inbox: List[Message] = []
        self._sent = 0

    @property
    def protocol(self) -> Protocol:
        """The underlying movement protocol."""
        return self._protocol

    @property
    def inbox(self) -> List[Message]:
        """All messages delivered so far (also grows on :meth:`poll`)."""
        self.poll()
        return list(self._inbox)

    @property
    def messages_sent(self) -> int:
        """How many messages have been queued for transmission."""
        return self._sent

    def send(self, dst: int, message: Union[str, bytes]) -> int:
        """Frame and queue a message for robot ``dst``.

        Returns the number of bits queued.  The transmission itself is
        carried out by the protocol as the simulation advances.
        """
        bits = encode_message(message)
        self._protocol.send_bits(dst, bits)
        self._sent += 1
        return len(bits)

    def poll(self) -> List[Message]:
        """Drain newly received bits; return newly completed messages."""
        events = self._protocol.received
        fresh: List[Message] = []
        while self._consumed < len(events):
            event = events[self._consumed]
            self._consumed += 1
            decoder = self._decoders.setdefault(event.src, FrameDecoder())
            payload = decoder.push(event.bit)
            if payload is not None:
                message = Message(
                    src=event.src,
                    dst=event.dst,
                    payload=payload,
                    completed_at=event.time,
                )
                self._inbox.append(message)
                fresh.append(message)
        return fresh

    def pending_transmission(self) -> int:
        """Bits queued but not yet moved out."""
        return self._protocol.pending_bits

    def idle(self) -> bool:
        """True when nothing is queued and no partial frame is buffered."""
        if self._protocol.pending_bits:
            return False
        return all(d.is_idle for d in self._decoders.values())

    def expect_no_partial_frames(self) -> None:
        """Assert stream hygiene: no half-received frame is pending.

        Raises:
            ChannelError: when a sender stopped mid-frame.
        """
        self.poll()
        for src, decoder in self._decoders.items():
            if not decoder.is_idle:
                raise ChannelError(
                    f"robot {src} left a partial frame of "
                    f"{decoder.buffered_bits} bits"
                )
