"""``python -m repro.serve`` — serve, bench, status, smoke.

* ``serve``  — run the TCP JSONL front end until interrupted.
* ``bench``  — the seeded open-loop load generator
  (:mod:`repro.serve.bench`); ``--quick`` is the CI acceptance run.
* ``status`` — one ``stats``/``healthz``/``telemetry`` round-trip
  against a running service (``--op``).
* ``smoke``  — boot an in-process service, drive N sessions across
  all four apps with forced eviction + CRC-verified restore,
  optionally export one session's obs trace and/or scrape + validate
  the live ``/metrics`` + ``/healthz`` endpoints (the CI smoke job).
"""

from __future__ import annotations

import asyncio
import json
import sys
import tempfile
from typing import List, Optional

from repro.serve import (
    ServeClient,
    ServeConfig,
    SessionManager,
    SessionStore,
    install_uvloop,
    make_pool,
)

_SMOKE_APPS = ("chat", "gossip", "leader_election", "token_ring")


def _cmd_serve(args) -> int:
    from repro.serve.net import serve_forever

    if install_uvloop():
        print("[repro.serve] event loop: uvloop")
    else:
        print("[repro.serve] event loop: asyncio (uvloop not installed)")

    from repro.obs.live import RequestTracer

    async def run() -> None:
        store = SessionStore(args.store) if args.store else None
        config = ServeConfig(max_live=args.max_live)
        async with SessionManager(
            make_pool(args.workers), store=store, config=config,
            tracer=RequestTracer(),
        ) as manager:
            await serve_forever(manager, host=args.host, port=args.port)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("[repro.serve] interrupted; shut down")
    return 0


def _cmd_status(args) -> int:
    from repro.serve.net import request

    reply = asyncio.run(
        request({"op": args.op}, host=args.host, port=args.port)
    )
    print(json.dumps(reply, indent=2, sort_keys=True))
    return 0 if reply.get("ok") else 1


def _cmd_bench(args) -> int:
    from repro.serve.bench import main as bench_main

    argv: List[str] = []
    if args.quick:
        argv.append("--quick")
    if args.sessions is not None:
        argv.extend(["--sessions", str(args.sessions)])
    if args.workers:
        argv.extend(["--workers", str(args.workers)])
    if args.history:
        argv.extend(["--history", args.history])
    argv.extend(["--seed", str(args.seed)])
    return bench_main(argv)


async def _scrape_endpoints(port: int, out_path: str) -> bool:
    """Scrape /metrics + /healthz mid-run; validate, persist, verdict."""
    from repro.errors import ObservabilityError
    from repro.obs.live import validate_exposition
    from repro.serve.net import scrape

    metrics_status, exposition = await scrape("/metrics", port=port)
    health_status, health_body = await scrape("/healthz", port=port)
    try:
        samples = validate_exposition(exposition)
    except ObservabilityError as exc:
        print(f"[smoke: scrape INVALID — {exc}]")
        return False
    requests_total = sum(
        float(line.rsplit(" ", 1)[1])
        for line in exposition.splitlines()
        if line.startswith("serve_requests_total{")
    )
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(f"# healthz {health_status} {health_body}\n")
        handle.write(exposition)
    ok = (
        metrics_status == 200
        and health_status in (200, 503)
        and requests_total > 0
    )
    print(
        f"[smoke: scraped {samples} samples "
        f"({int(requests_total)} requests counted), healthz "
        f"{health_status} -> {out_path} {'OK' if ok else 'FAIL'}]"
    )
    return ok


async def _smoke(args) -> int:
    """N sessions over a tiny ``max_live``: every layer gets touched."""
    from repro.obs.live import RequestTracer

    async def run(root: str) -> int:
        config = ServeConfig(max_live=args.max_live)
        scrape_ok = True
        async with SessionManager(
            make_pool(args.workers), store=SessionStore(root), config=config,
            tracer=RequestTracer(),
        ) as manager:
            server = None
            if args.scrape:
                from repro.serve.net import start_server

                server = await start_server(manager)
                port = server.sockets[0].getsockname()[1]
            client = ServeClient(manager)

            async def drive(i: int) -> str:
                app = _SMOKE_APPS[i % len(_SMOKE_APPS)]
                record = args.obs is not None and i == 0
                if app == "chat":
                    sid = await client.create(
                        app, 2, seed=i,
                        params={"script": [[0, f"hi {i}"], [1, f"yo {i}"]]},
                        record=record,
                    )
                elif app == "gossip":
                    sid = await client.create(
                        app, 5, seed=i, params={"rumor": f"r{i}"}, record=record
                    )
                else:
                    sid = await client.create(app, 4, seed=i, record=record)
                doc = await client.run_to_completion(sid, instants_per_step=32)
                if record:
                    path = await client.export_obs(sid, args.obs)
                    print(f"[smoke: obs trace -> {path}]")
                summary = await client.close(sid)
                if doc["status"] != "done":
                    raise SystemExit(
                        f"smoke session {sid} ({app}) ended {doc['status']}: "
                        f"{summary}"
                    )
                return str(doc["status"])

            outcomes = await asyncio.gather(
                *(drive(i) for i in range(args.sessions))
            )
            if server is not None:
                # the service is still up: this is the live scrape the
                # CI job asserts on
                scrape_ok = await _scrape_endpoints(port, args.scrape)
                server.close()
                await server.wait_closed()
            stats = manager.stats()

        ok = (
            all(status == "done" for status in outcomes)
            and stats["evictions"] > 0
            and stats["restores"] > 0
            and scrape_ok
        )
        print(
            f"[smoke: {len(outcomes)} sessions done over "
            f"max_live={args.max_live}; {stats['evictions']} evictions, "
            f"{stats['restores']} CRC-verified restores, "
            f"{stats['instants']} instants -> {'OK' if ok else 'FAIL'}]"
        )
        return 0 if ok else 1

    if args.store:
        return await run(args.store)
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as root:
        return await run(root)


def _cmd_smoke(args) -> int:
    return asyncio.run(_smoke(args))


def main(argv: Optional[List[str]] = None) -> int:
    """Parse one subcommand and run it; returns the process exit code."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_serve = sub.add_parser("serve", help="run the TCP front end")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7642)
    p_serve.add_argument("--workers", type=int, default=0)
    p_serve.add_argument("--max-live", type=int, default=1024)
    p_serve.add_argument("--store", default=None,
                         help="checkpoint store root (enables eviction)")
    p_serve.set_defaults(func=_cmd_serve)

    p_status = sub.add_parser("status", help="query a running service")
    p_status.add_argument("--host", default="127.0.0.1")
    p_status.add_argument("--port", type=int, default=7642)
    p_status.add_argument("--op", default="stats",
                          choices=("stats", "healthz", "telemetry"),
                          help="which status verb to round-trip")
    p_status.set_defaults(func=_cmd_status)

    p_bench = sub.add_parser("bench", help="seeded open-loop load generator")
    p_bench.add_argument("--quick", action="store_true")
    p_bench.add_argument("--sessions", type=int, default=None)
    p_bench.add_argument("--workers", type=int, default=0)
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--history", default=None)
    p_bench.set_defaults(func=_cmd_bench)

    p_smoke = sub.add_parser("smoke", help="short all-apps service exercise")
    p_smoke.add_argument("--sessions", type=int, default=50)
    p_smoke.add_argument("--workers", type=int, default=0)
    p_smoke.add_argument("--max-live", type=int, default=8)
    p_smoke.add_argument("--store", default=None)
    p_smoke.add_argument("--obs", default=None,
                         help="export session 0's obs trace to this path")
    p_smoke.add_argument(
        "--scrape", metavar="PATH", default=None,
        help="boot the TCP front end, scrape /metrics + /healthz "
             "mid-run, validate the exposition and write it here",
    )
    p_smoke.set_defaults(func=_cmd_smoke)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
