"""Worker pools: where session commands actually execute.

Two interchangeable implementations of the same tiny async interface:

* :class:`InlinePool` — one :class:`~repro.serve.host.SessionHost` in
  the service process.  No sockets, no pipes, no pickling: the default
  for tests and the only sensible choice on a single-core box.
* :class:`ProcessPool` — ``n`` forked workers, each owning a host,
  spoken to over a duplex pipe.  Session affinity is static —
  ``crc32(sid) % n`` — so a session's live object never migrates and
  per-session command ordering is free.  Each worker's pipe is
  serialized by an :class:`asyncio.Lock`; blocking ``recv`` calls run
  in the default executor so the event loop keeps multiplexing other
  workers' traffic.

Both pools re-raise worker-side exceptions as the matching
:mod:`repro.errors` class, so callers cannot tell the difference.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import zlib
from typing import List, Optional, Tuple

from repro import errors as _errors
from repro.errors import ServeError
from repro.serve.host import SessionHost

__all__ = ["InlinePool", "ProcessPool", "WorkerPool", "make_pool"]

_STOP = ("__stop__",)


def _reraise(type_name: str, message: str) -> None:
    """Rebuild a worker-side exception as its local errors class."""
    cls = getattr(_errors, type_name, None)
    if not (isinstance(cls, type) and issubclass(cls, _errors.ReproError)):
        cls = ServeError
        message = f"{type_name}: {message}"
    raise cls(message)


class WorkerPool:
    """The pool interface the session manager programs against."""

    size: int = 1

    def worker_of(self, sid: str) -> int:
        """Static session affinity: a session never changes workers."""
        return zlib.crc32(sid.encode("utf-8")) % self.size

    async def call(self, worker: int, command: Tuple[object, ...]) -> object:
        """Execute one host command on the given worker."""
        raise NotImplementedError

    async def call_for(self, sid: str, command: Tuple[object, ...]) -> object:
        """Route a command to the session's worker."""
        return await self.call(self.worker_of(sid), command)

    def close(self) -> None:
        """Release worker resources (idempotent)."""


class InlinePool(WorkerPool):
    """Everything in-process: one host, zero transport."""

    size = 1

    def __init__(self) -> None:
        self.host = SessionHost()

    async def call(self, worker: int, command: Tuple[object, ...]) -> object:
        """Execute one host command on the single in-process worker."""
        if worker != 0:
            raise ServeError(f"inline pool has one worker, got index {worker}")
        return self.host.execute(command)


def _worker_main(conn) -> None:
    """A worker process: execute commands until told to stop."""
    host = SessionHost()
    while True:
        try:
            command = conn.recv()
        except (EOFError, OSError):
            break
        if command == _STOP:
            break
        try:
            result = host.execute(command)
            conn.send(("ok", result))
        except Exception as exc:  # shipped back, re-raised caller-side
            conn.send(("error", type(exc).__name__, str(exc)))
    conn.close()


class ProcessPool(WorkerPool):
    """``n`` forked session hosts behind duplex pipes."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ServeError(f"need >= 1 worker, got {workers}")
        self.size = workers
        self._conns = []
        self._procs: List[multiprocessing.Process] = []
        self._locks: List[asyncio.Lock] = [asyncio.Lock() for _ in range(workers)]
        self._closed = False
        for _ in range(workers):
            parent, child = multiprocessing.Pipe()
            proc = multiprocessing.Process(
                target=_worker_main, args=(child,), daemon=True
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)

    async def call(self, worker: int, command: Tuple[object, ...]) -> object:
        """Execute one host command on a worker process, serialized per pipe."""
        if self._closed:
            raise ServeError("pool is closed")
        if not (0 <= worker < self.size):
            raise ServeError(f"worker index {worker} out of range")
        conn = self._conns[worker]
        loop = asyncio.get_running_loop()
        async with self._locks[worker]:
            conn.send(command)
            try:
                reply = await loop.run_in_executor(None, conn.recv)
            except (EOFError, OSError) as exc:
                raise ServeError(
                    f"worker {worker} died executing {command[0]!r}"
                ) from exc
        if reply[0] == "ok":
            return reply[1]
        _reraise(reply[1], reply[2])

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(_STOP)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
        for conn in self._conns:
            conn.close()


def make_pool(workers: Optional[int] = None) -> WorkerPool:
    """The right pool for a worker count (None/0/1 -> inline)."""
    if not workers or workers <= 1:
        return InlinePool()
    return ProcessPool(workers)
