"""Seeded load generator for the serving layer (``bench_serve``).

Two phases, one number sheet:

* **Throughput** — open-loop arrivals: session creations fire on a
  seeded exponential schedule *regardless* of how fast the service is
  draining work (the arrival process never waits for completions, so
  the measured latencies include real queueing).  Every session is a
  scripted two-robot chat driven to completion through the in-process
  client; with arrivals far faster than service, all of them are open
  simultaneously mid-run — quick mode holds ≥ 1000 concurrent
  sessions.  Reports sessions/sec, instants/sec (step throughput) and
  p50/p99 step latency measured at the client.
* **Churn** — a deliberately tiny ``max_live`` over a persistent
  :class:`~repro.serve.store.SessionStore` forces continuous
  checkpoint → evict → restore cycling while the sessions make
  progress.  Every restore replays the event-sourced checkpoint and
  recomputes the trace CRC against the stored witness
  (:meth:`repro.serve.session.Session.restore`), so the reported
  ``crc_verified_restores`` count *is* the number of byte-identity
  proofs that ran; the phase fails loudly if no eviction happened.

The row lands in ``BENCH_history.jsonl`` via ``--history`` (run id
``bench_serve-quick``/``-full``) where ``python -m repro.obs regress``
gates it longitudinally, next to the batch and event-engine benches.
"""

from __future__ import annotations

import asyncio
import random
import tempfile
import time
from typing import Dict, List, Optional

from repro.errors import ServeError
from repro.obs.live import RequestTracer
from repro.serve.client import ServeClient
from repro.serve.manager import ServeConfig, SessionManager
from repro.serve.pool import make_pool
from repro.serve.store import SessionStore

__all__ = ["churn_phase", "main", "run_bench", "throughput_phase"]


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already sorted sample."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


async def _drive_chat(
    client: ServeClient,
    seed: int,
    latencies: List[float],
    instants_per_step: int = 16,
    close: bool = True,
) -> str:
    """One load-generator session: create, chat to completion.

    With ``close=False`` the finished session stays open (the
    throughput phase holds the whole cohort open so the service
    demonstrably sustains all of them concurrently, then closes them
    in one sweep at the end).
    """
    sid = await client.create(
        "chat",
        size=2,
        seed=seed,
        params={"script": [[0, f"ping {seed}"], [1, f"pong {seed}"]]},
    )
    status = "running"
    requests = 0
    while status == "running" and requests < 500:
        started = time.perf_counter()
        doc = await client.step(sid, instants_per_step)
        latencies.append(time.perf_counter() - started)
        status = str(doc["status"])
        requests += 1
    if close:
        await client.close(sid)
    return status


async def throughput_phase(
    sessions: int,
    workers: int = 0,
    seed: int = 0,
    arrival_rate: float = 4000.0,
) -> Dict[str, object]:
    """Open-loop arrivals at ``arrival_rate``/s, all driven to done."""
    rng = random.Random(seed)
    config = ServeConfig(
        max_live=max(2 * sessions, 2048),
        queue_high=max(4 * sessions, 4096),
        queue_low=max(sessions, 1024),
    )
    latencies: List[float] = []
    outcomes: List[str] = []
    started = time.perf_counter()
    tracer = RequestTracer()
    async with SessionManager(
        make_pool(workers), config=config, tracer=tracer
    ) as manager:
        client = ServeClient(manager)

        async def one(session_seed: int) -> None:
            outcomes.append(
                await _drive_chat(client, session_seed, latencies, close=False)
            )

        tasks = []
        for i in range(sessions):
            # Open loop: the schedule never waits for service progress.
            await asyncio.sleep(rng.expovariate(arrival_rate))
            tasks.append(asyncio.ensure_future(one(seed * 100_003 + i)))
        await asyncio.gather(*tasks)
        stats = manager.stats()
        snapshot = manager.registry.collect()
        for sid in manager.session_ids():
            await client.close(sid)
    wall_s = time.perf_counter() - started
    completed = sum(1 for status in outcomes if status == "done")
    if completed != sessions:
        raise ServeError(
            f"load generator lost sessions: {completed}/{sessions} completed "
            f"(outcomes {sorted(set(outcomes))})"
        )
    latencies.sort()
    return {
        "sessions": sessions,
        "completed": completed,
        "peak_concurrent": stats["peak_open"],
        "wall_s": wall_s,
        "sessions_per_sec": completed / wall_s if wall_s > 0 else 0.0,
        "instants_total": stats["instants"],
        "steps_per_sec": stats["instants"] / wall_s if wall_s > 0 else 0.0,
        "step_p50_ms": 1e3 * _percentile(latencies, 0.50),
        "step_p99_ms": 1e3 * _percentile(latencies, 0.99),
        # server-side queueing, attributed by the request tracer (the
        # rolling window covers the tail of the run)
        "queue_wait_p99_ms": 1e3 * tracer.span_percentile("queue-wait", 99),
        "rejections": stats["rejections"],
        "workers": stats["workers"],
        # SLO attainment / error-budget burn over the same run, so the
        # regress gate watches objectives, not just raw latencies
        **tracer.slo.as_metrics(),
        "metrics": snapshot,
    }


async def churn_phase(
    sessions: int = 48,
    max_live: int = 12,
    seed: int = 0,
    store_root: Optional[str] = None,
) -> Dict[str, object]:
    """Evict/restore under memory pressure; every restore proves CRC."""

    async def run(root: str) -> Dict[str, object]:
        config = ServeConfig(max_live=max_live)
        latencies: List[float] = []
        started = time.perf_counter()
        async with SessionManager(
            make_pool(0), store=SessionStore(root), config=config
        ) as manager:
            client = ServeClient(manager)
            tasks = [
                asyncio.ensure_future(
                    _drive_chat(client, seed * 7_919 + i, latencies,
                                instants_per_step=8)
                )
                for i in range(sessions)
            ]
            outcomes = await asyncio.gather(*tasks)
            stats = manager.stats()
        wall_s = time.perf_counter() - started
        if any(status != "done" for status in outcomes):
            raise ServeError(f"churn sessions did not finish: {outcomes}")
        if not stats["evictions"] or not stats["restores"]:
            raise ServeError(
                f"churn phase failed to exercise eviction: "
                f"{stats['evictions']} evictions, {stats['restores']} restores"
            )
        return {
            "churn_sessions": sessions,
            "churn_max_live": max_live,
            "churn_wall_s": wall_s,
            "evictions": stats["evictions"],
            "restores": stats["restores"],
            # Session.restore recomputes the trace CRC against the
            # checkpoint witness on every restore — each one is a
            # byte-identity proof.
            "crc_verified_restores": stats["restores"],
            "checkpoint_bytes": stats["checkpoint_bytes"],
        }

    if store_root is not None:
        return await run(store_root)
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as root:
        return await run(root)


def run_bench(
    quick: bool = False,
    sessions: Optional[int] = None,
    workers: int = 0,
    seed: int = 0,
) -> Dict[str, object]:
    """Both phases; returns the flat row the history entry is built from."""
    if sessions is None:
        sessions = 1_050 if quick else 2_000
    row: Dict[str, object] = {"mode": "quick" if quick else "full", "seed": seed}
    row.update(
        asyncio.run(throughput_phase(sessions, workers=workers, seed=seed))
    )
    row.update(asyncio.run(churn_phase(seed=seed)))
    return row


def main(argv: Optional[List[str]] = None) -> int:
    """CLI twin of :func:`run_bench`; ``--history`` appends the entry."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run: ~1050 sessions (still >= 1000 concurrent)",
    )
    parser.add_argument("--sessions", type=int, default=None,
                        help="override the session count")
    parser.add_argument("--workers", type=int, default=0,
                        help="process workers (0 = in-process host)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--history", metavar="PATH", default=None,
        help="append the bench metrics to this history file",
    )
    args = parser.parse_args(argv)

    row = run_bench(
        quick=args.quick, sessions=args.sessions,
        workers=args.workers, seed=args.seed,
    )
    print(
        f"[serve throughput: {row['completed']} sessions "
        f"(peak {row['peak_concurrent']} concurrent) in {row['wall_s']:.2f}s "
        f"-> {row['sessions_per_sec']:,.0f} sessions/s, "
        f"{row['steps_per_sec']:,.0f} instants/s, "
        f"step p50 {row['step_p50_ms']:.1f} ms / p99 {row['step_p99_ms']:.1f} ms]"
    )
    print(
        f"[serve churn: {row['churn_sessions']} sessions over "
        f"max_live={row['churn_max_live']}: {row['evictions']} evictions, "
        f"{row['restores']} CRC-verified restores in {row['churn_wall_s']:.2f}s]"
    )
    print(
        f"[serve slo: step-latency {row['slo_step_latency_attainment']:.4f}, "
        f"availability {row['slo_availability_attainment']:.4f}, "
        f"queue-wait p99 {row['queue_wait_p99_ms']:.1f} ms -> "
        f"{'OK' if row['slo_ok'] else 'VIOLATED'}]"
    )
    if row["peak_concurrent"] < min(1_000, row["sessions"]):  # type: ignore[operator]
        print("[serve: WARNING — peak concurrency below target]")

    if args.history:
        from repro.obs.history import HistoryStore, entry_from_registry
        from repro.obs.history.ingest import flatten_scalars
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        registry.absorb(
            flatten_scalars(
                {k: v for k, v in row.items() if k not in ("metrics", "mode")}
            ),
            probe="serve",
        )
        from repro.obs.history import metrics_from_snapshot

        registry.absorb(dict(metrics_from_snapshot(row["metrics"])))  # type: ignore[arg-type]
        entry = HistoryStore(args.history).append(
            entry_from_registry(
                registry,
                run_id=f"bench_serve-{row['mode']}",
                meta={"sessions": row["sessions"], "mode": row["mode"]},
            )
        )
        print(
            f"[history: entry #{entry.seq} "
            f"({len(entry.metrics)} metrics) -> {args.history}]"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
