"""Session persistence over the campaign result store.

Evicted sessions park their checkpoints in a campaign
:class:`~repro.campaign.store.ResultStore` — the same atomic
write-temp-and-rename result files, fsync'd journal and derived SQLite
index the experiment engine trusts for byte-identical ``--resume``.
Each session is one :class:`~repro.campaign.store.CellRecord` of kind
``serve_session`` whose payload *is* the checkpoint document; eviction
and restore events land in the journal; ``python -m repro.campaign``
style status queries go through the (WAL-mode) index while the service
keeps writing.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Optional

from repro.campaign.store import CellRecord, ResultStore
from repro.errors import ServeError, UnknownSessionError

__all__ = ["SessionStore"]


class SessionStore:
    """Durable checkpoints for evicted (or archived) sessions."""

    def __init__(self, root: str) -> None:
        self.store = ResultStore(root)
        self.store.root.mkdir(parents=True, exist_ok=True)
        self.store.results_dir.mkdir(exist_ok=True)

    @property
    def root(self) -> pathlib.Path:
        return self.store.root

    def save(self, sid: str, checkpoint: Dict[str, object]) -> None:
        """Atomically persist one checkpoint; journals the eviction."""
        if checkpoint.get("schema") != "repro-serve-session":
            raise ServeError(
                f"not a session checkpoint (schema={checkpoint.get('schema')!r})"
            )
        record = CellRecord(
            cell_id=sid,
            kind="serve_session",
            params={
                "app": checkpoint["spec"]["app"],  # type: ignore[index]
                "spec_hash": checkpoint["spec_hash"],
            },
            status="ok",
            attempts=1,
            payload=checkpoint,
        )
        self.store.write_result(record)
        self.store.journal(
            "session_checkpoint",
            session=sid,
            steps=checkpoint["steps_applied"],
            trace_crc=checkpoint["trace_crc"],
        )

    def load(self, sid: str) -> Dict[str, object]:
        """One parked checkpoint; journals the restore."""
        if not self.store.has_result(sid):
            raise UnknownSessionError(f"no checkpoint for session {sid!r}")
        record = self.store.read_result(sid)
        if record.kind != "serve_session" or record.payload is None:
            raise ServeError(f"result {sid!r} is not a session checkpoint")
        self.store.journal("session_restore", session=sid)
        return dict(record.payload)

    def has(self, sid: str) -> bool:
        """Is a checkpoint parked for this session?"""
        return self.store.has_result(sid)

    def discard(self, sid: str) -> None:
        """Drop a parked checkpoint (closed sessions need no replay)."""
        path = self.store.result_path(sid)
        if path.exists():
            path.unlink()

    def session_ids(self) -> List[str]:
        """Every parked session, via the (concurrent-safe) index."""
        rows = self.store.query_index(
            "SELECT cell_id FROM cells WHERE kind = 'serve_session' "
            "ORDER BY cell_id"
        )
        return [str(row[0]) for row in rows]

    def checkpoint_bytes(self, sid: str) -> Optional[int]:
        """On-disk size of one checkpoint (metrics food)."""
        path = self.store.result_path(sid)
        return path.stat().st_size if path.exists() else None
