"""Swarm-as-a-service: the long-running session-serving layer.

``repro.serve`` multiplexes thousands of concurrent swarm sessions —
chat, gossip, leader election, token ring over
:class:`~repro.apps.harness.SwarmHarness` — behind one asyncio event
loop and a (optionally multi-process) worker pool:

* :mod:`repro.serve.session` — event-sourced sessions with
  CRC-witnessed checkpoint/restore,
* :mod:`repro.serve.manager` — lifecycle, cooperative batch stepping,
  watermark backpressure, LRU eviction through the campaign store,
* :mod:`repro.serve.client` / :mod:`repro.serve.net` — the in-process
  and TCP JSONL front ends (identical verb set); the TCP port also
  answers ``GET /metrics`` (Prometheus text) and ``GET /healthz``,
* :mod:`repro.serve.bench` — the seeded open-loop load generator.

Wire a :class:`~repro.obs.live.RequestTracer` into the manager
(``SessionManager(..., tracer=RequestTracer())``) and every request
gets a trace with telescoping queue-wait/restore/execute/dispatch
spans, rolling percentiles per op x app, and SLO attainment — all off
(zero dispatches) when no tracer is given.  ``python -m repro.obs
top`` renders a live dashboard from the ``telemetry`` verb.

``pip install repro[serve]`` additionally pulls in `uvloop`__; without
it the service runs unchanged on the stdlib event loop —
:func:`install_uvloop` reports which one you got.

__ https://github.com/MagicStack/uvloop
"""

from __future__ import annotations

from repro.serve.client import ServeClient
from repro.serve.manager import ServeConfig, SessionManager
from repro.serve.pool import InlinePool, ProcessPool, make_pool
from repro.serve.session import APPS, Session, SessionSpec
from repro.serve.store import SessionStore

__all__ = [
    "APPS",
    "InlinePool",
    "ProcessPool",
    "ServeClient",
    "ServeConfig",
    "Session",
    "SessionManager",
    "SessionSpec",
    "SessionStore",
    "UVLOOP_AVAILABLE",
    "install_uvloop",
    "make_pool",
]

try:  # the [serve] extra; never required
    import uvloop as _uvloop  # type: ignore[import-not-found]

    UVLOOP_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised where uvloop exists
    _uvloop = None
    UVLOOP_AVAILABLE = False


def install_uvloop() -> bool:
    """Use uvloop's event-loop policy when available; never a hard dep.

    Returns True when uvloop is now driving ``asyncio``; False means
    the stdlib loop is in charge and everything still works — the
    service treats uvloop purely as an accelerator.
    """
    if _uvloop is None:
        return False
    _uvloop.install()
    return True
