"""Event-sourced swarm sessions — the serving layer's unit of state.

A *session* is one long-lived swarm application (chat, gossip, leader
election, token ring) wrapped so a service can step it incrementally,
inject traffic mid-flight, checkpoint it, evict it from memory, and
restore it **byte-identically** later.

The full state of a session is, deliberately, not the live object
graph but three small values::

    (SessionSpec, input log, steps_applied)

The :class:`~repro.apps.harness.SwarmHarness` a session drives is
fully deterministic given its spec (every RNG is seeded from
``spec.seed``), and all app-internal traffic (the chat script, the
election announcements, token forwarding) is a pure function of the
replayed state — only *external* sends arriving through the service
API are logged, stamped with the instant boundary they were applied
at.  A checkpoint is therefore a tiny JSON document, and restore is
replay: rebuild the harness from the spec, re-apply the inputs at
their recorded boundaries, re-step the recorded number of instants.
Determinism guarantees the restored trace is byte-for-byte the
original — and every restore *proves* it by recomputing the trace CRC
and comparing it to the checkpointed one.

Stepping is **cadence-invariant**: ``step(k)`` runs ``k`` per-instant
micro-steps (simulator step → channel polls → the app's per-instant
logic), so how a client chunks its step requests — and how the service
coalesces them into batch ticks — cannot influence the trajectory.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.apps.harness import SwarmHarness, ring_positions
from repro.errors import ServeError
from repro.geometry.vec import Vec2
from repro.protocols.sync_granular import SyncGranularProtocol
from repro.protocols.sync_two import SyncTwoProtocol

__all__ = [
    "APPS",
    "CHECKPOINT_SCHEMA",
    "CHECKPOINT_VERSION",
    "Session",
    "SessionSpec",
]

#: schema tag of one checkpoint document.
CHECKPOINT_SCHEMA = "repro-serve-session"
CHECKPOINT_VERSION = 1


# ----------------------------------------------------------------------
# Spec
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SessionSpec:
    """The deterministic identity of one session.

    Attributes:
        app: application key (see :data:`APPS`).
        size: swarm size (chat is pinned to 2).
        seed: master seed — frames and any other randomness derive
            from it, so equal specs build byte-identical harnesses.
        params: app-specific parameters (chat script, rumor text,
            lap count, ...); must be JSON-serializable.
    """

    app: str
    size: int
    seed: int
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.app not in APPS:
            raise ServeError(
                f"unknown app {self.app!r} (choose from {sorted(APPS)})"
            )
        APPS[self.app].validate(self)

    def to_json(self) -> Dict[str, object]:
        """The canonical on-disk form of this spec."""
        return {
            "app": self.app,
            "size": self.size,
            "seed": self.seed,
            "params": dict(self.params),
        }

    @classmethod
    def from_json(cls, doc: Dict[str, object]) -> "SessionSpec":
        """Parse a spec document (inverse of :meth:`to_json`)."""
        try:
            return cls(
                app=str(doc["app"]),
                size=int(doc["size"]),  # type: ignore[arg-type]
                seed=int(doc["seed"]),  # type: ignore[arg-type]
                params=dict(doc.get("params") or {}),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServeError(f"malformed session spec {doc!r}: {exc}") from exc

    def spec_hash(self) -> str:
        """Stable content hash (the campaign spec idiom)."""
        doc = json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(doc.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# App drivers
# ----------------------------------------------------------------------
#
# A driver turns a spec into a running harness and owns the app's
# per-instant logic.  Everything a driver does must be a deterministic
# function of (spec, replayed inputs) — drivers keep their scratch in
# ``session.app_state`` which is *not* checkpointed; replay rebuilds it.

class _Driver:
    """Base driver: no per-instant logic, never done."""

    #: instants a session may consume before it is declared stalled.
    max_steps_default = 6_000

    def validate(self, spec: SessionSpec) -> None:
        if spec.size < 2:
            raise ServeError(f"{spec.app} needs >= 2 robots, got {spec.size}")

    def build(self, spec: SessionSpec) -> SwarmHarness:
        raise NotImplementedError

    def setup(self, session: "Session") -> None:
        """Queue the app's own initial traffic (not logged as input)."""

    def on_instant(self, session: "Session") -> None:
        """Per-instant app logic, run after the channel polls."""

    def on_external_send(
        self, session: "Session", src: int, dst: int, payload: bytes
    ) -> None:
        """Bookkeeping for traffic arriving through the service API."""

    def done(self, session: "Session") -> bool:
        return False

    def summary(self, session: "Session") -> Dict[str, object]:
        return {}


class _ChatDriver(_Driver):
    """Two robots run a scripted conversation (plus live sends)."""

    def validate(self, spec: SessionSpec) -> None:
        if spec.size != 2:
            raise ServeError(f"chat is a two-robot app, got size {spec.size}")
        script = spec.params.get("script", [])
        for line in script:  # type: ignore[union-attr]
            speaker = line[0]
            if speaker not in (0, 1):
                raise ServeError(f"chat speaker must be 0 or 1, got {speaker}")

    def build(self, spec: SessionSpec) -> SwarmHarness:
        separation = float(spec.params.get("separation", 10.0))  # type: ignore[arg-type]
        return SwarmHarness(
            [Vec2(0.0, 0.0), Vec2(separation, 0.0)],
            protocol_factory=lambda: SyncTwoProtocol(),
            identified=False,
            sigma=separation,
            frame_seed=spec.seed,
        )

    def setup(self, session: "Session") -> None:
        session.app_state["expected"] = [0, 0]
        for speaker, text in session.spec.params.get("script", []):  # type: ignore[union-attr]
            session.queue_app_send(speaker, 1 - speaker, str(text).encode("utf-8"))
            session.app_state["expected"][1 - speaker] += 1

    def on_external_send(
        self, session: "Session", src: int, dst: int, payload: bytes
    ) -> None:
        session.app_state["expected"][dst] += 1

    def done(self, session: "Session") -> bool:
        expected = session.app_state["expected"]
        return all(
            len(session.harness.channel(i).inbox) >= expected[i] for i in (0, 1)
        )

    def summary(self, session: "Session") -> Dict[str, object]:
        return {
            "delivered": [
                len(session.harness.channel(i).inbox) for i in (0, 1)
            ],
            "expected": list(session.app_state["expected"]),
        }


class _GossipDriver(_Driver):
    """One rumor spreads to the whole swarm by overhearing."""

    def build(self, spec: SessionSpec) -> SwarmHarness:
        return SwarmHarness(
            ring_positions(spec.size, radius=10.0, jitter=0.06),
            protocol_factory=lambda: SyncGranularProtocol(),
            sigma=4.0,
            frame_seed=spec.seed,
        )

    def _payload(self, session: "Session") -> bytes:
        return str(session.spec.params.get("rumor", "r")).encode("utf-8")

    def setup(self, session: "Session") -> None:
        source = int(session.spec.params.get("source", 0))  # type: ignore[arg-type]
        session.app_state["source"] = source
        session.queue_app_send(
            source, (source + 1) % session.spec.size, self._payload(session)
        )

    def done(self, session: "Session") -> bool:
        payload = self._payload(session)
        source = session.app_state["source"]
        for observer in range(session.spec.size):
            if observer == source:
                continue
            if not any(
                m.payload == payload
                for m in session.harness.monitors[observer].log
            ):
                return False
        return True

    def summary(self, session: "Session") -> Dict[str, object]:
        payload = self._payload(session)
        informed = sum(
            1
            for observer in range(session.spec.size)
            if observer == session.app_state["source"]
            or any(
                m.payload == payload
                for m in session.harness.monitors[observer].log
            )
        )
        return {"informed": informed, "size": session.spec.size}


class _LeaderElectionDriver(_Driver):
    """Everyone announces a value; everyone elects the maximum."""

    def build(self, spec: SessionSpec) -> SwarmHarness:
        return SwarmHarness(
            ring_positions(spec.size, radius=10.0, jitter=0.05),
            protocol_factory=lambda: SyncGranularProtocol(naming="identified"),
            identified=True,
            frame_seed=spec.seed,
        )

    def setup(self, session: "Session") -> None:
        n = session.spec.size
        values = session.spec.params.get("values") or list(range(n))
        if len(values) != n:  # type: ignore[arg-type]
            raise ServeError(
                f"need one value per robot: {len(values)} values, {n} robots"  # type: ignore[arg-type]
            )
        session.app_state["values"] = list(values)  # type: ignore[arg-type]
        for i in range(n):
            for j in range(n):
                if i != j:
                    session.queue_app_send(
                        i, j, f"VAL {values[i]}".encode("utf-8")  # type: ignore[index]
                    )

    def _announcements(self, session: "Session", robot: int) -> List[int]:
        out: List[int] = []
        for message in session.harness.channel(robot).inbox:
            text = message.text()
            if text.startswith("VAL "):
                out.append(int(text[4:]))
        return out

    def done(self, session: "Session") -> bool:
        n = session.spec.size
        return all(
            len(self._announcements(session, i)) >= n - 1 for i in range(n)
        )

    def summary(self, session: "Session") -> Dict[str, object]:
        values = session.app_state["values"]
        decided: List[Optional[int]] = []
        for i in range(session.spec.size):
            heard = [values[i], *self._announcements(session, i)]
            decided.append(values.index(max(heard)) if heard else None)
        leader = decided[0] if len(set(decided)) == 1 else None
        return {"leader": leader, "decided_by": decided}


class _TokenRingDriver(_Driver):
    """A hop-counted token circulates in tracking-index order."""

    def validate(self, spec: SessionSpec) -> None:
        super().validate(spec)
        if int(spec.params.get("laps", 1)) < 1:  # type: ignore[arg-type]
            raise ServeError(f"laps must be >= 1, got {spec.params.get('laps')}")

    def build(self, spec: SessionSpec) -> SwarmHarness:
        return SwarmHarness(
            ring_positions(spec.size, radius=8.0, jitter=0.04),
            protocol_factory=lambda: SyncGranularProtocol(naming="identified"),
            identified=True,
            frame_seed=spec.seed,
        )

    def setup(self, session: "Session") -> None:
        n = session.spec.size
        laps = int(session.spec.params.get("laps", 1))  # type: ignore[arg-type]
        session.app_state.update(
            hops=[0], consumed=[0] * n, total_hops=laps * n
        )
        session.queue_app_send(0, 1 % n, b"TOK 1")

    def on_instant(self, session: "Session") -> None:
        state = session.app_state
        hops: List[int] = state["hops"]
        consumed: List[int] = state["consumed"]
        n = session.spec.size
        progressed = True
        while progressed and len(hops) < state["total_hops"]:
            progressed = False
            for i in range(n):
                inbox = session.harness.channel(i).inbox
                while consumed[i] < len(inbox):
                    message = inbox[consumed[i]]
                    consumed[i] += 1
                    text = message.text()
                    if not text.startswith("TOK "):
                        continue  # external traffic rides along untouched
                    hop = int(text[4:])
                    if hop != len(hops):
                        raise ServeError(
                            f"token hop {hop} arrived out of order at robot "
                            f"{i} (expected {len(hops)})"
                        )
                    hops.append(i)
                    progressed = True
                    if len(hops) < state["total_hops"]:
                        session.queue_app_send(
                            i, (i + 1) % n, f"TOK {hop + 1}".encode("utf-8")
                        )

    def done(self, session: "Session") -> bool:
        return len(session.app_state["hops"]) >= session.app_state["total_hops"]

    def summary(self, session: "Session") -> Dict[str, object]:
        return {
            "hops": len(session.app_state["hops"]),
            "total_hops": session.app_state["total_hops"],
        }


#: The servable applications.
APPS: Dict[str, _Driver] = {
    "chat": _ChatDriver(),
    "gossip": _GossipDriver(),
    "leader_election": _LeaderElectionDriver(),
    "token_ring": _TokenRingDriver(),
}


# ----------------------------------------------------------------------
# Session
# ----------------------------------------------------------------------

class Session:
    """One live (in-memory) session: a harness plus its event source.

    Not thread-safe by design — a session is owned by exactly one
    worker, and the service serializes access per worker.
    """

    def __init__(self, spec: SessionSpec) -> None:
        self.spec = spec
        self.driver = APPS[spec.app]
        self.harness = self.driver.build(spec)
        self.steps_applied = 0
        self.status = "running"  # running | done | stalled | failed
        self.error: Optional[str] = None
        self.inputs: List[Dict[str, object]] = []
        self.app_state: Dict[str, object] = {}
        self.max_steps = int(
            spec.params.get("max_steps", self.driver.max_steps_default)  # type: ignore[arg-type]
        )
        self.driver.setup(self)
        if self.driver.done(self):
            self.status = "done"

    # -- traffic -------------------------------------------------------
    def queue_app_send(self, src: int, dst: int, payload: bytes) -> None:
        """App-internal traffic: deterministic from state, never logged."""
        self.harness.channel(src).send(dst, payload)

    def apply_send(self, src: int, dst: int, payload: bytes) -> None:
        """External traffic from the service API: logged for replay."""
        self._require_steppable("send to")
        n = self.spec.size
        if not (0 <= src < n and 0 <= dst < n and src != dst):
            raise ServeError(
                f"invalid flow {src}->{dst} for a {n}-robot session"
            )
        self.inputs.append(
            {
                "at": self.steps_applied,
                "src": src,
                "dst": dst,
                "data": payload.hex(),
            }
        )
        self.harness.channel(src).send(dst, payload)
        self.driver.on_external_send(self, src, dst, payload)
        if self.status == "done":
            # New expected traffic can re-open a finished conversation.
            if not self.driver.done(self):
                self.status = "running"

    # -- stepping ------------------------------------------------------
    def _micro_step(self) -> None:
        """One instant: simulate, poll every channel, run app logic."""
        self.harness.simulator.step()
        for channel in self.harness.channels:
            channel.poll()
        self.driver.on_instant(self)
        self.steps_applied += 1

    def step(self, instants: int) -> int:
        """Advance up to ``instants`` micro-steps; returns how many ran.

        Stops early when the app completes or the session hits its
        ``max_steps`` stall bound.  A failing instant (an app-logic or
        protocol exception) marks the session ``failed`` and re-raises
        wrapped — deterministically, so a replayed twin fails the same
        way at the same instant.
        """
        if instants < 0:
            raise ServeError(f"instants must be >= 0, got {instants}")
        self._require_steppable("step")
        ran = 0
        try:
            while ran < instants and self.status == "running":
                self._micro_step()
                ran += 1
                if self.driver.done(self):
                    self.status = "done"
                elif self.steps_applied >= self.max_steps:
                    self.status = "stalled"
        except Exception as exc:
            self.status = "failed"
            self.error = f"{type(exc).__name__}: {exc}"
            raise ServeError(
                f"session failed at instant {self.steps_applied}: {self.error}"
            ) from exc
        return ran

    def _require_steppable(self, verb: str) -> None:
        if self.status == "failed":
            raise ServeError(f"cannot {verb} a failed session ({self.error})")

    # -- introspection -------------------------------------------------
    def status_doc(self) -> Dict[str, object]:
        """The service-facing status snapshot."""
        doc: Dict[str, object] = {
            "app": self.spec.app,
            "size": self.spec.size,
            "spec_hash": self.spec.spec_hash(),
            "status": self.status,
            "steps_applied": self.steps_applied,
            "inputs": len(self.inputs),
        }
        if self.error is not None:
            doc["error"] = self.error
        return doc

    def summary(self) -> Dict[str, object]:
        """Status plus the app's own outcome view."""
        return {**self.status_doc(), **self.driver.summary(self)}

    def trace_crc(self) -> str:
        """CRC32 over the trace and received-bit fingerprints.

        The same fingerprint vocabulary the verification oracles diff
        on (:mod:`repro.verify.engine`): retained trace steps with
        their activation sets and positions, plus every robot's
        received bit stream.  Two sessions with equal CRCs took the
        same trajectory and decoded the same traffic.
        """
        sim = self.harness.simulator
        crc = 0
        for step in sim.trace.steps:
            blob = repr(
                (
                    step.time,
                    tuple(sorted(step.active)),
                    tuple((p.x, p.y) for p in step.positions),
                )
            )
            crc = zlib.crc32(blob.encode("ascii"), crc)
        for i in range(sim.count):
            for e in sim.protocol_of(i).received:
                crc = zlib.crc32(
                    repr((i, e.time, e.src, e.dst, e.bit)).encode("ascii"), crc
                )
        return format(crc, "08x")

    # -- checkpoint / restore ------------------------------------------
    def checkpoint(self) -> Dict[str, object]:
        """The session's full durable state, as a small JSON document.

        Event-sourced: spec + input log + instant count.  The trace
        CRC rides along as the byte-identity witness every restore is
        checked against.
        """
        if self.status == "failed":
            raise ServeError(
                f"cannot checkpoint a failed session ({self.error})"
            )
        return {
            "schema": CHECKPOINT_SCHEMA,
            "version": CHECKPOINT_VERSION,
            "spec": self.spec.to_json(),
            "spec_hash": self.spec.spec_hash(),
            "steps_applied": self.steps_applied,
            "status": self.status,
            "inputs": [dict(entry) for entry in self.inputs],
            "trace_crc": self.trace_crc(),
        }

    @classmethod
    def restore(cls, doc: Dict[str, object]) -> "Session":
        """Replay a checkpoint into a live session (byte-identical).

        Raises:
            ServeError: on a malformed document, or when the replayed
                trace CRC does not match the checkpointed one — which
                would mean determinism was broken somewhere, the one
                thing this layer must never paper over.
        """
        if doc.get("schema") != CHECKPOINT_SCHEMA:
            raise ServeError(
                f"not a session checkpoint (schema={doc.get('schema')!r})"
            )
        if doc.get("version") != CHECKPOINT_VERSION:
            raise ServeError(
                f"unsupported checkpoint version {doc.get('version')!r}"
            )
        spec = SessionSpec.from_json(doc["spec"])  # type: ignore[arg-type]
        session = cls(spec)
        target = int(doc["steps_applied"])  # type: ignore[arg-type]
        inputs = [dict(entry) for entry in doc.get("inputs", [])]  # type: ignore[union-attr]
        by_boundary: Dict[int, List[Dict[str, object]]] = {}
        for entry in inputs:
            by_boundary.setdefault(int(entry["at"]), []).append(entry)  # type: ignore[arg-type]

        def replay_inputs(boundary: int) -> None:
            for entry in by_boundary.get(boundary, ()):
                session.apply_send(
                    int(entry["src"]),  # type: ignore[arg-type]
                    int(entry["dst"]),  # type: ignore[arg-type]
                    bytes.fromhex(str(entry["data"])),
                )

        while session.steps_applied < target:
            replay_inputs(session.steps_applied)
            before = session.steps_applied
            session.step(1)
            if session.steps_applied == before:  # pragma: no cover - guard
                raise ServeError(
                    f"replay stalled at instant {before}/{target} "
                    f"(status {session.status})"
                )
        replay_inputs(target)

        expected_crc = str(doc.get("trace_crc", ""))
        got_crc = session.trace_crc()
        if expected_crc and got_crc != expected_crc:
            raise ServeError(
                f"restore diverged from checkpoint: trace CRC {got_crc} "
                f"!= {expected_crc} (determinism violation)"
            )
        expected_status = str(doc.get("status", session.status))
        if session.status != expected_status:
            raise ServeError(
                f"restore diverged from checkpoint: status {session.status} "
                f"!= {expected_status}"
            )
        return session
