"""The TCP front end: JSON-lines over asyncio streams.

Wire protocol (one JSON object per ``\\n``-terminated line, UTF-8):

Request::

    {"op": "create", "app": "chat", "size": 2, "seed": 1,
     "params": {...}, "record": false}
    {"op": "send",   "sid": "s…", "src": 0, "dst": 1, "data": "<hex>"}
    {"op": "step",   "sid": "s…", "instants": 25}
    {"op": "query",  "sid": "s…"}
    {"op": "close",  "sid": "s…"}
    {"op": "stats"}

Response::

    {"ok": true,  ...result fields...}
    {"ok": false, "error": "SessionRejectedError", "code": 429,
     "message": "..."}

Error codes follow the exception family: 429 for admission rejection,
404 for unknown sessions, 400 for everything else the library raised.
The server is deliberately minimal — every interesting behaviour lives
in the :class:`~repro.serve.manager.SessionManager` it fronts, which
the in-process client exercises identically.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional

from repro.errors import ReproError, ServeError
from repro.serve.manager import SessionManager
from repro.serve.session import SessionSpec

__all__ = ["request", "serve_forever", "start_server"]


async def _dispatch(manager: SessionManager, doc: Dict[str, object]) -> Dict:
    op = doc.get("op")
    if op == "create":
        spec = SessionSpec(
            app=str(doc["app"]),
            size=int(doc.get("size", 2)),  # type: ignore[arg-type]
            seed=int(doc.get("seed", 0)),  # type: ignore[arg-type]
            params=dict(doc.get("params") or {}),  # type: ignore[arg-type]
        )
        sid = await manager.create(spec, record=bool(doc.get("record", False)))
        return {"sid": sid}
    if op == "send":
        return await manager.send(
            str(doc["sid"]),
            int(doc["src"]),  # type: ignore[arg-type]
            int(doc["dst"]),  # type: ignore[arg-type]
            bytes.fromhex(str(doc["data"])),
        )
    if op == "step":
        instants = doc.get("instants")
        return await manager.step(
            str(doc["sid"]), None if instants is None else int(instants)  # type: ignore[arg-type]
        )
    if op == "query":
        return await manager.query(str(doc["sid"]))
    if op == "checkpoint":
        return await manager.checkpoint(str(doc["sid"]))
    if op == "close":
        return await manager.close(str(doc["sid"]))
    if op == "stats":
        return dict(manager.stats())
    raise ServeError(f"unknown op {op!r}")


async def _handle_connection(
    manager: SessionManager,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            try:
                doc = json.loads(line)
                if not isinstance(doc, dict):
                    raise ServeError("request must be a JSON object")
                result = await _dispatch(manager, doc)
                reply = {"ok": True, **result}
            except ReproError as exc:
                reply = {
                    "ok": False,
                    "error": type(exc).__name__,
                    "code": getattr(exc, "code", 400),
                    "message": str(exc),
                }
            except json.JSONDecodeError as exc:
                reply = {
                    "ok": False,
                    "error": "JSONDecodeError",
                    "code": 400,
                    "message": str(exc),
                }
            writer.write(json.dumps(reply, sort_keys=True).encode("utf-8") + b"\n")
            await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


async def start_server(
    manager: SessionManager, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Bind the service; ``port=0`` picks a free port (tests)."""
    manager.start()

    async def handler(reader, writer):
        await _handle_connection(manager, reader, writer)

    return await asyncio.start_server(handler, host, port)


async def serve_forever(
    manager: SessionManager, host: str = "127.0.0.1", port: int = 7642
) -> None:
    """Run the front end until cancelled (the ``serve`` CLI verb)."""
    server = await start_server(manager, host, port)
    addr = server.sockets[0].getsockname() if server.sockets else (host, port)
    print(f"[repro.serve] listening on {addr[0]}:{addr[1]}")
    async with server:
        await server.serve_forever()


async def request(
    doc: Dict[str, object], host: str = "127.0.0.1", port: int = 7642
) -> Dict:
    """One client round-trip (the ``status`` CLI verb, and tests)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(json.dumps(doc).encode("utf-8") + b"\n")
        await writer.drain()
        line = await reader.readline()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass
    if not line:
        raise ServeError("server closed the connection without replying")
    reply = json.loads(line)
    if not isinstance(reply, dict):
        raise ServeError(f"malformed reply {reply!r}")
    return reply
