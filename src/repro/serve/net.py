"""The TCP front end: JSON-lines over asyncio streams, plus scrapes.

Wire protocol (one JSON object per ``\\n``-terminated line, UTF-8):

Request::

    {"op": "create", "app": "chat", "size": 2, "seed": 1,
     "params": {...}, "record": false, "trace": "optional-id"}
    {"op": "send",   "sid": "s…", "src": 0, "dst": 1, "data": "<hex>"}
    {"op": "step",   "sid": "s…", "instants": 25, "trace": "optional-id"}
    {"op": "query",  "sid": "s…"}
    {"op": "close",  "sid": "s…"}
    {"op": "stats"}
    {"op": "healthz"}
    {"op": "telemetry"}
    {"op": "metrics"}

Response::

    {"ok": true,  ...result fields...}
    {"ok": false, "error": "SessionRejectedError", "code": 429,
     "message": "..."}

A ``trace`` field on a mutating request propagates the caller's
request id through the manager into the request trace (absent, the
service mints one); step replies echo it back as ``"trace"``.

Error codes follow the exception family: 429 for admission rejection,
404 for unknown sessions, 400 for everything else the library raised —
including protocol garbage: malformed JSON, non-object lines and
oversized lines all get a 400 envelope (an oversized line also closes
the connection, since the stream position is unrecoverable), and a
peer that disconnects mid-line is dropped without ceremony.

The same port speaks just enough HTTP for operators: ``GET /metrics``
serves the registry in Prometheus text exposition format and
``GET /healthz`` serves the manager's health verdict as JSON (200 when
ok, 503 when degraded) — one scrape per connection, close-delimited,
which is all Prometheus and a load balancer need.

The server is deliberately minimal — every interesting behaviour lives
in the :class:`~repro.serve.manager.SessionManager` it fronts, which
the in-process client exercises identically.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional

from repro.errors import ReproError, ServeError
from repro.obs.live import to_prometheus
from repro.serve.log import session_logger
from repro.serve.manager import SessionManager
from repro.serve.session import SessionSpec

__all__ = ["request", "scrape", "serve_forever", "start_server"]


async def _dispatch(manager: SessionManager, doc: Dict[str, object]) -> Dict:
    op = doc.get("op")
    trace = doc.get("trace")
    trace = None if trace is None else str(trace)
    if op == "create":
        spec = SessionSpec(
            app=str(doc["app"]),
            size=int(doc.get("size", 2)),  # type: ignore[arg-type]
            seed=int(doc.get("seed", 0)),  # type: ignore[arg-type]
            params=dict(doc.get("params") or {}),  # type: ignore[arg-type]
        )
        sid = await manager.create(
            spec, record=bool(doc.get("record", False)), trace=trace
        )
        return {"sid": sid}
    if op == "send":
        return await manager.send(
            str(doc["sid"]),
            int(doc["src"]),  # type: ignore[arg-type]
            int(doc["dst"]),  # type: ignore[arg-type]
            bytes.fromhex(str(doc["data"])),
            trace=trace,
        )
    if op == "step":
        instants = doc.get("instants")
        return await manager.step(
            str(doc["sid"]),
            None if instants is None else int(instants),  # type: ignore[arg-type]
            trace=trace,
        )
    if op == "query":
        return await manager.query(str(doc["sid"]), trace=trace)
    if op == "checkpoint":
        return await manager.checkpoint(str(doc["sid"]), trace=trace)
    if op == "close":
        return await manager.close(str(doc["sid"]), trace=trace)
    if op == "stats":
        return dict(manager.stats())
    if op == "healthz":
        return dict(manager.health())
    if op == "telemetry":
        return dict(manager.telemetry())
    if op == "metrics":
        return {"exposition": to_prometheus(manager.registry)}
    raise ServeError(f"unknown op {op!r}")


def _http_response(status: int, content_type: str, body: str) -> bytes:
    reason = {200: "OK", 404: "Not Found", 503: "Service Unavailable"}.get(
        status, "OK"
    )
    payload = body.encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + payload


async def _handle_http(
    manager: SessionManager,
    first_line: bytes,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one HTTP scrape (``GET /metrics`` / ``GET /healthz``)."""
    parts = first_line.decode("ascii", "replace").split()
    path = parts[1] if len(parts) > 1 else "/"
    while True:  # drain the request headers; we need none of them
        try:
            line = await reader.readline()
        except (ValueError, ConnectionError):
            break
        if not line or line in (b"\r\n", b"\n"):
            break
    if path.split("?", 1)[0] == "/metrics":
        writer.write(
            _http_response(
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                to_prometheus(manager.registry),
            )
        )
    elif path.split("?", 1)[0] == "/healthz":
        health = manager.health()
        writer.write(
            _http_response(
                200 if health["status"] == "ok" else 503,
                "application/json",
                json.dumps(health, sort_keys=True),
            )
        )
    else:
        writer.write(
            _http_response(404, "text/plain; charset=utf-8",
                           "only /metrics and /healthz live here\n")
        )
    await writer.drain()


async def _handle_connection(
    manager: SessionManager,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    log = session_logger("net")
    try:
        while True:
            try:
                line = await reader.readline()
            except ValueError:
                # line exceeded the stream limit: the rest of the
                # stream is unframed garbage, so answer and hang up
                reply = {
                    "ok": False,
                    "error": "ServeError",
                    "code": 400,
                    "message": "request line exceeds the size limit",
                }
                log.warning("oversized request line; closing connection")
                writer.write(
                    json.dumps(reply, sort_keys=True).encode("utf-8") + b"\n"
                )
                await writer.drain()
                break
            if not line:
                break
            if not line.endswith(b"\n"):
                # mid-line disconnect: the peer is gone, nothing to say
                log.debug("peer disconnected mid-line (%d bytes)", len(line))
                break
            if line[:4] in (b"GET ", b"HEAD"):
                await _handle_http(manager, line, reader, writer)
                break
            try:
                doc = json.loads(line)
                if not isinstance(doc, dict):
                    raise ServeError("request must be a JSON object")
                result = await _dispatch(manager, doc)
                reply = {"ok": True, **result}
            except ReproError as exc:
                sid = None
                if isinstance(doc, dict):  # type: ignore[possibly-undefined]
                    sid = doc.get("sid")
                session_logger("net", sid=sid).warning(
                    "request failed: %s: %s", type(exc).__name__, exc
                )
                reply = {
                    "ok": False,
                    "error": type(exc).__name__,
                    "code": getattr(exc, "code", 400),
                    "message": str(exc),
                }
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                log.warning("undecodable request line: %s", exc)
                reply = {
                    "ok": False,
                    "error": "JSONDecodeError",
                    "code": 400,
                    "message": str(exc),
                }
            except (KeyError, TypeError, ValueError) as exc:
                # missing/mistyped fields in an otherwise-valid object
                log.warning("malformed request: %s: %s",
                            type(exc).__name__, exc)
                reply = {
                    "ok": False,
                    "error": type(exc).__name__,
                    "code": 400,
                    "message": str(exc),
                }
            writer.write(json.dumps(reply, sort_keys=True).encode("utf-8") + b"\n")
            await writer.drain()
    except (ConnectionError, OSError):  # peer vanished mid-reply
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


async def start_server(
    manager: SessionManager, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Bind the service; ``port=0`` picks a free port (tests)."""
    manager.start()

    async def handler(reader, writer):
        await _handle_connection(manager, reader, writer)

    return await asyncio.start_server(handler, host, port)


async def serve_forever(
    manager: SessionManager, host: str = "127.0.0.1", port: int = 7642
) -> None:
    """Run the front end until cancelled (the ``serve`` CLI verb)."""
    server = await start_server(manager, host, port)
    addr = server.sockets[0].getsockname() if server.sockets else (host, port)
    print(f"[repro.serve] listening on {addr[0]}:{addr[1]}")
    async with server:
        await server.serve_forever()


async def request(
    doc: Dict[str, object], host: str = "127.0.0.1", port: int = 7642
) -> Dict:
    """One client round-trip (the ``status`` CLI verb, and tests)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(json.dumps(doc).encode("utf-8") + b"\n")
        await writer.drain()
        line = await reader.readline()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass
    if not line:
        raise ServeError("server closed the connection without replying")
    reply = json.loads(line)
    if not isinstance(reply, dict):
        raise ServeError(f"malformed reply {reply!r}")
    return reply


async def scrape(
    path: str, host: str = "127.0.0.1", port: int = 7642
) -> "tuple[int, str]":
    """One HTTP GET against the front end; returns (status, body).

    The smoke/CI scrape step and tests use this instead of an HTTP
    client library — the front end's HTTP is close-delimited, so
    "read to EOF" is the whole protocol.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode("ascii")
        )
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].split()
    if len(status_line) < 2 or not status_line[0].startswith(b"HTTP/"):
        raise ServeError(f"not an HTTP response: {head[:80]!r}")
    return int(status_line[1]), body.decode("utf-8")
