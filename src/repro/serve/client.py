"""The in-process client: the service API without sockets.

Tests, the smoke job and the load generator all speak to the service
through this class, which is a thin veneer over
:class:`~repro.serve.manager.SessionManager` — the *same* code paths
(admission gate, batch ticker, eviction, persistence) a TCP client
exercises, minus serialization.  ``repro.serve.net`` implements the
byte-level twin over asyncio streams with the identical verb set.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.serve.manager import SessionManager
from repro.serve.session import SessionSpec

__all__ = ["ServeClient"]


class ServeClient:
    """Async client bound to an in-process manager."""

    def __init__(self, manager: SessionManager) -> None:
        self.manager = manager

    async def create(
        self,
        app: str,
        size: int,
        seed: int = 0,
        params: Optional[Dict[str, object]] = None,
        record: bool = False,
        trace: Optional[str] = None,
    ) -> str:
        """Open a session; returns its id."""
        spec = SessionSpec(app=app, size=size, seed=seed, params=dict(params or {}))
        return await self.manager.create(spec, record=record, trace=trace)

    async def send(
        self, sid: str, src: int, dst: int, payload: Union[str, bytes],
        trace: Optional[str] = None,
    ) -> Dict:
        """Inject one message (text is UTF-8 encoded)."""
        data = payload.encode("utf-8") if isinstance(payload, str) else payload
        return await self.manager.send(sid, src, dst, data, trace=trace)

    async def step(
        self, sid: str, instants: Optional[int] = None,
        trace: Optional[str] = None,
    ) -> Dict:
        """Advance a session; resolves with its post-tick status.

        When the manager carries a tracer the reply's ``trace`` field
        names the request trace; ``self.manager.tracer.ring.find(...)``
        retrieves its spans.
        """
        return await self.manager.step(sid, instants, trace=trace)

    async def run_to_completion(
        self, sid: str, instants_per_step: int = 25, max_requests: int = 2_000
    ) -> Dict:
        """Step until the session leaves the ``running`` state."""
        doc = await self.manager.step(sid, instants_per_step)
        requests = 1
        while doc["status"] == "running" and requests < max_requests:
            doc = await self.manager.step(sid, instants_per_step)
            requests += 1
        return doc

    async def query(self, sid: str) -> Dict:
        """Status + app summary (parked sessions answer from disk)."""
        return await self.manager.query(sid)

    async def checkpoint(self, sid: str) -> Dict:
        """The session's current checkpoint document."""
        return await self.manager.checkpoint(sid)

    async def close(self, sid: str) -> Dict:
        """Tear the session down; returns its final summary."""
        return await self.manager.close(sid)

    async def export_obs(self, sid: str, path: str) -> str:
        """Dump a recorded session's obs trace; returns the path."""
        return await self.manager.export_obs(sid, path)

    def stats(self) -> Dict[str, object]:
        """The service-level stats snapshot."""
        return self.manager.stats()

    def health(self) -> Dict[str, object]:
        """The service health verdict (the ``/healthz`` payload)."""
        return self.manager.health()

    def telemetry(self) -> Dict[str, object]:
        """The live-dashboard frame (stats + health + tracer windows)."""
        return self.manager.telemetry()
