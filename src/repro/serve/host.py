"""The session host: a command-driven table of live sessions.

One host owns a set of :class:`~repro.serve.session.Session` objects
and executes plain-data commands against them — the exact surface the
worker pool ships across process boundaries, so the in-process pool
and the process pool are interchangeable by construction.  Commands
and results are JSON-shaped (dicts, lists, strings, numbers) and
exceptions travel as ``{"error": {"type", "message"}}`` envelopes that
the pool re-raises as the matching :mod:`repro.errors` class.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ServeError, UnknownSessionError
from repro.serve.log import session_logger
from repro.serve.session import Session, SessionSpec

__all__ = ["SessionHost"]


class SessionHost:
    """Executes session commands; one per worker."""

    def __init__(self) -> None:
        self._sessions: Dict[str, Session] = {}
        self._recorders: Dict[str, object] = {}

    # -- lifecycle -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._sessions)

    @property
    def session_ids(self) -> List[str]:
        return sorted(self._sessions)

    def _get(self, sid: str) -> Session:
        try:
            return self._sessions[sid]
        except KeyError:
            raise UnknownSessionError(f"no session {sid!r} on this worker") from None

    def create(
        self,
        sid: str,
        spec_doc: Dict[str, object],
        checkpoint: Optional[Dict[str, object]] = None,
        record: bool = False,
    ) -> Dict[str, object]:
        """Create (or restore, when a checkpoint is given) one session.

        ``record=True`` attaches an :class:`~repro.obs.recorder.ObsRecorder`
        to the session's simulator — byte-transparent by the obs
        layer's enforced contract, so recorded and unrecorded sessions
        take identical trajectories.
        """
        if sid in self._sessions:
            raise ServeError(f"session {sid!r} already exists on this worker")
        if checkpoint is not None:
            session = Session.restore(checkpoint)
            if SessionSpec.from_json(spec_doc) != session.spec:
                raise ServeError(
                    f"checkpoint for {sid!r} carries a different spec"
                )
        else:
            session = Session(SessionSpec.from_json(spec_doc))
        self._sessions[sid] = session
        if record:
            from repro.obs.recorder import ObsRecorder

            recorder = ObsRecorder(meta={"session": sid, "app": session.spec.app})
            recorder.attach(session.harness.simulator)
            self._recorders[sid] = recorder
        return session.status_doc()

    def close(self, sid: str) -> Dict[str, object]:
        """Remove one session; returns its final summary."""
        session = self._get(sid)
        summary = session.summary()
        self._drop(sid)
        return summary

    def _drop(self, sid: str) -> None:
        session = self._sessions.pop(sid)
        recorder = self._recorders.pop(sid, None)
        if recorder is not None:
            recorder.detach(session.harness.simulator)  # type: ignore[attr-defined]

    # -- work ----------------------------------------------------------
    def send(self, sid: str, src: int, dst: int, data: str) -> Dict[str, object]:
        """Inject one hex-encoded external message; returns the status."""
        session = self._get(sid)
        session.apply_send(src, dst, bytes.fromhex(data))
        return session.status_doc()

    def step(self, sid: str, instants: int) -> Dict[str, object]:
        """Advance one session; the status doc gains a ``ran`` count.

        The doc also carries ``exec_s`` — wall seconds this worker
        spent executing, measured host-side so the manager can
        attribute the ``execute`` span of a request trace across the
        pool boundary without trusting queue timing.
        """
        session = self._get(sid)
        t0 = time.perf_counter()
        ran = session.step(instants)
        exec_s = time.perf_counter() - t0
        return {**session.status_doc(), "ran": ran, "exec_s": exec_s}

    def step_batch(
        self, requests: Sequence[Tuple[str, int]]
    ) -> List[Dict[str, object]]:
        """One worker tick: step many sessions in one command.

        Per-session failures are embedded in that session's slot (the
        error envelope) instead of aborting the whole tick — one bad
        session must not stall its batch neighbours.
        """
        out: List[Dict[str, object]] = []
        for sid, instants in requests:
            try:
                out.append(self.step(sid, instants))
            except Exception as exc:
                session = self._sessions.get(sid)
                session_logger(
                    "host", sid=sid, app=session.spec.app if session else None
                ).warning("step(%d) failed: %s: %s",
                          instants, type(exc).__name__, exc)
                out.append(
                    {"error": {"type": type(exc).__name__, "message": str(exc)}}
                )
        return out

    def query(self, sid: str) -> Dict[str, object]:
        """Status plus the app's own outcome view."""
        return self._get(sid).summary()

    # -- durability ----------------------------------------------------
    def checkpoint(self, sid: str) -> Dict[str, object]:
        """The session's checkpoint document (session stays live)."""
        return self._get(sid).checkpoint()

    def evict(self, sid: str) -> Dict[str, object]:
        """Checkpoint a session and drop the live object."""
        checkpoint = self._get(sid).checkpoint()
        self._drop(sid)
        return checkpoint

    def trace_crc(self, sid: str) -> str:
        """The session's current trace fingerprint."""
        return self._get(sid).trace_crc()

    def export_obs(self, sid: str, path: str) -> str:
        """Dump a recorded session's obs trace as JSONL; returns path."""
        recorder = self._recorders.get(sid)
        if recorder is None:
            raise ServeError(
                f"session {sid!r} was not created with record=True"
            )
        from repro.obs.export import dump_run

        return dump_run(recorder.to_run(), path)  # type: ignore[attr-defined]

    # -- command dispatch (the wire surface) ---------------------------
    def execute(self, command: Tuple[object, ...]) -> object:
        """Run one ``(op, *args)`` command; exceptions propagate."""
        op, *args = command
        handler = getattr(self, str(op), None)
        if handler is None or str(op).startswith("_"):
            raise ServeError(f"unknown host command {op!r}")
        return handler(*args)
