"""The asyncio session manager: lifecycle, batching, backpressure, LRU.

One :class:`SessionManager` multiplexes thousands of concurrent swarm
sessions over a :class:`~repro.serve.pool.WorkerPool`:

* **Lifecycle** — ``create`` / ``send`` / ``step`` / ``query`` /
  ``close``, each an awaitable that resolves when the work is done.
* **Cooperative batch stepping** — step requests land in a bounded
  queue; a single ticker task drains it, coalesces requests for the
  same session, groups them by worker affinity and issues one
  ``step_batch`` command per worker per tick (concurrently across
  workers).  Thousands of outstanding step futures become a handful
  of pool round-trips.
* **Backpressure with hysteresis** — at the queue's *high* watermark
  the manager rejects new ``create``/``step`` work with
  :class:`~repro.errors.SessionRejectedError` (HTTP-429 semantics) and
  only resumes admission once the queue has drained to the *low*
  watermark, so admission cannot flap at the boundary.
* **LRU eviction through the persistence tier** — at most
  ``max_live`` sessions keep live objects in worker memory; beyond
  that, the least recently used session is checkpointed into the
  campaign-store-backed :class:`~repro.serve.store.SessionStore` and
  its live object dropped.  The next operation touching it restores by
  replay — byte-identical, checked by CRC on every restore.

Metrics land in a :class:`~repro.obs.registry.MetricsRegistry` under
``serve_*`` names (active/live sessions, queue depth, evictions,
restores, rejections, checkpoint bytes, step latency histogram).
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import ServeError, SessionRejectedError, UnknownSessionError
from repro.obs.live import RequestTrace, RequestTracer
from repro.obs.registry import MetricsRegistry
from repro.serve.log import session_logger
from repro.serve.pool import WorkerPool
from repro.serve.session import SessionSpec
from repro.serve.store import SessionStore

__all__ = ["ServeConfig", "SessionManager"]

#: step-latency histogram buckets (seconds): sub-millisecond ticks up
#: to multi-second stalls.
_LATENCY_BOUNDS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


@dataclass(frozen=True)
class ServeConfig:
    """Service tuning knobs (all enforced, none advisory).

    Attributes:
        max_live: live-session ceiling across all workers; the LRU
            eviction trigger.
        queue_high: pending-step high watermark — admission stops here.
        queue_low: low watermark — admission resumes here (hysteresis;
            must be <= queue_high).
        batch_max: most step requests drained into one tick.
        default_instants: instants per step request when the caller
            does not say.
        max_open: optional hard ceiling on open (live + evicted)
            sessions; ``create`` beyond it is rejected.
    """

    max_live: int = 1024
    queue_high: int = 4096
    queue_low: int = 1024
    batch_max: int = 512
    default_instants: int = 10
    max_open: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_live < 1:
            raise ServeError(f"max_live must be >= 1, got {self.max_live}")
        if not (0 < self.queue_low <= self.queue_high):
            raise ServeError(
                f"need 0 < queue_low <= queue_high, got "
                f"{self.queue_low}/{self.queue_high}"
            )
        if self.batch_max < 1:
            raise ServeError(f"batch_max must be >= 1, got {self.batch_max}")


@dataclass
class _SessionEntry:
    """Manager-side view of one open session."""

    sid: str
    spec: SessionSpec
    live: bool
    status: str = "running"
    steps_applied: int = 0
    pending: int = 0  # queued step requests not yet resolved


class _StepRequest:
    __slots__ = ("sid", "instants", "future", "enqueued_at",
                 "trace", "drained_at", "restore_s")

    def __init__(
        self,
        sid: str,
        instants: int,
        future: asyncio.Future,
        trace: Optional[RequestTrace] = None,
    ) -> None:
        self.sid = sid
        self.instants = instants
        self.future = future
        self.enqueued_at = time.perf_counter()
        #: request trace opened at enqueue (None when tracing is off)
        self.trace = trace
        #: when the ticker popped this request off the queue
        self.drained_at: Optional[float] = None
        #: this request's share of the tick's restore time (seconds)
        self.restore_s = 0.0


class SessionManager:
    """The multiplexer.  One per service process.

    Must be constructed (and used) inside a running event loop; call
    :meth:`start` before submitting work and :meth:`stop` when done —
    or use it as an async context manager.
    """

    def __init__(
        self,
        pool: WorkerPool,
        store: Optional[SessionStore] = None,
        config: Optional[ServeConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[RequestTracer] = None,
    ) -> None:
        self.pool = pool
        self.store = store
        self.config = config or ServeConfig()
        #: request-scoped tracing plane; ``None`` keeps the manager on
        #: the zero-dispatch path (every hook below is gated on it).
        self.tracer = tracer
        if registry is not None:
            self.registry = registry
        elif tracer is not None:
            self.registry = tracer.registry
        else:
            self.registry = MetricsRegistry()
        #: LRU order: least recently touched first.
        self._sessions: "OrderedDict[str, _SessionEntry]" = OrderedDict()
        self._queue: Deque[_StepRequest] = deque()
        self._accepting = True
        self._counter = 0
        self._ticker: Optional[asyncio.Task] = None
        self._wakeup = asyncio.Event()
        self._stopped = False
        self._peak_open = 0
        # -- metrics ---------------------------------------------------
        self._g_open = self.registry.gauge("serve_open_sessions")
        self._g_live = self.registry.gauge("serve_live_sessions")
        self._g_queue = self.registry.gauge("serve_queue_depth")
        self._g_peak = self.registry.gauge("serve_peak_open_sessions")
        self._c_created = self.registry.counter("serve_sessions_created")
        self._c_closed = self.registry.counter("serve_sessions_closed")
        self._c_steps = self.registry.counter("serve_instants_total")
        self._c_evictions = self.registry.counter("serve_evictions")
        self._c_restores = self.registry.counter("serve_restores")
        self._c_rejected = self.registry.counter("serve_rejections")
        self._c_ckpt_bytes = self.registry.counter("serve_checkpoint_bytes")
        self._h_latency = self.registry.histogram(
            "serve_step_latency_s", buckets=_LATENCY_BOUNDS
        )
        self._log = session_logger("manager")

    # -- lifecycle of the manager itself -------------------------------
    async def __aenter__(self) -> "SessionManager":
        self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    def start(self) -> None:
        """Launch the batch ticker (idempotent)."""
        if self._ticker is None or self._ticker.done():
            self._stopped = False
            self._ticker = asyncio.get_running_loop().create_task(
                self._tick_loop(), name="serve-ticker"
            )

    async def stop(self) -> None:
        """Drain nothing, fail pending work, stop the ticker."""
        self._stopped = True
        self._wakeup.set()
        if self._ticker is not None:
            await self._ticker
            self._ticker = None
        while self._queue:
            request = self._queue.popleft()
            if not request.future.done():
                request.future.set_exception(
                    ServeError("service stopped with steps pending")
                )
        self._g_queue.set(0)
        self.pool.close()

    # -- admission ------------------------------------------------------
    def _admission_gate(self, what: str) -> None:
        depth = len(self._queue)
        if self._accepting and depth >= self.config.queue_high:
            self._accepting = False
        elif not self._accepting and depth <= self.config.queue_low:
            self._accepting = True
        if not self._accepting:
            self._c_rejected.inc()
            self._log.warning(
                "%s rejected: %d steps pending (high watermark %d)",
                what, depth, self.config.queue_high,
            )
            raise SessionRejectedError(
                f"{what} rejected: {depth} steps pending (high watermark "
                f"{self.config.queue_high}; retry after the queue drains "
                f"below {self.config.queue_low})"
            )

    def _entry(self, sid: str) -> _SessionEntry:
        try:
            return self._sessions[sid]
        except KeyError:
            raise UnknownSessionError(f"no open session {sid!r}") from None

    def _touch(self, sid: str) -> None:
        self._sessions.move_to_end(sid)

    def _app_of(self, sid: Optional[str]) -> Optional[str]:
        entry = self._sessions.get(sid) if sid else None
        return entry.spec.app if entry is not None else None

    async def _traced(self, op, app, sid, trace, run):
        """Run one non-step operation under a request trace.

        Non-step verbs are a single awaited round-trip, so one
        ``dispatch`` span covering the whole request is exact (100%
        coverage by construction).  With no tracer this is a bare
        ``await`` — nothing is constructed, nothing dispatched.
        """
        if self.tracer is None:
            return await run()
        opened = self.tracer.start(op, app=app, sid=sid, trace_id=trace)
        error: Optional[str] = None
        try:
            result = await run()
        except BaseException as exc:
            error = type(exc).__name__
            raise
        finally:
            ended = time.perf_counter()
            opened.add_span("dispatch", opened.started, ended)
            self.tracer.finish(opened, error=error, ended=ended)
        # checkpoint documents are byte-identity artifacts (restore
        # re-proves their CRC) — never decorate those.
        if isinstance(result, dict) and op != "checkpoint":
            result["trace"] = opened.trace_id
        return result

    # -- public API -----------------------------------------------------
    async def create(
        self,
        spec: SessionSpec,
        sid: Optional[str] = None,
        record: bool = False,
        trace: Optional[str] = None,
    ) -> str:
        """Open a session; returns its id."""
        return await self._traced(
            "create", spec.app, sid, trace,
            lambda: self._create(spec, sid, record),
        )

    async def _create(
        self,
        spec: SessionSpec,
        sid: Optional[str] = None,
        record: bool = False,
    ) -> str:
        self._admission_gate("create")
        if self.config.max_open is not None and len(
            self._sessions
        ) >= self.config.max_open:
            self._c_rejected.inc()
            raise SessionRejectedError(
                f"create rejected: {len(self._sessions)} sessions open "
                f"(ceiling {self.config.max_open})"
            )
        if sid is None:
            self._counter += 1
            sid = f"s{self._counter:08d}"
        if sid in self._sessions:
            raise ServeError(f"session id {sid!r} is already open")
        doc = await self.pool.call_for(
            sid, ("create", sid, spec.to_json(), None, record)
        )
        entry = _SessionEntry(sid, spec, live=True, status=str(doc["status"]))
        self._sessions[sid] = entry
        self._c_created.inc()
        self.registry.counter("serve_sessions_created", app=spec.app).inc()
        self._peak_open = max(self._peak_open, len(self._sessions))
        self._update_gauges()
        await self._evict_over_limit()
        return sid

    async def send(
        self, sid: str, src: int, dst: int, payload: bytes,
        trace: Optional[str] = None,
    ) -> Dict:
        """Inject one message into a session (restoring it if parked)."""
        return await self._traced(
            "send", self._app_of(sid), sid, trace,
            lambda: self._send(sid, src, dst, payload),
        )

    async def _send(self, sid: str, src: int, dst: int, payload: bytes) -> Dict:
        entry = self._entry(sid)
        await self._ensure_live(entry)
        self._touch(sid)
        doc = await self.pool.call_for(sid, ("send", sid, src, dst, payload.hex()))
        entry.status = str(doc["status"])
        return doc  # type: ignore[return-value]

    async def step(
        self, sid: str, instants: Optional[int] = None,
        trace: Optional[str] = None,
    ) -> Dict:
        """Queue a step request; resolves after its batch tick ran."""
        self.start()  # idempotent: the ticker must be running to resolve
        opened: Optional[RequestTrace] = None
        if self.tracer is not None:
            opened = self.tracer.start(
                "step", app=self._app_of(sid), sid=sid, trace_id=trace
            )
        try:
            self._admission_gate("step")
            entry = self._entry(sid)
        except Exception as exc:
            if opened is not None:
                ended = time.perf_counter()
                opened.add_span("dispatch", opened.started, ended)
                self.tracer.finish(
                    opened, error=type(exc).__name__, ended=ended
                )
            raise
        k = self.config.default_instants if instants is None else int(instants)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        request = _StepRequest(sid, k, future, trace=opened)
        self._queue.append(request)
        entry.pending += 1
        self._g_queue.set(len(self._queue))
        self._wakeup.set()
        return await future

    async def query(self, sid: str, trace: Optional[str] = None) -> Dict:
        """Status + app summary.  Parked sessions answer from their
        checkpoint without being restored (a query is not a touch)."""
        return await self._traced(
            "query", self._app_of(sid), sid, trace, lambda: self._query(sid)
        )

    async def _query(self, sid: str) -> Dict:
        entry = self._entry(sid)
        if not entry.live:
            assert self.store is not None
            checkpoint = self.store.load(entry.sid)
            return {
                "app": entry.spec.app,
                "size": entry.spec.size,
                "spec_hash": entry.spec.spec_hash(),
                "status": str(checkpoint["status"]),
                "steps_applied": int(checkpoint["steps_applied"]),  # type: ignore[arg-type]
                "evicted": True,
            }
        self._touch(sid)
        return await self.pool.call_for(sid, ("query", sid))  # type: ignore[return-value]

    async def checkpoint(self, sid: str, trace: Optional[str] = None) -> Dict:
        """The session's current checkpoint document (live or parked)."""
        return await self._traced(
            "checkpoint", self._app_of(sid), sid, trace,
            lambda: self._checkpoint(sid),
        )

    async def _checkpoint(self, sid: str) -> Dict:
        entry = self._entry(sid)
        if not entry.live:
            assert self.store is not None
            return self.store.load(sid)
        self._touch(sid)
        return await self.pool.call_for(sid, ("checkpoint", sid))  # type: ignore[return-value]

    async def close(self, sid: str, trace: Optional[str] = None) -> Dict:
        """Tear a session down; returns its final summary."""
        return await self._traced(
            "close", self._app_of(sid), sid, trace, lambda: self._close(sid)
        )

    async def _close(self, sid: str) -> Dict:
        entry = self._entry(sid)
        if entry.pending:
            raise ServeError(
                f"session {sid!r} has {entry.pending} steps pending; "
                f"await them before closing"
            )
        if entry.live:
            summary = await self.pool.call_for(sid, ("close", sid))
        else:
            assert self.store is not None
            checkpoint = self.store.load(sid)
            summary = {
                "app": entry.spec.app,
                "status": checkpoint["status"],
                "steps_applied": checkpoint["steps_applied"],
                "evicted": True,
            }
        if self.store is not None:
            self.store.discard(sid)
        del self._sessions[sid]
        self._c_closed.inc()
        self.registry.counter("serve_sessions_closed", app=entry.spec.app).inc()
        self._update_gauges()
        return summary  # type: ignore[return-value]

    async def export_obs(self, sid: str, path: str) -> str:
        """Dump a recorded session's obs trace next to the service."""
        entry = self._entry(sid)
        await self._ensure_live(entry)
        return str(await self.pool.call_for(sid, ("export_obs", sid, path)))

    def health(self) -> Dict[str, object]:
        """The ``/healthz`` verdict: admission state + SLO attainment.

        ``ok`` while the service accepts work and (when a tracer is
        wired) every SLO is attained; otherwise ``degraded`` with the
        reasons named.
        """
        reasons: List[str] = []
        if not self._accepting:
            reasons.append("backpressure: admission closed")
        slos: List[Dict[str, object]] = []
        if self.tracer is not None:
            slos = self.tracer.slo.status()
            reasons.extend(
                f"slo violated: {row['objective']}"
                for row in slos
                if not row["ok"]
            )
        return {
            "status": "degraded" if reasons else "ok",
            "accepting": self._accepting,
            "reasons": reasons,
            "slos": slos,
        }

    def telemetry(self) -> Dict[str, object]:
        """The live-dashboard payload (stats + health + tracer windows)."""
        frame: Dict[str, object] = {
            "stats": self.stats(),
            "health": self.health(),
        }
        if self.tracer is not None:
            frame.update(self.tracer.telemetry())
        return frame

    def session_ids(self) -> List[str]:
        """Every open session id, LRU order (least recent first)."""
        return list(self._sessions)

    def stats(self) -> Dict[str, object]:
        """A service-level snapshot (the ``status`` CLI's payload)."""
        live = sum(1 for e in self._sessions.values() if e.live)
        return {
            "open": len(self._sessions),
            "live": live,
            "evicted": len(self._sessions) - live,
            "queue_depth": len(self._queue),
            "accepting": self._accepting,
            "peak_open": self._peak_open,
            "created": self._c_created.value,
            "closed": self._c_closed.value,
            "instants": self._c_steps.value,
            "evictions": self._c_evictions.value,
            "restores": self._c_restores.value,
            "rejections": self._c_rejected.value,
            "checkpoint_bytes": self._c_ckpt_bytes.value,
            "workers": self.pool.size,
        }

    # -- eviction / restore ---------------------------------------------
    async def _ensure_live(self, entry: _SessionEntry) -> None:
        if entry.live:
            return
        if self.store is None:  # pragma: no cover - guarded at evict
            raise ServeError("session parked without a store")
        checkpoint = self.store.load(entry.sid)
        await self.pool.call_for(
            entry.sid,
            ("create", entry.sid, entry.spec.to_json(), checkpoint, False),
        )
        entry.live = True
        entry.status = str(checkpoint["status"])
        self._c_restores.inc()
        self._update_gauges()
        await self._evict_over_limit(skip={entry.sid})

    async def _evict_over_limit(self, skip: Optional[set] = None) -> None:
        """Evict LRU live sessions until under ``max_live``."""
        if self.store is None:
            return
        skip = skip or set()
        live = [e for e in self._sessions.values() if e.live]
        excess = len(live) - self.config.max_live
        if excess <= 0:
            return
        for entry in list(self._sessions.values()):  # LRU first
            if excess <= 0:
                break
            if not entry.live or entry.sid in skip or entry.pending:
                continue
            if entry.status == "failed":
                continue  # failed sessions cannot checkpoint; keep live
            checkpoint = await self.pool.call_for(
                entry.sid, ("evict", entry.sid)
            )
            self.store.save(entry.sid, checkpoint)  # type: ignore[arg-type]
            size = self.store.checkpoint_bytes(entry.sid)
            if size:
                self._c_ckpt_bytes.inc(size)
            entry.live = False
            self._c_evictions.inc()
            excess -= 1
        self._update_gauges()

    # -- the batch ticker ------------------------------------------------
    async def _tick_loop(self) -> None:
        while not self._stopped:
            if not self._queue:
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            await self._tick()

    async def _tick(self) -> None:
        """Drain one batch of step requests and run it on the pool."""
        batch: List[_StepRequest] = []
        while self._queue and len(batch) < self.config.batch_max:
            batch.append(self._queue.popleft())
        self._g_queue.set(len(self._queue))
        if self.tracer is not None:
            drained_at = time.perf_counter()
            for request in batch:
                request.drained_at = drained_at

        # Coalesce per session (requests keep their own futures), group
        # by worker affinity, restore parked sessions first.
        per_sid: "OrderedDict[str, List[_StepRequest]]" = OrderedDict()
        for request in batch:
            per_sid.setdefault(request.sid, []).append(request)

        by_worker: Dict[int, List[Tuple[str, int]]] = {}
        for sid, requests in per_sid.items():
            entry = self._sessions.get(sid)
            if entry is None:
                self._resolve(
                    requests, None, UnknownSessionError(f"no open session {sid!r}")
                )
                continue
            try:
                restore_t0 = time.perf_counter()
                was_live = entry.live
                await self._ensure_live(entry)
                if self.tracer is not None and not was_live:
                    # attribute the restore across the coalesced
                    # requests by their instants share, so the sid's
                    # spans still telescope
                    restore_s = time.perf_counter() - restore_t0
                    total = sum(r.instants for r in requests) or 1
                    for request in requests:
                        request.restore_s = restore_s * request.instants / total
            except Exception as exc:
                self._resolve(requests, None, exc)
                continue
            self._touch(sid)
            instants = sum(r.instants for r in requests)
            by_worker.setdefault(self.pool.worker_of(sid), []).append(
                (sid, instants)
            )

        async def run_worker(worker: int, requests: List[Tuple[str, int]]):
            return await self.pool.call(worker, ("step_batch", requests))

        workers = sorted(by_worker)
        results = await asyncio.gather(
            *(run_worker(w, by_worker[w]) for w in workers),
            return_exceptions=True,
        )

        for worker, outcome in zip(workers, results):
            ticked = by_worker[worker]
            if isinstance(outcome, BaseException):
                for sid, _ in ticked:
                    self._resolve(per_sid[sid], None, outcome)
                continue
            for (sid, _), doc in zip(ticked, outcome):  # type: ignore[arg-type]
                error = doc.get("error") if isinstance(doc, dict) else None
                if error:
                    self._resolve(per_sid[sid], None, self._error_from(error))
                else:
                    self._resolve(per_sid[sid], doc, None)

    def _error_from(self, envelope: Dict[str, object]) -> Exception:
        from repro import errors as _errors

        cls = getattr(_errors, str(envelope.get("type")), None)
        if not (isinstance(cls, type) and issubclass(cls, _errors.ReproError)):
            cls = ServeError
        return cls(str(envelope.get("message")))

    def _resolve(
        self,
        requests: List[_StepRequest],
        doc: Optional[Dict[str, object]],
        exc: Optional[BaseException],
    ) -> None:
        """Resolve one session's coalesced requests for this tick."""
        now = time.perf_counter()
        entry = self._sessions.get(requests[0].sid) if requests else None
        app = entry.spec.app if entry is not None else None
        if doc is not None and entry is not None:
            entry.status = str(doc["status"])
            entry.steps_applied = int(doc["steps_applied"])  # type: ignore[arg-type]
            ran = int(doc.get("ran", 0))  # type: ignore[arg-type]
            self._c_steps.inc(ran)
            self.registry.counter("serve_instants_total", app=app).inc(ran)
        if exc is not None and requests:
            session_logger("manager", sid=requests[0].sid, app=app).warning(
                "step batch failed for %d request(s): %s: %s",
                len(requests), type(exc).__name__, exc,
            )
        exec_s = float(doc.get("exec_s", 0.0)) if doc is not None else 0.0  # type: ignore[arg-type]
        total_instants = sum(r.instants for r in requests) or 1
        for request in requests:
            if entry is not None:
                entry.pending -= 1
            seconds = now - request.enqueued_at
            self._h_latency.observe(seconds)
            if app is not None:
                self.registry.histogram(
                    "serve_step_latency_s", buckets=_LATENCY_BOUNDS, app=app
                ).observe(seconds)
            trace = request.trace
            if trace is not None:
                drained = request.drained_at
                if drained is None:
                    drained = now
                # spans telescope: queue-wait + restore + execute +
                # dispatch == end-to-end, the causal-DAG attribution
                # discipline applied to the serving tier
                trace.add_span("queue-wait", trace.started, drained)
                cursor = drained
                if request.restore_s > 0.0:
                    trace.add_span("restore", cursor, cursor + request.restore_s)
                    cursor += request.restore_s
                share = exec_s * request.instants / total_instants
                if share > 0.0:
                    trace.add_span("execute", cursor, min(cursor + share, now))
                    cursor = min(cursor + share, now)
                trace.add_span("dispatch", cursor, now)
                self.tracer.finish(
                    trace,
                    error=type(exc).__name__ if exc is not None else None,
                    ended=now,
                )
            if request.future.done():
                continue
            if exc is not None:
                request.future.set_exception(exc)
            else:
                payload = dict(doc)  # type: ignore[arg-type]
                if trace is not None:
                    payload["trace"] = trace.trace_id
                request.future.set_result(payload)

    def _update_gauges(self) -> None:
        live = sum(1 for e in self._sessions.values() if e.live)
        self._g_open.set(len(self._sessions))
        self._g_live.set(live)
        self._g_peak.set(self._peak_open)
        # per-app views of the same gauges (labels zeroed when the last
        # session of an app closes, so stale series never lie)
        open_by_app: Dict[str, int] = {}
        live_by_app: Dict[str, int] = {}
        for entry in self._sessions.values():
            open_by_app[entry.spec.app] = open_by_app.get(entry.spec.app, 0) + 1
            if entry.live:
                live_by_app[entry.spec.app] = (
                    live_by_app.get(entry.spec.app, 0) + 1
                )
        seen = set(open_by_app)
        for name, labels, _ in self.registry.series():
            if name in ("serve_open_sessions", "serve_live_sessions"):
                app = dict(labels).get("app")
                if app:
                    seen.add(app)
        for app in seen:
            self.registry.gauge("serve_open_sessions", app=app).set(
                open_by_app.get(app, 0)
            )
            self.registry.gauge("serve_live_sessions", app=app).set(
                live_by_app.get(app, 0)
            )
