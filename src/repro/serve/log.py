"""Structured serving-tier logging: session-scoped LoggerAdapters.

The serving layer logs little — its state lives in metrics and traces
— but when it *does* log (admission rejections, batch-tick failures,
wire-protocol garbage) the line must carry enough context to join the
rest of the observability plane: the session id (the key that joins
request traces to the PR 8 causal DAG), the app, and the trace id.

:func:`session_logger` returns a :class:`logging.LoggerAdapter` that
prefixes every message with a stable ``[sid=… app=… trace=…]`` block,
so plain-text logs stay greppable by the same keys the metrics and
trace ring use.  Handlers/levels are the caller's business — the
library never calls ``basicConfig``.
"""

from __future__ import annotations

import logging
from typing import Optional, Tuple

__all__ = ["SessionLogAdapter", "session_logger"]

#: every serving-tier logger hangs off this name.
ROOT_LOGGER = "repro.serve"


class SessionLogAdapter(logging.LoggerAdapter):
    """Prefixes messages with the session/app/trace context block."""

    def process(self, msg: str, kwargs) -> Tuple[str, dict]:
        extra = self.extra or {}
        parts = [
            f"{key}={extra[key]}"
            for key in ("sid", "app", "trace")
            if extra.get(key) is not None
        ]
        if parts:
            return f"[{' '.join(parts)}] {msg}", kwargs
        return msg, kwargs


def session_logger(
    component: str = "manager",
    sid: Optional[str] = None,
    app: Optional[str] = None,
    trace: Optional[str] = None,
) -> SessionLogAdapter:
    """A context-carrying logger for one serving-tier component.

    ``component`` names the emitting layer (``manager``, ``host``,
    ``net``); the resulting logger is ``repro.serve.<component>``, so
    operators can dial levels per layer.
    """
    return SessionLogAdapter(
        logging.getLogger(f"{ROOT_LOGGER}.{component}"),
        {"sid": sid, "app": app, "trace": trace},
    )
