"""Trace analysis, metrics and figure rendering.

* :mod:`~repro.analysis.metrics` — steps-per-bit, latency, distance
  and silence/collision audits over recorded traces.
* :mod:`~repro.analysis.complexity` — empirical-vs-closed-form step
  counts for the Section 5 slice trade-off.
* :mod:`~repro.analysis.render` — ASCII rendering of configurations
  and paths (text-mode regeneration of the paper's figures).
"""

from repro.analysis.metrics import (
    TransmissionStats,
    bit_latencies,
    collision_audit,
    silence_audit,
    transmission_stats,
)
from repro.analysis.complexity import SliceTradeoffRow, slice_tradeoff_table
from repro.analysis.render import render_configuration, render_paths
from repro.analysis.animate import animate_frames, play
from repro.analysis.svg import svg_configuration, svg_trace, write_svg
from repro.analysis.trace_io import (
    dump_trace,
    load_trace,
    trace_from_jsonl,
    trace_to_jsonl,
)

__all__ = [
    "animate_frames",
    "play",
    "svg_configuration",
    "svg_trace",
    "write_svg",
    "dump_trace",
    "load_trace",
    "trace_to_jsonl",
    "trace_from_jsonl",
    "TransmissionStats",
    "transmission_stats",
    "bit_latencies",
    "silence_audit",
    "collision_audit",
    "SliceTradeoffRow",
    "slice_tradeoff_table",
    "render_configuration",
    "render_paths",
]
