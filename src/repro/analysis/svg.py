"""SVG rendering of configurations and traces (dependency-free).

Generates standalone ``.svg`` documents for the paper's figures:
robot positions, granular discs with their sliced diameters, and full
movement trajectories.  Pure string assembly — no plotting library.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry.granular import Granular
from repro.geometry.vec import Vec2
from repro.model.trace import Trace

__all__ = ["svg_configuration", "svg_trace", "write_svg"]

_PALETTE = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
    "#8c564b", "#e377c2", "#17becf", "#bcbd22", "#7f7f7f",
]


class _Canvas:
    """Maps world coordinates onto an SVG viewport (y flipped)."""

    def __init__(self, points: Sequence[Vec2], size: int, margin: float) -> None:
        min_x = min(p.x for p in points) - margin
        max_x = max(p.x for p in points) + margin
        min_y = min(p.y for p in points) - margin
        max_y = max(p.y for p in points) + margin
        span = max(max_x - min_x, max_y - min_y, 1e-9)
        self.size = size
        self._scale = size / span
        self._min_x = min_x
        self._max_y = max_y
        self.elements: List[str] = []

    def project(self, p: Vec2) -> Tuple[float, float]:
        return ((p.x - self._min_x) * self._scale, (self._max_y - p.y) * self._scale)

    def circle(self, center: Vec2, world_radius: float, stroke: str,
               fill: str = "none", width: float = 1.0, dash: str = "") -> None:
        cx, cy = self.project(center)
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self.elements.append(
            f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="{world_radius * self._scale:.2f}" '
            f'stroke="{stroke}" fill="{fill}" stroke-width="{width}"{dash_attr}/>'
        )

    def dot(self, center: Vec2, color: str, radius_px: float = 4.0) -> None:
        cx, cy = self.project(center)
        self.elements.append(
            f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="{radius_px}" fill="{color}"/>'
        )

    def line(self, a: Vec2, b: Vec2, stroke: str, width: float = 1.0, dash: str = "") -> None:
        ax, ay = self.project(a)
        bx, by = self.project(b)
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self.elements.append(
            f'<line x1="{ax:.2f}" y1="{ay:.2f}" x2="{bx:.2f}" y2="{by:.2f}" '
            f'stroke="{stroke}" stroke-width="{width}"{dash_attr}/>'
        )

    def polyline(self, points: Sequence[Vec2], stroke: str, width: float = 1.0) -> None:
        coords = " ".join(
            f"{x:.2f},{y:.2f}" for x, y in (self.project(p) for p in points)
        )
        self.elements.append(
            f'<polyline points="{coords}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width}" stroke-linejoin="round"/>'
        )

    def label(self, position: Vec2, text: str, color: str = "#333") -> None:
        x, y = self.project(position)
        self.elements.append(
            f'<text x="{x + 6:.2f}" y="{y - 6:.2f}" font-size="12" '
            f'font-family="monospace" fill="{color}">{text}</text>'
        )

    def document(self) -> str:
        body = "\n  ".join(self.elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.size}" '
            f'height="{self.size}" viewBox="0 0 {self.size} {self.size}">\n'
            f'  <rect width="100%" height="100%" fill="white"/>\n'
            f"  {body}\n</svg>\n"
        )


def svg_configuration(
    positions: Sequence[Vec2],
    granulars: Optional[Dict[int, Granular]] = None,
    labels: Optional[Dict[int, str]] = None,
    size: int = 640,
    margin: float = 2.0,
) -> str:
    """Render a configuration — optionally with sliced granulars.

    With granulars supplied, each disc is drawn with its labelled
    diameters, reproducing the visual language of the paper's Figures
    2 and 6.
    """
    if not positions:
        raise ValueError("cannot render an empty configuration")
    canvas = _Canvas(positions, size, margin)
    if granulars:
        for index, granular in granulars.items():
            color = _PALETTE[index % len(_PALETTE)]
            canvas.circle(granular.center, granular.radius, stroke=color, dash="4 3")
            for d in range(granular.num_diameters):
                direction = granular.diameter_direction(d)
                canvas.line(
                    granular.center - direction * granular.radius,
                    granular.center + direction * granular.radius,
                    stroke=color,
                    width=0.5,
                    dash="2 3",
                )
    for index, position in enumerate(positions):
        color = _PALETTE[index % len(_PALETTE)]
        canvas.dot(position, color)
        text = labels.get(index, str(index)) if labels else str(index)
        canvas.label(position, text)
    return canvas.document()


def svg_trace(
    trace: Trace,
    robots: Optional[Sequence[int]] = None,
    size: int = 640,
    margin: float = 1.0,
) -> str:
    """Render robot trajectories from a trace (Figure 1/5 style)."""
    indices = list(robots) if robots is not None else list(range(trace.count))
    all_points: List[Vec2] = []
    for index in indices:
        all_points.extend(trace.path_of(index))
    if not all_points:
        raise ValueError("cannot render an empty trace")
    canvas = _Canvas(all_points, size, margin)
    for index in indices:
        color = _PALETTE[index % len(_PALETTE)]
        path = trace.path_of(index)
        canvas.polyline(path, stroke=color, width=1.2)
        canvas.dot(path[0], color, radius_px=3.0)
        canvas.dot(path[-1], color, radius_px=5.0)
        canvas.label(path[-1], f"r{index}", color=color)
    return canvas.document()


def write_svg(document: str, path: str) -> str:
    """Write an SVG document to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(document)
    return path
