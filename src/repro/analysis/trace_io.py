"""Trace serialization — save and reload run histories.

Traces are the raw material of every analysis; persisting them lets
expensive runs (large swarms, long asynchronous executions) be recorded
once and examined repeatedly.  Format: JSON-lines — one header line,
then one line per instant — chosen for streamability and diff-ability.
"""

from __future__ import annotations

import json
from typing import List

from repro.errors import ReproError
from repro.geometry.vec import Vec2
from repro.model.trace import Trace, TraceStep

__all__ = ["dump_trace", "load_trace", "trace_to_jsonl", "trace_from_jsonl"]

_FORMAT = "repro-trace-v1"


def trace_to_jsonl(trace: Trace) -> str:
    """Serialise a trace to JSON-lines text."""
    lines: List[str] = [
        json.dumps(
            {
                "format": _FORMAT,
                "count": trace.count,
                "initial": [[p.x, p.y] for p in trace.initial_positions],
            }
        )
    ]
    for step in trace.steps:
        lines.append(
            json.dumps(
                {
                    "t": step.time,
                    "active": sorted(step.active),
                    "positions": [[p.x, p.y] for p in step.positions],
                }
            )
        )
    return "\n".join(lines) + "\n"


def trace_from_jsonl(text: str) -> Trace:
    """Parse a trace back from JSON-lines text.

    Raises:
        ReproError: on a wrong header, robot-count mismatch, or
            non-contiguous instants.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ReproError("empty trace document")
    header = json.loads(lines[0])
    if header.get("format") != _FORMAT:
        raise ReproError(f"unknown trace format {header.get('format')!r}")
    count = header["count"]
    initial = tuple(Vec2(x, y) for x, y in header["initial"])
    if len(initial) != count:
        raise ReproError("initial-position count does not match the header")

    trace = Trace(initial_positions=initial)
    for expected_time, line in enumerate(lines[1:]):
        record = json.loads(line)
        if record["t"] != expected_time:
            raise ReproError(
                f"non-contiguous instants: expected t={expected_time}, got {record['t']}"
            )
        positions = tuple(Vec2(x, y) for x, y in record["positions"])
        if len(positions) != count:
            raise ReproError(f"step t={record['t']} has {len(positions)} positions")
        trace.steps.append(
            TraceStep(
                time=record["t"],
                active=frozenset(record["active"]),
                positions=positions,
            )
        )
    return trace


def dump_trace(trace: Trace, path: str) -> str:
    """Write a trace to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(trace_to_jsonl(trace))
    return path


def load_trace(path: str) -> Trace:
    """Read a trace previously written by :func:`dump_trace`."""
    with open(path, encoding="utf-8") as handle:
        return trace_from_jsonl(handle.read())
