"""Trace serialization — save and reload run histories.

Traces are the raw material of every analysis; persisting them lets
expensive runs (large swarms, long asynchronous executions) be recorded
once and examined repeatedly.  Format: JSON-lines — one header line,
then one line per instant — chosen for streamability and diff-ability.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.errors import TraceFormatError
from repro.geometry.vec import Vec2
from repro.model.trace import Trace, TraceStep

__all__ = ["dump_trace", "load_trace", "trace_to_jsonl", "trace_from_jsonl"]

_FORMAT = "repro-trace-v1"


def _parse_line(line: str, number: int) -> Dict:
    """One JSONL record, or a :class:`TraceFormatError` naming the line.

    ``number`` is 1-based, matching what an editor displays — a
    truncated or hand-mangled dump should be findable by eye.
    """
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(
            f"line {number}: garbled JSON ({exc.msg} at column {exc.colno}); "
            f"the trace file is corrupt or was truncated mid-line"
        ) from exc
    if not isinstance(record, dict):
        raise TraceFormatError(
            f"line {number}: expected a JSON object, got {type(record).__name__}"
        )
    return record


def trace_to_jsonl(trace: Trace) -> str:
    """Serialise a trace to JSON-lines text."""
    lines: List[str] = [
        json.dumps(
            {
                "format": _FORMAT,
                "count": trace.count,
                "initial": [[p.x, p.y] for p in trace.initial_positions],
            }
        )
    ]
    for step in trace.steps:
        lines.append(
            json.dumps(
                {
                    "t": step.time,
                    "active": sorted(step.active),
                    "positions": [[p.x, p.y] for p in step.positions],
                }
            )
        )
    return "\n".join(lines) + "\n"


def trace_from_jsonl(text: str) -> Trace:
    """Parse a trace back from JSON-lines text.

    Raises:
        TraceFormatError: on an empty document, garbled or truncated
            JSON, a wrong header, missing keys, robot-count mismatch,
            or non-contiguous instants — always naming the 1-based
            line the problem was found on.
    """
    numbered = [
        (i, line) for i, line in enumerate(text.splitlines(), start=1)
        if line.strip()
    ]
    if not numbered:
        raise TraceFormatError("empty trace document")
    header_no, header_line = numbered[0]
    header = _parse_line(header_line, header_no)
    if header.get("format") != _FORMAT:
        raise TraceFormatError(
            f"line {header_no}: unknown trace format {header.get('format')!r} "
            f"(expected {_FORMAT!r})"
        )
    try:
        count = header["count"]
        initial = tuple(Vec2(x, y) for x, y in header["initial"])
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(
            f"line {header_no}: malformed trace header ({exc!r})"
        ) from exc
    if len(initial) != count:
        raise TraceFormatError(
            f"line {header_no}: initial-position count does not match the header"
        )

    trace = Trace(initial_positions=initial)
    for expected_time, (number, line) in enumerate(numbered[1:]):
        record = _parse_line(line, number)
        try:
            time = record["t"]
            active = frozenset(record["active"])
            positions = tuple(Vec2(x, y) for x, y in record["positions"])
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceFormatError(
                f"line {number}: malformed step record ({exc!r})"
            ) from exc
        if time != expected_time:
            raise TraceFormatError(
                f"line {number}: non-contiguous instants: expected "
                f"t={expected_time}, got {time} (truncated or spliced trace?)"
            )
        if len(positions) != count:
            raise TraceFormatError(
                f"line {number}: step t={time} has {len(positions)} positions, "
                f"header declared {count} robots"
            )
        trace.steps.append(
            TraceStep(time=time, active=active, positions=positions)
        )
    return trace


def dump_trace(trace: Trace, path: str) -> str:
    """Write a trace to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(trace_to_jsonl(trace))
    return path


def load_trace(path: str) -> Trace:
    """Read a trace previously written by :func:`dump_trace`."""
    with open(path, encoding="utf-8") as handle:
        return trace_from_jsonl(handle.read())
