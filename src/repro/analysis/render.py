"""ASCII rendering of configurations and robot paths.

The paper's figures are geometric diagrams; these helpers regenerate
them as terminal text so the examples and benchmarks can *show* the
scenarios without a plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry.vec import Vec2
from repro.model.trace import Trace

__all__ = ["render_configuration", "render_paths"]


def _bounds(points: Sequence[Vec2], margin: float) -> Tuple[float, float, float, float]:
    min_x = min(p.x for p in points) - margin
    max_x = max(p.x for p in points) + margin
    min_y = min(p.y for p in points) - margin
    max_y = max(p.y for p in points) + margin
    if max_x - min_x <= 0.0:
        max_x = min_x + 1.0
    if max_y - min_y <= 0.0:
        max_y = min_y + 1.0
    return min_x, max_x, min_y, max_y


def _plot(
    grid: List[List[str]],
    point: Vec2,
    glyph: str,
    bounds: Tuple[float, float, float, float],
    width: int,
    height: int,
) -> None:
    min_x, max_x, min_y, max_y = bounds
    col = int((point.x - min_x) / (max_x - min_x) * (width - 1))
    row = int((max_y - point.y) / (max_y - min_y) * (height - 1))
    if 0 <= row < height and 0 <= col < width:
        grid[row][col] = glyph


def render_configuration(
    points: Sequence[Vec2],
    labels: Optional[Dict[int, str]] = None,
    width: int = 60,
    height: int = 24,
    margin: float = 1.0,
) -> str:
    """Render a configuration as an ASCII scene.

    Args:
        points: robot positions.
        labels: optional per-index glyph (first character used);
            defaults to the index in base 36.
        width, height: character-grid dimensions.
        margin: world-units padding around the bounding box.
    """
    if not points:
        return "(empty configuration)"
    bounds = _bounds(points, margin)
    grid = [[" "] * width for _ in range(height)]
    for index, point in enumerate(points):
        if labels and index in labels:
            glyph = labels[index][:1] or "?"
        else:
            glyph = _base36(index)
        _plot(grid, point, glyph, bounds, width, height)
    return "\n".join("".join(row).rstrip() for row in grid)


def render_paths(
    trace: Trace,
    robots: Optional[Sequence[int]] = None,
    width: int = 72,
    height: int = 28,
    margin: float = 0.5,
) -> str:
    """Render robot trajectories from a trace.

    Waypoints are drawn with ``.`` and final positions with the robot
    index, so excursion shapes (the side-steps of Figure 1, the
    perpendicular legs of Figure 5) are visible in a terminal.
    """
    indices = list(robots) if robots is not None else list(range(trace.count))
    all_points: List[Vec2] = []
    for index in indices:
        all_points.extend(trace.path_of(index))
    if not all_points:
        return "(empty trace)"
    bounds = _bounds(all_points, margin)
    grid = [[" "] * width for _ in range(height)]
    for index in indices:
        path = trace.path_of(index)
        for point in path[:-1]:
            _plot(grid, point, ".", bounds, width, height)
    for index in indices:
        path = trace.path_of(index)
        _plot(grid, path[0], "o", bounds, width, height)
        _plot(grid, path[-1], _base36(index), bounds, width, height)
    return "\n".join("".join(row).rstrip() for row in grid)


def _base36(value: int) -> str:
    digits = "0123456789abcdefghijklmnopqrstuvwxyz"
    return digits[value % len(digits)]
