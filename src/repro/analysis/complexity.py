"""The Section 5 slice/step trade-off, tabulated.

Combines the closed-form step models of
:mod:`repro.coding.logk_addressing` into the table the C2 benchmark
prints: for each swarm size ``n`` and digit base ``k``, the instants
needed per 1-bit message under the full ``2n``-slice scheme versus the
``2k+1``-slice scheme, the measured slowdown, and the paper's
asymptotic reference ``log n / log log n`` for ``k = O(log n)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.coding.logk_addressing import (
    address_digit_count,
    steps_per_message_full_slicing,
    steps_per_message_logk,
    theoretical_slowdown_logslices,
)

__all__ = ["SliceTradeoffRow", "slice_tradeoff_table", "log_slice_choice"]


@dataclass(frozen=True)
class SliceTradeoffRow:
    """One (n, k) cell of the trade-off table.

    Attributes:
        n: swarm size.
        k: digit base (the scheme uses ``k + 1`` diameters).
        digits: address digits per message, ``ceil(log_k n)``.
        steps_full: instants per 1-bit message, ``2n``-slice scheme.
        steps_logk: instants per 1-bit message, ``2k+1``-slice scheme.
        slowdown: ``steps_logk / steps_full``.
        reference: the paper's ``log n / log log n`` yardstick.
    """

    n: int
    k: int
    digits: int
    steps_full: int
    steps_logk: int
    slowdown: float
    reference: float


def log_slice_choice(n: int) -> int:
    """The paper's suggested base: ``k = O(log n)`` (at least 2)."""
    return max(2, round(math.log2(n)))


def slice_tradeoff_table(
    sizes: Sequence[int],
    bases: Sequence[int] = (),
    payload_bits: int = 1,
) -> List[SliceTradeoffRow]:
    """Build the trade-off table.

    Args:
        sizes: swarm sizes ``n`` (each >= 4 for the reference column).
        bases: digit bases to evaluate; empty means "the paper's
            ``k = O(log n)`` choice per size".
        payload_bits: message length in bits.
    """
    rows: List[SliceTradeoffRow] = []
    for n in sizes:
        for k in bases or (log_slice_choice(n),):
            steps_full = steps_per_message_full_slicing(payload_bits)
            steps_logk = steps_per_message_logk(payload_bits, n, k)
            rows.append(
                SliceTradeoffRow(
                    n=n,
                    k=k,
                    digits=address_digit_count(n, k),
                    steps_full=steps_full,
                    steps_logk=steps_logk,
                    slowdown=steps_logk / steps_full,
                    reference=theoretical_slowdown_logslices(n) if n >= 4 else float("nan"),
                )
            )
    return rows
