"""Metrics over protocol runs.

Everything here is computed from the two run artefacts: the
:class:`~repro.model.trace.Trace` (who moved where, when) and the
protocols' :class:`~repro.model.protocol.BitEvent` logs (what was
decoded, when).  The audits encode the paper's qualitative properties
— silence (Section 3 / Section 5 discussion) and collision avoidance
(the Voronoi confinement of Section 3.2) — as checkable predicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.model.protocol import BitEvent
from repro.model.trace import Trace

__all__ = [
    "TransmissionStats",
    "transmission_stats",
    "bit_latencies",
    "silence_audit",
    "collision_audit",
]


@dataclass(frozen=True)
class TransmissionStats:
    """Aggregate cost of a communication run.

    Attributes:
        bits_delivered: bits decoded by their addressees.
        steps: simulated instants.
        steps_per_bit: ``steps / bits`` (inf when no bit landed).
        total_distance: world distance covered by all robots.
        distance_per_bit: movement cost per delivered bit.
        activations: total robot activations.
    """

    bits_delivered: int
    steps: int
    steps_per_bit: float
    total_distance: float
    distance_per_bit: float
    activations: int


def transmission_stats(trace: Trace, delivered: Sequence[BitEvent]) -> TransmissionStats:
    """Summarise a run from its trace and delivered-bit events."""
    bits = len(delivered)
    steps = len(trace)
    total_distance = sum(trace.distance_travelled(i) for i in range(trace.count))
    activations = sum(len(step.active) for step in trace.steps)
    return TransmissionStats(
        bits_delivered=bits,
        steps=steps,
        steps_per_bit=(steps / bits) if bits else float("inf"),
        total_distance=total_distance,
        distance_per_bit=(total_distance / bits) if bits else float("inf"),
        activations=activations,
    )


def bit_latencies(
    submissions: Sequence[Tuple[int, int, int]],
    delivered: Sequence[BitEvent],
) -> List[int]:
    """Per-bit latency in instants.

    Args:
        submissions: ``(time_queued, src, dst)`` per bit, in queueing
            order per (src, dst) stream.
        delivered: the receivers' decoded events (FIFO per stream).

    Matches the i-th submission of each (src, dst) stream with the i-th
    delivery of the same stream and returns the time differences.
    """
    by_stream: Dict[Tuple[int, int], List[int]] = {}
    for event in delivered:
        by_stream.setdefault((event.src, event.dst), []).append(event.time)
    cursor: Dict[Tuple[int, int], int] = {}
    latencies: List[int] = []
    for queued_at, src, dst in submissions:
        stream = (src, dst)
        position = cursor.get(stream, 0)
        deliveries = by_stream.get(stream, [])
        if position < len(deliveries):
            latencies.append(deliveries[position] - queued_at)
            cursor[stream] = position + 1
    return latencies


def silence_audit(trace: Trace, idle_robots: Sequence[int]) -> List[int]:
    """Robots among ``idle_robots`` that moved anyway.

    The synchronous protocols are *silent*: "a robot eventually moves
    [only] if it has some message to transmit".  An idle robot showing
    up in the returned list falsifies that property.
    """
    return [index for index in idle_robots if trace.movements_of(index)]


def collision_audit(trace: Trace) -> float:
    """The minimum pairwise distance over the whole run.

    Section 3.2's Voronoi confinement promises this stays positive;
    granular-based runs should in fact keep it near the initial
    nearest-neighbour distance (robots never leave their half of the
    gap).
    """
    return trace.min_pairwise_distance()
