"""Terminal animation of traces.

Renders a trace as a list of fixed-viewport ASCII frames (so playback
does not jitter) for quick visual inspection of protocol runs without
any graphics stack.  :func:`play` prints them with ANSI home-cursor
control for an in-terminal movie.
"""

from __future__ import annotations

import sys
import time as _time
from typing import List, Tuple

from repro.geometry.vec import Vec2
from repro.model.trace import Trace

__all__ = ["animate_frames", "play"]


def _global_bounds(trace: Trace, margin: float) -> Tuple[float, float, float, float]:
    points: List[Vec2] = []
    for index in range(trace.count):
        points.extend(trace.path_of(index))
    min_x = min(p.x for p in points) - margin
    max_x = max(p.x for p in points) + margin
    min_y = min(p.y for p in points) - margin
    max_y = max(p.y for p in points) + margin
    if max_x - min_x <= 0.0:
        max_x = min_x + 1.0
    if max_y - min_y <= 0.0:
        max_y = min_y + 1.0
    return min_x, max_x, min_y, max_y


def animate_frames(
    trace: Trace,
    width: int = 64,
    height: int = 22,
    every: int = 1,
    margin: float = 0.5,
    trails: bool = True,
) -> List[str]:
    """Render a trace as ASCII frames with a shared viewport.

    Args:
        trace: the run to animate.
        width, height: character-grid dimensions.
        every: render one frame per ``every`` instants.
        margin: world-units padding around the global bounding box.
        trails: draw ``.`` at previously visited positions.

    Returns:
        One string per rendered frame, each headed by a time caption.
    """
    if every < 1:
        raise ValueError(f"every must be >= 1, got {every}")
    bounds = _global_bounds(trace, margin)
    min_x, max_x, min_y, max_y = bounds

    def plot(grid: List[List[str]], p: Vec2, glyph: str) -> None:
        col = int((p.x - min_x) / (max_x - min_x) * (width - 1))
        row = int((max_y - p.y) / (max_y - min_y) * (height - 1))
        if 0 <= row < height and 0 <= col < width:
            grid[row][col] = glyph

    glyphs = "0123456789abcdefghijklmnopqrstuvwxyz"
    frames: List[str] = []
    visited: List[Vec2] = []
    for t in range(0, len(trace) + 1, every):
        grid = [[" "] * width for _ in range(height)]
        if trails:
            for p in visited:
                plot(grid, p, ".")
        positions = trace.positions_at(t)
        for index, p in enumerate(positions):
            plot(grid, p, glyphs[index % len(glyphs)])
        caption = f"t={t}/{len(trace)}"
        frames.append(caption + "\n" + "\n".join("".join(row).rstrip() for row in grid))
        if trails:
            visited.extend(positions)
    return frames


def play(
    trace: Trace,
    delay: float = 0.08,
    every: int = 1,
    width: int = 64,
    height: int = 22,
    stream=None,
) -> int:
    """Print the animation to a terminal; returns the frame count.

    Uses ANSI cursor-home between frames.  Pass a ``stream`` (e.g. a
    StringIO) to capture instead of animating.
    """
    out = stream if stream is not None else sys.stdout
    frames = animate_frames(trace, width=width, height=height, every=every)
    for i, frame in enumerate(frames):
        if stream is None and i:
            out.write("\x1b[H\x1b[J")
        out.write(frame + "\n")
        out.flush()
        if stream is None and delay > 0:
            _time.sleep(delay)
    return len(frames)
