"""Request/reply over movement messages.

The smallest client/server interaction: a requester sends ``PING`` +
payload, the responder answers ``PONG`` + the same payload.  Measures
the full round-trip in simulated instants — the movement channel's
analogue of network RTT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.apps.harness import SwarmHarness, ring_positions
from repro.errors import ProtocolError
from repro.geometry.vec import Vec2
from repro.model.scheduler import Scheduler
from repro.protocols.sync_granular import NamingMode, SyncGranularProtocol

__all__ = ["EchoResult", "ping"]


@dataclass(frozen=True)
class EchoResult:
    """Outcome of one echo exchange.

    Attributes:
        reply: the payload echoed back.
        round_trip_steps: instants from the request being queued to the
            reply completing.
        request_delivered_at: instant the responder finished decoding
            the request.
    """

    reply: bytes
    round_trip_steps: int
    request_delivered_at: int


def ping(
    requester: int = 0,
    responder: int = 1,
    payload: bytes = b"hello",
    positions: Optional[Sequence[Vec2]] = None,
    naming: NamingMode = "identified",
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 20_000,
) -> EchoResult:
    """Run one ping/pong exchange between two robots of a swarm.

    Raises:
        ProtocolError: on timeout or a corrupted echo (either would
            falsify the protocol's delivery guarantees).
    """
    if positions is None:
        positions = ring_positions(4, radius=8.0, jitter=0.04)
    n = len(positions)
    if requester == responder or not (0 <= requester < n) or not (0 <= responder < n):
        raise ProtocolError(
            f"invalid endpoints requester={requester} responder={responder} for n={n}"
        )

    harness = SwarmHarness(
        positions,
        protocol_factory=lambda: SyncGranularProtocol(naming=naming),
        scheduler=scheduler,
        identified=(naming == "identified"),
    )
    harness.channel(requester).send(responder, b"PING" + payload)

    state = {"request_at": None}

    def serve_and_check(h: SwarmHarness) -> bool:
        if state["request_at"] is None:
            for message in h.channel(responder).inbox:
                if message.src == requester and message.payload.startswith(b"PING"):
                    state["request_at"] = message.completed_at
                    h.channel(responder).send(requester, b"PONG" + message.payload[4:])
                    break
        for message in h.channel(requester).inbox:
            if message.src == responder and message.payload.startswith(b"PONG"):
                return True
        return False

    if not harness.pump(serve_and_check, max_steps=max_steps):
        raise ProtocolError(f"echo did not complete within {max_steps} steps")

    reply = next(
        m
        for m in harness.channel(requester).inbox
        if m.src == responder and m.payload.startswith(b"PONG")
    )
    echoed = reply.payload[4:]
    if echoed != payload:
        raise ProtocolError(f"echo corrupted: sent {payload!r}, got {echoed!r}")
    assert state["request_at"] is not None
    return EchoResult(
        reply=echoed,
        round_trip_steps=reply.completed_at,
        request_delivered_at=state["request_at"],
    )
