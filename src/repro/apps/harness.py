"""A convenience harness: swarm + protocols + channels in one object.

Applications and examples all need the same scaffolding — place robots,
pick a protocol family and scheduler, wire a
:class:`~repro.channels.transport.MovementChannel` per robot, and pump
the simulation until some condition holds.  :class:`SwarmHarness`
packages that, with sensible defaults (identified synchronous swarm).
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence

from repro.batch import make_simulator
from repro.channels.mailbox import OverhearingMonitor
from repro.channels.transport import MovementChannel
from repro.errors import ModelError
from repro.geometry.frames import Frame, FrameRegime, make_frames
from repro.geometry.vec import Vec2
from repro.model.protocol import Protocol
from repro.model.robot import Robot
from repro.model.scheduler import Scheduler
from repro.model.trace import TracePolicy

__all__ = ["SwarmHarness", "ring_positions"]


def ring_positions(count: int, radius: float = 10.0, jitter: float = 0.0) -> List[Vec2]:
    """``count`` positions spread on a circle (slightly irregular).

    A small deterministic angular jitter (scaled by ``jitter``) breaks
    the rotational symmetry that would defeat common naming.
    """
    if count < 1:
        raise ModelError(f"count must be >= 1, got {count}")
    positions: List[Vec2] = []
    for i in range(count):
        angle = 2.0 * math.pi * i / count + jitter * math.sin(7.0 * (i + 1))
        positions.append(Vec2.from_polar(radius, angle))
    return positions


class SwarmHarness:
    """A ready-to-run swarm with one message channel per robot.

    Args:
        positions: initial world positions (pairwise distinct).
        protocol_factory: called once per robot to create its protocol
            instance.
        scheduler: activation policy (default: synchronous).
        identified: when True every robot gets ``observable_id = i``.
        frame_regime: local-frame capability regime (see
            :func:`repro.geometry.frames.make_frames`).
        sigma: per-activation movement bound (world units), same for
            all robots by default.
        frame_seed: seed for the frame generator.
        caching: forwarded to the simulator (hot-path caches; results
            are identical either way).
        trace_policy: forwarded to the simulator (trace memory bound).
        backend: simulator backend — ``"scalar"`` (default) or
            ``"batch"`` (the vectorized engine of :mod:`repro.batch`;
            degrades gracefully to scalar when numpy is absent).  The
            backends are trace-equivalent, so everything built on the
            harness behaves identically either way.
        engine: ``"rounds"`` (default, instant-stepped) or ``"events"``
            (the event-queue engine of :mod:`repro.events`).  With the
            default round-emulation timing the engines are
            byte-identical; pass ``timing``/``delay`` for continuous
            time and observation delays.
        timing / delay: event-engine knobs (a
            :class:`~repro.events.timing.TimingModel` and a
            :class:`~repro.events.delay.DelayModel`); only valid with
            ``engine="events"``.
    """

    def __init__(
        self,
        positions: Sequence[Vec2],
        protocol_factory: Callable[[], Protocol],
        scheduler: Optional[Scheduler] = None,
        identified: bool = True,
        frame_regime: FrameRegime = "sense_of_direction",
        sigma: float = 2.0,
        frame_seed: int = 0,
        caching: bool = True,
        trace_policy: Optional["TracePolicy"] = None,
        backend: str = "scalar",
        engine: str = "rounds",
        timing=None,
        delay=None,
    ) -> None:
        frames: List[Frame] = make_frames(len(positions), frame_regime, seed=frame_seed)
        self.robots = [
            Robot(
                position=p,
                protocol=protocol_factory(),
                frame=frames[i],
                sigma=sigma,
                observable_id=i if identified else None,
            )
            for i, p in enumerate(positions)
        ]
        kwargs = {}
        if engine != "rounds" or timing is not None or delay is not None:
            kwargs.update(engine=engine, timing=timing, delay=delay)
        self.simulator = make_simulator(
            self.robots,
            scheduler,
            backend=backend,
            caching=caching,
            trace_policy=trace_policy,
            **kwargs,
        )
        # Channels and monitors wrap the *simulator's* protocol surface,
        # not robot.protocol: the batch engine's kernel mode serves bit
        # streams through per-robot views instead of the bound objects.
        self.channels = [
            MovementChannel(self.simulator.protocol_of(i))
            for i in range(len(self.robots))
        ]
        self.monitors = [
            OverhearingMonitor(self.simulator.protocol_of(i))
            for i in range(len(self.robots))
        ]

    @property
    def count(self) -> int:
        """Number of robots."""
        return self.simulator.count

    def channel(self, index: int) -> MovementChannel:
        """The message channel of one robot."""
        return self.channels[index]

    def pump(
        self,
        done: Callable[["SwarmHarness"], bool],
        max_steps: int = 10_000,
    ) -> bool:
        """Step the simulation until ``done(self)`` or ``max_steps``.

        Channels are polled after every step so ``done`` can inspect
        inboxes.  Returns True when the condition was met.
        """
        if done(self):
            return True
        for _ in range(max_steps):
            self.simulator.step()
            for channel in self.channels:
                channel.poll()
            if done(self):
                return True
        return False

    def run(self, steps: int) -> None:
        """Advance a fixed number of instants, polling channels."""
        for _ in range(steps):
            self.simulator.step()
            for channel in self.channels:
                channel.poll()
