"""Convergecast: aggregating sensor values to a sink robot.

The canonical swarm task the introduction motivates ("measure
properties, collect information"): every robot holds a private sensor
reading; the sink must learn an aggregate (sum, max, min) of all of
them.  Two regimes:

* **full visibility** — every robot reports directly to the sink over
  its movement channel; one message per robot;
* **limited visibility** — reports travel over the flooding relay of
  :mod:`repro.visibility`; the sink aggregates whatever arrives, and
  the run completes when all ``n - 1`` readings are in.

Readings travel as 4-byte big-endian signed integers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from repro.apps.harness import SwarmHarness, ring_positions
from repro.channels.transport import MovementChannel
from repro.errors import ProtocolError
from repro.geometry.vec import Vec2
from repro.model.robot import Robot
from repro.protocols.sync_granular import SyncGranularProtocol
from repro.visibility.flooding import FloodRouter
from repro.visibility.protocol import LocalGranularProtocol
from repro.visibility.simulator import VisibilitySimulator

__all__ = ["AggregationResult", "converge_cast", "converge_cast_limited_visibility"]

_VALUE_BYTES = 4
AGGREGATES: Dict[str, Callable[[Sequence[int]], int]] = {
    "sum": lambda values: sum(values),
    "max": lambda values: max(values),
    "min": lambda values: min(values),
}


@dataclass(frozen=True)
class AggregationResult:
    """Outcome of a convergecast.

    Attributes:
        aggregate: the computed aggregate at the sink.
        readings: per-robot values the sink collected (sink included).
        steps: simulated instants consumed.
        messages: reports the sink received.
    """

    aggregate: int
    readings: Dict[int, int]
    steps: int
    messages: int


def _encode(value: int) -> bytes:
    return int(value).to_bytes(_VALUE_BYTES, "big", signed=True)


def _decode(blob: bytes) -> int:
    if len(blob) != _VALUE_BYTES:
        raise ProtocolError(f"malformed sensor report of {len(blob)} bytes")
    return int.from_bytes(blob, "big", signed=True)


def converge_cast(
    readings: Sequence[int],
    sink: int = 0,
    operation: str = "sum",
    positions: Optional[Sequence[Vec2]] = None,
    max_steps: int = 20_000,
) -> AggregationResult:
    """Aggregate readings at a sink under full visibility.

    Args:
        readings: one integer per robot.
        sink: the collector's tracking index.
        operation: ``"sum"``, ``"max"`` or ``"min"``.
        positions: robot layout (default: a ring).
        max_steps: abort bound.

    Raises:
        ProtocolError: on an unknown operation or a timeout.
    """
    if operation not in AGGREGATES:
        raise ProtocolError(f"unknown aggregate {operation!r}; pick from {sorted(AGGREGATES)}")
    n = len(readings)
    if positions is None:
        positions = ring_positions(n, radius=10.0, jitter=0.06)
    if not (0 <= sink < n):
        raise ProtocolError(f"sink {sink} out of range for {n} robots")

    harness = SwarmHarness(
        positions, protocol_factory=lambda: SyncGranularProtocol(), sigma=4.0
    )
    for i in range(n):
        if i != sink:
            harness.channel(i).send(sink, _encode(readings[i]))

    if not harness.pump(
        lambda h: len(h.channel(sink).inbox) >= n - 1, max_steps=max_steps
    ):
        raise ProtocolError(f"convergecast incomplete after {max_steps} steps")

    collected = {sink: readings[sink]}
    for message in harness.channel(sink).inbox:
        collected[message.src] = _decode(message.payload)
    return AggregationResult(
        aggregate=AGGREGATES[operation](list(collected.values())),
        readings=collected,
        steps=harness.simulator.time,
        messages=n - 1,
    )


def converge_cast_limited_visibility(
    readings: Sequence[int],
    visibility_radius: float,
    sink: int = 0,
    operation: str = "sum",
    positions: Optional[Sequence[Vec2]] = None,
    max_steps: int = 60_000,
) -> AggregationResult:
    """Aggregate readings at a sink over a multi-hop relay network.

    Robots only see within ``visibility_radius``; reports are flooded
    over the visibility graph (which must connect everyone to the
    sink).
    """
    if operation not in AGGREGATES:
        raise ProtocolError(f"unknown aggregate {operation!r}; pick from {sorted(AGGREGATES)}")
    n = len(readings)
    if positions is None:
        positions = [Vec2(10.0 * i, 0.0) for i in range(n)]
    if not (0 <= sink < n):
        raise ProtocolError(f"sink {sink} out of range for {n} robots")

    robots = [
        Robot(
            position=p,
            protocol=LocalGranularProtocol(),
            sigma=4.0,
            observable_id=i,
        )
        for i, p in enumerate(positions)
    ]
    simulator = VisibilitySimulator(robots, visibility_radius=visibility_radius)
    routers = [FloodRouter(MovementChannel(r.protocol)) for r in robots]

    for i in range(n):
        if i != sink:
            routers[i].send(sink, _encode(readings[i]))

    for _ in range(max_steps):
        simulator.step()
        for router in routers:
            router.pump(simulator.time)
        if len(routers[sink].inbox) >= n - 1:
            break
    else:
        raise ProtocolError(
            f"relay convergecast incomplete after {max_steps} steps "
            f"({len(routers[sink].inbox)}/{n - 1} reports)"
        )

    collected = {sink: readings[sink]}
    for message in routers[sink].inbox:
        collected[message.origin] = _decode(message.payload)
    return AggregationResult(
        aggregate=AGGREGATES[operation](list(collected.values())),
        readings=collected,
        steps=simulator.time,
        messages=len(routers[sink].inbox),
    )
