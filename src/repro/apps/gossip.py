"""Rumor spreading — addressed fan-out vs overhearing.

The paper points out that one-to-all communication is essentially free
on the movement medium: "every robot observes the movements of all the
robots, so every robot is able to know all the messages sent in the
system".  This app makes the comparison quantitative:

* **addressed** — the source queues one copy of the rumor per robot
  (``n - 1`` transmissions, like a unicast network would);
* **overheard** — the source sends a *single* addressed copy and every
  other robot reconstructs it from its overheard log (one
  transmission).

Both spread the rumor to everyone; the overheard variant is ``n - 1``
times cheaper in movements — broadcast is the medium's native gift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.apps.harness import SwarmHarness, ring_positions
from repro.errors import ProtocolError
from repro.geometry.vec import Vec2
from repro.protocols.sync_granular import SyncGranularProtocol

__all__ = ["GossipResult", "spread_rumor"]


@dataclass(frozen=True)
class GossipResult:
    """Outcome of a rumor spread.

    Attributes:
        informed: robots that know the rumor at the end (source
            included).
        steps: simulated instants consumed.
        transmissions: addressed message copies the source sent.
        source_moves: movements the source made.
    """

    informed: int
    steps: int
    transmissions: int
    source_moves: int


def spread_rumor(
    rumor: str,
    count: int = 6,
    source: int = 0,
    mode: str = "overheard",
    positions: Optional[Sequence[Vec2]] = None,
    max_steps: int = 60_000,
) -> GossipResult:
    """Spread a rumor from one robot to the whole swarm.

    Args:
        rumor: the text to spread.
        count: swarm size (ignored when ``positions`` is given).
        source: the informed robot's index.
        mode: ``"overheard"`` (one transmission, everyone eavesdrops)
            or ``"addressed"`` (one copy per robot).
        positions: optional explicit layout.
        max_steps: abort bound.

    Raises:
        ProtocolError: on an unknown mode or a timeout.
    """
    if mode not in ("overheard", "addressed"):
        raise ProtocolError(f"unknown gossip mode {mode!r}")
    if positions is None:
        positions = ring_positions(count, radius=10.0, jitter=0.06)
    n = len(positions)
    if not (0 <= source < n):
        raise ProtocolError(f"source {source} out of range for {n} robots")

    harness = SwarmHarness(
        positions, protocol_factory=lambda: SyncGranularProtocol(), sigma=4.0
    )
    payload = rumor.encode("utf-8")

    if mode == "addressed":
        transmissions = 0
        for dst in range(n):
            if dst != source:
                harness.channel(source).send(dst, payload)
                transmissions += 1

        def everyone_knows(h: SwarmHarness) -> bool:
            return all(
                len(h.channel(dst).inbox) >= 1 for dst in range(n) if dst != source
            )

    else:  # overheard
        transmissions = 1
        first_listener = (source + 1) % n
        harness.channel(source).send(first_listener, payload)

        def everyone_knows(h: SwarmHarness) -> bool:
            for observer in range(n):
                if observer == source:
                    continue
                if not any(
                    m.payload == payload for m in h.monitors[observer].log
                ):
                    return False
            return True

    if not harness.pump(everyone_knows, max_steps=max_steps):
        raise ProtocolError(f"rumor did not spread within {max_steps} steps")

    moves = len(harness.simulator.trace.movements_of(source))
    return GossipResult(
        informed=n,
        steps=harness.simulator.time,
        transmissions=transmissions,
        source_moves=moves,
    )
