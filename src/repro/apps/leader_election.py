"""Leader election over movement messages.

A deliberately classical algorithm — every robot announces its
identifier to every other robot; when a robot has heard from everyone
it elects the maximum identifier — run entirely over the movement
channel.  This is the paper's headline enablement: "our protocols
enable the use of distributed algorithms based on message exchanges
among swarms of stigmergic robots", here an election that stigmergy
alone cannot express.

Identifiers travel as messages (they are *data*), so the algorithm
also runs in anonymous systems if the caller supplies per-robot values
from some other source; the default uses the observable IDs of an
identified swarm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.apps.harness import SwarmHarness, ring_positions
from repro.errors import ProtocolError
from repro.geometry.vec import Vec2
from repro.model.scheduler import Scheduler
from repro.protocols.sync_granular import NamingMode, SyncGranularProtocol

__all__ = ["ElectionResult", "elect_leader"]


@dataclass(frozen=True)
class ElectionResult:
    """Outcome of a leader election.

    Attributes:
        leader: tracking index of the elected robot.
        decided_by: per-robot elected index (all equal on success).
        steps: simulated instants consumed.
        messages: total announcement messages delivered.
    """

    leader: int
    decided_by: Dict[int, int]
    steps: int
    messages: int


def elect_leader(
    positions: Optional[Sequence[Vec2]] = None,
    values: Optional[Sequence[int]] = None,
    naming: NamingMode = "identified",
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 20_000,
) -> ElectionResult:
    """Run a full leader election over movement communication.

    Args:
        positions: robot positions (default: a 6-robot ring).
        values: the per-robot values to elect over (default: the
            tracking indices, i.e. the observable IDs).
        naming: protocol naming mode.
        scheduler: activation policy (default synchronous).
        max_steps: abort bound.

    Raises:
        ProtocolError: when the election does not complete within
            ``max_steps`` or robots disagree (which would falsify the
            protocol's delivery guarantees).
    """
    if positions is None:
        positions = ring_positions(6, radius=10.0, jitter=0.05)
    n = len(positions)
    if values is None:
        values = list(range(n))
    if len(values) != n:
        raise ProtocolError(f"need one value per robot: {len(values)} values, {n} robots")

    harness = SwarmHarness(
        positions,
        protocol_factory=lambda: SyncGranularProtocol(naming=naming),
        scheduler=scheduler,
        identified=(naming == "identified"),
    )

    # Phase 1: every robot announces its value to everyone.
    for i in range(n):
        for j in range(n):
            if i != j:
                harness.channel(i).send(j, f"VAL {values[i]}".encode("utf-8"))

    def everyone_heard_everyone(h: SwarmHarness) -> bool:
        return all(len(h.channel(i).inbox) >= n - 1 for i in range(n))

    if not harness.pump(everyone_heard_everyone, max_steps=max_steps):
        raise ProtocolError(
            f"election did not complete within {max_steps} steps "
            f"(inboxes: {[len(harness.channel(i).inbox) for i in range(n)]})"
        )

    # Phase 2: local decisions.
    decided: Dict[int, int] = {}
    messages = 0
    for i in range(n):
        heard: List[int] = [values[i]]
        for message in harness.channel(i).inbox:
            text = message.text()
            if not text.startswith("VAL "):
                raise ProtocolError(f"unexpected announcement {text!r}")
            heard.append(int(text[4:]))
            messages += 1
        best = max(heard)
        decided[i] = values.index(best)

    leaders = set(decided.values())
    if len(leaders) != 1:
        raise ProtocolError(f"robots disagree on the leader: {decided}")
    return ElectionResult(
        leader=leaders.pop(),
        decided_by=decided,
        steps=harness.simulator.time,
        messages=messages,
    )
