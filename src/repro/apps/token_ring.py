"""Token circulation over movement messages.

A token (a short message carrying a hop counter) travels around the
robots in tracking-index order: robot ``i`` forwards to
``(i + 1) mod n``.  Mutual exclusion by token passing is a canonical
message-passing algorithm; here the "network" is robots wiggling in
the plane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.apps.harness import SwarmHarness, ring_positions
from repro.errors import ProtocolError
from repro.geometry.vec import Vec2
from repro.model.scheduler import Scheduler
from repro.protocols.sync_granular import NamingMode, SyncGranularProtocol

__all__ = ["TokenRingResult", "run_token_ring"]


@dataclass(frozen=True)
class TokenRingResult:
    """Outcome of a token-ring run.

    Attributes:
        hops: the sequence of robots that held the token, in order.
        laps: completed laps around the ring.
        steps: simulated instants consumed.
    """

    hops: List[int]
    laps: int
    steps: int


def run_token_ring(
    positions: Optional[Sequence[Vec2]] = None,
    laps: int = 2,
    naming: NamingMode = "identified",
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 60_000,
) -> TokenRingResult:
    """Circulate a token ``laps`` times around the swarm.

    The token starts at robot 0.  Each holder, upon receiving
    ``TOK <h>``, forwards ``TOK <h+1>`` to its successor until the hop
    counter reaches ``laps * n``.

    Raises:
        ProtocolError: when circulation stalls, or a robot receives a
            token out of order (which would falsify FIFO delivery).
    """
    if laps < 1:
        raise ProtocolError(f"laps must be >= 1, got {laps}")
    if positions is None:
        positions = ring_positions(5, radius=8.0, jitter=0.04)
    n = len(positions)
    total_hops = laps * n

    harness = SwarmHarness(
        positions,
        protocol_factory=lambda: SyncGranularProtocol(naming=naming),
        scheduler=scheduler,
        identified=(naming == "identified"),
    )

    hops: List[int] = [0]
    consumed = [0] * n  # messages already acted on, per robot

    # Robot 0 injects the token.
    harness.channel(0).send(1 % n, b"TOK 1")

    def advance(h: SwarmHarness) -> bool:
        progressed = True
        while progressed and len(hops) < total_hops:
            progressed = False
            for i in range(n):
                inbox = h.channel(i).inbox
                while consumed[i] < len(inbox):
                    message = inbox[consumed[i]]
                    consumed[i] += 1
                    text = message.text()
                    if not text.startswith("TOK "):
                        raise ProtocolError(f"unexpected token message {text!r}")
                    hop = int(text[4:])
                    if hop != len(hops):
                        raise ProtocolError(
                            f"token hop {hop} arrived out of order at robot {i} "
                            f"(expected {len(hops)})"
                        )
                    hops.append(i)
                    progressed = True
                    if len(hops) < total_hops:
                        h.channel(i).send((i + 1) % n, f"TOK {hop + 1}".encode("utf-8"))
        return len(hops) >= total_hops

    if not harness.pump(advance, max_steps=max_steps):
        raise ProtocolError(
            f"token stalled after {len(hops)}/{total_hops} hops in {max_steps} steps"
        )
    return TokenRingResult(hops=hops, laps=laps, steps=harness.simulator.time)
