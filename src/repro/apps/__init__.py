"""Demonstration applications — "enabling distributed computation".

The paper's point is that movement communication lets swarms run
*classical message-passing distributed algorithms*.  These apps do
exactly that, end to end, over the movement channels:

* :mod:`~repro.apps.leader_election` — all-to-all ID announcement,
  highest ID wins.
* :mod:`~repro.apps.token_ring` — a token circulating around the ring
  of robots.
* :mod:`~repro.apps.echo` — request/reply (ping-pong) with round-trip
  accounting.
* :mod:`~repro.apps.chat` — free-form text conversation (the title's
  "chatting robots").
"""

from repro.apps.harness import SwarmHarness
from repro.apps.leader_election import ElectionResult, elect_leader
from repro.apps.token_ring import TokenRingResult, run_token_ring
from repro.apps.echo import EchoResult, ping
from repro.apps.chat import ChatResult, run_chat
from repro.apps.aggregation import (
    AggregationResult,
    converge_cast,
    converge_cast_limited_visibility,
)
from repro.apps.gossip import GossipResult, spread_rumor

__all__ = [
    "SwarmHarness",
    "ElectionResult",
    "elect_leader",
    "TokenRingResult",
    "run_token_ring",
    "EchoResult",
    "ping",
    "ChatResult",
    "run_chat",
    "AggregationResult",
    "converge_cast",
    "converge_cast_limited_visibility",
    "GossipResult",
    "spread_rumor",
]
