"""Free-form chatting — the paper's title made concrete.

Two deaf and dumb robots hold a scripted text conversation purely by
moving: each line of the script is queued at its speaker, and the run
completes when every line has been decoded by its addressee, in order.
Works over the synchronous pair protocol or the asynchronous one
(pass ``asynchronous=True`` for Protocol Async2 under a fair
scheduler).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.apps.harness import SwarmHarness
from repro.errors import ProtocolError
from repro.geometry.vec import Vec2
from repro.model.scheduler import FairAsynchronousScheduler
from repro.protocols.async_two import AsyncTwoProtocol
from repro.protocols.sync_two import SyncTwoProtocol

__all__ = ["ChatResult", "run_chat"]


@dataclass(frozen=True)
class ChatResult:
    """Outcome of a conversation.

    Attributes:
        transcript: ``(speaker, text, delivered_at)`` per line, in the
            order the *receiver* completed them.
        steps: simulated instants consumed.
        distance_travelled: total world distance both robots covered —
            the "cost of talking" in movement.
    """

    transcript: List[Tuple[int, str, int]]
    steps: int
    distance_travelled: float


def run_chat(
    script: Sequence[Tuple[int, str]],
    asynchronous: bool = False,
    separation: float = 10.0,
    seed: int = 0,
    max_steps: int = 200_000,
) -> ChatResult:
    """Run a two-robot conversation over movement signals.

    Args:
        script: lines as ``(speaker index in {0, 1}, text)``.  All
            lines are queued up-front; interleaving across speakers is
            handled by the protocols.
        asynchronous: use Protocol Async2 under a fair asynchronous
            scheduler instead of the synchronous pair protocol.
        separation: initial distance between the robots.
        seed: scheduler seed (asynchronous mode).
        max_steps: abort bound.

    Raises:
        ProtocolError: on timeout, or if any line arrives corrupted or
            out of order.
    """
    for speaker, _ in script:
        if speaker not in (0, 1):
            raise ProtocolError(f"speaker must be 0 or 1, got {speaker}")

    positions = [Vec2(0.0, 0.0), Vec2(separation, 0.0)]
    if asynchronous:
        harness = SwarmHarness(
            positions,
            protocol_factory=lambda: AsyncTwoProtocol(bounded=True),
            scheduler=FairAsynchronousScheduler(fairness_bound=3, seed=seed),
            identified=False,
            sigma=separation,
        )
    else:
        harness = SwarmHarness(
            positions,
            protocol_factory=lambda: SyncTwoProtocol(),
            identified=False,
            sigma=separation,
        )

    expected = {0: [], 1: []}
    for speaker, text in script:
        harness.channel(speaker).send(1 - speaker, text)
        expected[1 - speaker].append(text)

    def all_delivered(h: SwarmHarness) -> bool:
        return all(
            len(h.channel(listener).inbox) >= len(lines)
            for listener, lines in expected.items()
        )

    if not harness.pump(all_delivered, max_steps=max_steps):
        got = {i: len(harness.channel(i).inbox) for i in (0, 1)}
        raise ProtocolError(f"chat did not complete within {max_steps} steps (got {got})")

    transcript: List[Tuple[int, str, int]] = []
    for listener, lines in expected.items():
        inbox = harness.channel(listener).inbox
        for want, message in zip(lines, inbox):
            text = message.text()
            if text != want:
                raise ProtocolError(f"line corrupted: sent {want!r}, received {text!r}")
            transcript.append((1 - listener, text, message.completed_at))
    transcript.sort(key=lambda item: item[2])

    trace = harness.simulator.trace
    travelled = sum(trace.distance_travelled(i) for i in (0, 1))
    return ChatResult(
        transcript=transcript,
        steps=harness.simulator.time,
        distance_travelled=travelled,
    )
