"""The SSM engine with stale Look phases (toward CORDA).

Each activation's Look phase returns the configuration of a possibly
earlier instant.  Per robot, the look time is non-decreasing (a robot
never un-sees) and lags the present by at most ``max_delay`` instants;
the actual lag of each activation is drawn uniformly.  ``max_delay=0``
reduces exactly to the base SSM engine.

A robot's *own* position is stale too — exactly CORDA's pathology: a
robot that "stays where it is" moves to where it *was*.  Idle robots
that have not moved recently are unaffected, so silence is preserved
for truly idle robots; the interesting breakage is in decoding, where a
robot's look sequence can *skip* configurations and therefore miss a
whole excursion (the experiments in ``bench_a4_staleness.py`` chart
this).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.errors import ModelError
from repro.geometry.vec import Vec2
from repro.model.robot import Robot
from repro.model.scheduler import Scheduler
from repro.model.simulator import Simulator
from repro.model.trace import TracePolicy

__all__ = ["StaleLookSimulator"]


class StaleLookSimulator(Simulator):
    """SSM with per-activation bounded-stale observations.

    Args:
        robots: the swarm.
        max_delay: maximum Look staleness in instants (>= 0).
        seed: RNG seed for the per-activation delays.
        scheduler: activation policy.
        caching: forwarded to the base engine (hot-path caches).
        trace_policy: forwarded to the base engine.  Stale looks read
            configurations up to ``max_delay`` instants back, so the
            policy must retain at least that much history.
    """

    def __init__(
        self,
        robots: Sequence[Robot],
        max_delay: int,
        seed: int = 0,
        scheduler: Optional[Scheduler] = None,
        *,
        caching: bool = True,
        trace_policy: Optional[TracePolicy] = None,
    ) -> None:
        if max_delay < 0:
            raise ModelError(f"max_delay must be >= 0, got {max_delay}")
        if trace_policy is not None and max_delay > 0:
            if trace_policy.stride > 1 or (
                trace_policy.capacity is not None
                and trace_policy.capacity < max_delay
            ):
                raise ModelError(
                    "stale looks need the last max_delay configurations: "
                    f"policy {trace_policy!r} cannot serve max_delay={max_delay}"
                )
        self._max_delay = max_delay
        self._rng = random.Random(seed)
        self._look_times: List[int] = [0] * len(robots)
        super().__init__(
            robots, scheduler, caching=caching, trace_policy=trace_policy
        )

    @property
    def max_delay(self) -> int:
        """The staleness bound, in instants."""
        return self._max_delay

    def look_time_of(self, index: int) -> int:
        """The instant whose configuration the robot last looked at."""
        return self._look_times[index]

    def _draw_lag(self, index: int, now: int) -> int:
        """The Look lag of this activation, in ``[0, max_delay]``.

        The base engine draws uniformly.  Adversarial variants (the
        verification subsystem's worst-case stale selection,
        :class:`repro.verify.adversaries.SawtoothStaleLookSimulator`)
        override this single hook; everything else — monotonicity, the
        staleness bound, trace retrieval — stays in one place.
        """
        return self._rng.randint(0, self._max_delay)

    def _config_for_observation(self, index: int) -> Sequence[Vec2]:
        if self._max_delay == 0:
            return self._positions
        now = self.time
        lag = self._draw_lag(index, now)
        if not (0 <= lag <= self._max_delay):
            raise ModelError(
                f"lag policy produced {lag}, outside [0, {self._max_delay}]"
            )
        look = max(self._look_times[index], now - lag)
        self._look_times[index] = look
        if look >= now:
            return self._positions
        return self.trace.positions_at(look)
