"""Partial synchrony — toward CORDA (Section 5, "Partial synchrony").

    "It would be interesting to achieve solutions by relaxing synchrony
    among the robots to achieve solutions into a fully asynchronous
    model (e.g., CORDA)."

In the CORDA model the Look, Compute and Move phases of an activation
are decoupled: a robot may *move* based on a snapshot it *looked* at
earlier.  :class:`~repro.corda.simulator.StaleLookSimulator`
interpolates between SSM and CORDA by bounding that gap: an activation
at instant ``t`` computes on the configuration of an instant in
``[t - max_delay, t]``, with per-robot look times non-decreasing
(``max_delay = 0`` is exactly SSM).

What the experiments (``benchmarks/bench_a4_staleness.py``) find:

* the paper's synchronous protocols **break immediately** — a look
  sequence with lag bound ``d >= 1`` can *skip* a configuration, hence
  miss a whole one-instant excursion or return, losing or duplicating
  bits.  This is the concrete content of the paper's open problem;
* **phase dilation repairs them**: holding every signal position for
  ``d + 1`` instants (the ``dilation`` knob of
  :class:`repro.protocols.sync_granular.SyncGranularProtocol`) makes
  skipping impossible — a monotone look sequence with lag at most
  ``d`` advances by at most ``d + 1`` per activation, so it must land
  inside every ``d+1``-instant phase.  Delivery returns to 100% at a
  ``(d+1)``-fold latency cost.
"""

from repro.corda.simulator import StaleLookSimulator

__all__ = ["StaleLookSimulator"]
