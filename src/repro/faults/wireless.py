"""A simulated wireless medium with injectable faults.

Substitution note (see DESIGN.md): the paper has no wireless system —
it only *motivates* movement communication by wireless failure.  This
medium is the synthetic equivalent that lets the failover code path be
exercised: instantaneous unicast frames between robot indices, with
three failure modes drawn from the paper's scenarios:

* **crash** — a robot's own device dies; its sends raise
  :class:`~repro.errors.ChannelDownError` (a *detectable* local fault);
* **jamming** — "zones with blocked wireless communication": frames
  are silently lost in transit (the sender cannot tell);
* **intermittent loss** — each frame is independently dropped with a
  given probability (flaky hardware).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Set, Union

from repro.errors import ChannelDownError, ChannelError

__all__ = ["WirelessFrame", "SimulatedWireless"]


@dataclass(frozen=True, slots=True)
class WirelessFrame:
    """One frame on the simulated radio medium."""

    src: int
    dst: int
    payload: bytes
    sent_at: int


class SimulatedWireless:
    """A broadcast-domain radio shared by all robots.

    Args:
        count: number of robot endpoints (indices ``0 .. count-1``).
        drop_probability: baseline probability that an in-transit frame
            is silently lost.
        seed: RNG seed for the loss process.
    """

    def __init__(self, count: int, drop_probability: float = 0.0, seed: int = 0) -> None:
        if count < 1:
            raise ChannelError(f"wireless medium needs >= 1 endpoints, got {count}")
        if not (0.0 <= drop_probability < 1.0):
            raise ChannelError(
                f"drop_probability must be in [0, 1), got {drop_probability}"
            )
        self._count = count
        self._drop_probability = drop_probability
        self._rng = random.Random(seed)
        self._crashed: Set[int] = set()
        self._jammed = False
        self._queues: Dict[int, List[WirelessFrame]] = {i: [] for i in range(count)}
        self._frames_sent = 0
        self._frames_lost = 0

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def crash_device(self, index: int) -> None:
        """Kill a robot's radio; its sends fail detectably from now on."""
        self._check_index(index)
        self._crashed.add(index)

    def restore_device(self, index: int) -> None:
        """Repair a crashed radio."""
        self._check_index(index)
        self._crashed.discard(index)

    def jam(self) -> None:
        """Enter a jammed zone: every in-transit frame is lost silently."""
        self._jammed = True

    def unjam(self) -> None:
        """Leave the jammed zone."""
        self._jammed = False

    def set_drop_probability(self, probability: float) -> None:
        """Adjust the intermittent loss rate."""
        if not (0.0 <= probability < 1.0):
            raise ChannelError(f"drop_probability must be in [0, 1), got {probability}")
        self._drop_probability = probability

    # ------------------------------------------------------------------
    # Medium access
    # ------------------------------------------------------------------
    def is_up(self, index: int) -> bool:
        """Whether a robot's own device is operational (crash-aware only:
        jamming and intermittent loss are invisible to the sender)."""
        self._check_index(index)
        return index not in self._crashed

    def send(self, src: int, dst: int, payload: Union[str, bytes], time: int) -> None:
        """Transmit one frame.

        Raises:
            ChannelDownError: when the *sender's* device is crashed —
                the only failure a sender can detect.  Jamming, loss
                and a crashed receiver all fail silently.
        """
        self._check_index(src)
        self._check_index(dst)
        data = payload.encode("utf-8") if isinstance(payload, str) else bytes(payload)
        if src in self._crashed:
            raise ChannelDownError(f"wireless device of robot {src} is down")
        self._frames_sent += 1
        if self._jammed or dst in self._crashed:
            self._frames_lost += 1
            return
        if self._drop_probability > 0.0 and self._rng.random() < self._drop_probability:
            self._frames_lost += 1
            return
        self._queues[dst].append(WirelessFrame(src=src, dst=dst, payload=data, sent_at=time))

    def receive(self, dst: int) -> List[WirelessFrame]:
        """Drain the frames delivered to a robot.

        A crashed receiver hears nothing (frames addressed to it were
        already lost at send time).
        """
        self._check_index(dst)
        if dst in self._crashed:
            return []
        frames = self._queues[dst]
        self._queues[dst] = []
        return frames

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def frames_sent(self) -> int:
        """Total frames handed to the medium."""
        return self._frames_sent

    @property
    def frames_lost(self) -> int:
        """Frames silently lost (jamming, drops, dead receivers)."""
        return self._frames_lost

    def _check_index(self, index: int) -> None:
        if not (0 <= index < self._count):
            raise ChannelError(f"unknown wireless endpoint {index}")
