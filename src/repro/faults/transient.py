"""Transient robot faults: seeded out-of-band displacements.

The self-stabilization discussion of Section 5 envisages *arbitrary
transient perturbations* of the configuration.  The simulator exposes
the primitive (:meth:`repro.model.simulator.Simulator.displace`);
this module adds the adversary that drives it: a seeded plan of
displacement injections, deterministic given its seed so that paired
caching-on/off runs see bit-identical fault sequences.

The plan always teleports its victim *outside* the swarm's current
bounding box (plus a margin), so an injection can never create a
collision by itself — any collision observed afterwards would be a
genuine protocol failure, which is exactly what the verification
monitors are watching for.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple

from repro.errors import ModelError
from repro.geometry.vec import Vec2
from repro.model.simulator import Simulator

__all__ = ["TransientDisplacementFault"]


class TransientDisplacementFault:
    """A seeded schedule of transient displacement injections.

    Args:
        victim: tracking index of the robot to displace.
        times: instants *before* which an injection fires (the fault
            hits between the previous step and the step of that
            instant).
        seed: RNG seed for the displacement direction/radius jitter.
        margin: minimum distance between the displaced victim and the
            swarm's bounding box.

    Drive it by calling :meth:`maybe_inject` once per instant, before
    ``Simulator.step()``.  Injections are recorded in
    :attr:`injections` so monitors can exempt them (a teleport is not
    a protocol movement).
    """

    def __init__(
        self,
        victim: int,
        times: Sequence[int],
        seed: int = 0,
        margin: float = 5.0,
    ) -> None:
        if victim < 0:
            raise ModelError(f"victim index must be >= 0, got {victim}")
        if margin <= 0.0:
            raise ModelError(f"margin must be positive, got {margin}")
        self.victim = victim
        self._times = sorted(set(int(t) for t in times))
        if any(t < 0 for t in self._times):
            raise ModelError(f"injection times must be >= 0, got {self._times}")
        self._rng = random.Random(seed)
        self._margin = margin
        self.injections: List[Tuple[int, int, Vec2]] = []

    @property
    def times(self) -> Tuple[int, ...]:
        """The planned injection instants."""
        return tuple(self._times)

    def maybe_inject(self, sim: Simulator) -> Optional[Vec2]:
        """Fire the fault if one is planned for ``sim.time``.

        Returns the displacement target when an injection happened,
        None otherwise.
        """
        if sim.time not in self._times:
            return None
        if not (0 <= self.victim < sim.count):
            raise ModelError(f"victim {self.victim} not in swarm of {sim.count}")
        target = self._pick_target(sim.positions)
        sim.displace(self.victim, target)
        self.injections.append((sim.time, self.victim, target))
        return target

    def _pick_target(self, positions: Sequence[Vec2]) -> Vec2:
        """A point strictly outside the swarm, seeded direction."""
        cx = sum(p.x for p in positions) / len(positions)
        cy = sum(p.y for p in positions) / len(positions)
        spread = max(
            (math.hypot(p.x - cx, p.y - cy) for p in positions), default=0.0
        )
        radius = spread + self._margin * (1.0 + self._rng.random())
        angle = self._rng.uniform(0.0, 2.0 * math.pi)
        return Vec2(cx + radius * math.cos(angle), cy + radius * math.sin(angle))
