"""Fault models for the motivating scenarios of Section 1.

The paper motivates movement communication with robots whose "wireless
devices are faulty", that "evolve in zones with blocked wireless
communication", or that cannot carry a radio at all.
:class:`~repro.faults.wireless.SimulatedWireless` provides an
injectable-fault radio medium so the
:class:`~repro.channels.stack.DualChannelStack` failover path can be
exercised end-to-end.

:class:`~repro.faults.transient.TransientDisplacementFault` covers the
other fault family the paper gestures at (Section 5's transient state
perturbations): seeded out-of-band robot displacements, driven by the
adversarial verification subsystem (:mod:`repro.verify`).
"""

from repro.faults.transient import TransientDisplacementFault
from repro.faults.wireless import SimulatedWireless, WirelessFrame

__all__ = ["SimulatedWireless", "TransientDisplacementFault", "WirelessFrame"]
