"""Deaf, Dumb, and Chatting Robots — a full reproduction.

Movement-signal communication for swarms of mobile robots, after
Dieudonné, Dolev, Petit and Segal, *Deaf, Dumb, and Chatting Robots:
Enabling Distributed Computation and Fault-Tolerance Among Stigmergic
Robots* (PODC 2009 brief announcement / INRIA report inria-00363081).

The package layers bottom-up:

* :mod:`repro.geometry` — plane geometry: Voronoi cells, granulars,
  smallest enclosing circles, local frames.
* :mod:`repro.model` — the semi-synchronous robot model (SSM):
  robots, observations, schedulers, the simulation engine.
* :mod:`repro.naming` — addressing: IDs, sense-of-direction order,
  SEC relative naming, the symmetry obstruction.
* :mod:`repro.coding` — messages <-> bits, multi-symbol coding, the
  few-slice addressing extension.
* :mod:`repro.protocols` — the paper's six protocols + extensions.
* :mod:`repro.channels` / :mod:`repro.faults` — message transport,
  overhearing, wireless failover.
* :mod:`repro.apps` — leader election, token ring, echo, chat.
* :mod:`repro.analysis` — metrics, audits, complexity tables, ASCII
  figure rendering.

Quickstart::

    from repro import SwarmHarness, SyncGranularProtocol, ring_positions

    harness = SwarmHarness(ring_positions(6, jitter=0.05),
                           lambda: SyncGranularProtocol())
    harness.channel(0).send(3, "hello, robot 3")
    harness.pump(lambda h: len(h.channel(3).inbox) >= 1)
    print(harness.channel(3).inbox[0].text())
"""

from repro.errors import (
    AmbiguousDirectionError,
    ChannelDownError,
    ChannelError,
    CodingError,
    DecodingError,
    GeometryError,
    ModelError,
    NamingError,
    ProtocolError,
    ReproError,
    SchedulerError,
)
from repro.geometry import (
    Circle,
    Frame,
    Granular,
    Vec2,
    granular_radius,
    smallest_enclosing_circle,
    voronoi_cell,
    voronoi_diagram,
)
from repro.model import (
    BitEvent,
    FairAsynchronousScheduler,
    Observation,
    Protocol,
    Robot,
    RoundRobinScheduler,
    ScriptedScheduler,
    Simulator,
    SynchronousScheduler,
    Trace,
    TracePolicy,
)
from repro.perf import CachedGeometry, PerfStats, SpatialHashGrid
from repro.naming import (
    common_naming_is_impossible,
    figure3_configuration,
    identified_labels,
    relative_labels,
    rotational_symmetry_order,
    sod_labels,
)
from repro.coding import FrameDecoder, SymbolCoder, decode_message, encode_message
from repro.protocols import (
    AsyncNProtocol,
    AsyncTwoProtocol,
    FlockingProtocol,
    SyncGranularProtocol,
    SyncLogKProtocol,
    SyncTwoProtocol,
    send_to_all,
    send_to_many,
)
from repro.channels import (
    DualChannelStack,
    Message,
    MovementChannel,
    OverhearingMonitor,
)
from repro.faults import SimulatedWireless
from repro.apps import (
    ChatResult,
    EchoResult,
    ElectionResult,
    SwarmHarness,
    TokenRingResult,
    elect_leader,
    ping,
    run_chat,
    run_token_ring,
)
from repro.apps.harness import ring_positions
from repro.analysis import (
    collision_audit,
    silence_audit,
    slice_tradeoff_table,
    svg_configuration,
    svg_trace,
    transmission_stats,
    write_svg,
)
from repro.visibility import (
    FloodRouter,
    LocalGranularProtocol,
    VisibilitySimulator,
    visibility_graph,
    visibility_is_connected,
)
from repro.discrete import (
    HexLattice,
    LatticeLogKProtocol,
    LatticeSimulator,
    SquareLattice,
)
from repro.stabilization import EpochGranularProtocol
from repro.corda import StaleLookSimulator
from repro.noise import NoisyObservationSimulator

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "GeometryError",
    "AmbiguousDirectionError",
    "ModelError",
    "SchedulerError",
    "ProtocolError",
    "DecodingError",
    "NamingError",
    "CodingError",
    "ChannelError",
    "ChannelDownError",
    # geometry
    "Vec2",
    "Frame",
    "Circle",
    "Granular",
    "granular_radius",
    "smallest_enclosing_circle",
    "voronoi_cell",
    "voronoi_diagram",
    # model
    "Robot",
    "Observation",
    "Protocol",
    "BitEvent",
    "Simulator",
    "Trace",
    "TracePolicy",
    "CachedGeometry",
    "PerfStats",
    "SpatialHashGrid",
    "SynchronousScheduler",
    "FairAsynchronousScheduler",
    "RoundRobinScheduler",
    "ScriptedScheduler",
    # naming
    "identified_labels",
    "sod_labels",
    "relative_labels",
    "rotational_symmetry_order",
    "common_naming_is_impossible",
    "figure3_configuration",
    # coding
    "encode_message",
    "decode_message",
    "FrameDecoder",
    "SymbolCoder",
    # protocols
    "SyncTwoProtocol",
    "SyncGranularProtocol",
    "SyncLogKProtocol",
    "AsyncTwoProtocol",
    "AsyncNProtocol",
    "FlockingProtocol",
    "send_to_all",
    "send_to_many",
    # channels & faults
    "Message",
    "MovementChannel",
    "OverhearingMonitor",
    "DualChannelStack",
    "SimulatedWireless",
    # apps
    "SwarmHarness",
    "ring_positions",
    "elect_leader",
    "ElectionResult",
    "run_token_ring",
    "TokenRingResult",
    "ping",
    "EchoResult",
    "run_chat",
    "ChatResult",
    # analysis
    "transmission_stats",
    "silence_audit",
    "collision_audit",
    "slice_tradeoff_table",
    "svg_configuration",
    "svg_trace",
    "write_svg",
    # visibility (Section 5 extension)
    "VisibilitySimulator",
    "LocalGranularProtocol",
    "FloodRouter",
    "visibility_graph",
    "visibility_is_connected",
    # discrete worlds (Section 5 extension)
    "SquareLattice",
    "HexLattice",
    "LatticeSimulator",
    "LatticeLogKProtocol",
    # stabilization (Section 5 extension)
    "EpochGranularProtocol",
    # partial synchrony & sensing noise (Section 5 extensions)
    "StaleLookSimulator",
    "NoisyObservationSimulator",
]
