"""``repro.events`` — the event-driven continuous-time LCM engine.

The round engine steps every robot at every instant; this package
replaces instants with a priority queue of ``(time, phase, robot)``
events, giving the paper's asynchronous interleaving model a genuinely
continuous-time substrate:

* :mod:`repro.events.distributions` — seeded phase-duration and
  activation-gap distributions (deterministic, uniform, exponential,
  heavy-tailed Pareto);
* :mod:`repro.events.timing` — the per-robot
  :class:`~repro.events.timing.TimingModel` (round emulation vs
  free-running, fairness-clamped gaps);
* :mod:`repro.events.delay` — pluggable
  :class:`~repro.events.delay.DelayModel` observation delays
  (``delay_fcn(sender, receiver, time)``) that decide when a moved-bit
  configuration becomes visible to each observer;
* :mod:`repro.events.engine` —
  :class:`~repro.events.engine.EventSimulator`, a drop-in
  :class:`~repro.model.simulator.Simulator` subclass.

Select it through the common factory
(``repro.batch.make_simulator(..., engine="events")``) or the
:class:`~repro.apps.harness.SwarmHarness` ``engine`` knob.  The
round-emulation configuration is proved byte-identical to the round
engine by ``python -m repro.verify --event-oracle``
(:mod:`repro.verify.events`); see ``docs/EVENTS.md``.
"""

from repro.events.delay import (
    ConstantDelay,
    DelayModel,
    JitterDelay,
    TargetedSpikeDelay,
    ZeroDelay,
)
from repro.events.distributions import (
    Deterministic,
    Distribution,
    Exponential,
    Pareto,
    Uniform,
)
from repro.events.engine import PHASES, EventSimulator
from repro.events.timing import TimingModel

__all__ = [
    "EventSimulator",
    "PHASES",
    "TimingModel",
    "Distribution",
    "Deterministic",
    "Uniform",
    "Exponential",
    "Pareto",
    "DelayModel",
    "ZeroDelay",
    "ConstantDelay",
    "JitterDelay",
    "TargetedSpikeDelay",
]
