"""Seeded duration distributions for the event engine.

Every phase duration and activation gap of the continuous-time engine
is a draw from one of these distributions.  They are deliberately
tiny value objects: validated at construction, sampled against an
*externally owned* :class:`random.Random` (the engine keeps one RNG
stream per robot, so the draw order of one robot can never perturb
another's — the root of the engine's seeded-determinism guarantee).

All distributions produce non-negative durations; the engine enforces
that at every draw as a belt-and-braces check against buggy custom
distributions.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod

from repro.errors import EventError

__all__ = [
    "Distribution",
    "Deterministic",
    "Uniform",
    "Exponential",
    "Pareto",
]


class Distribution(ABC):
    """A non-negative duration distribution, sampled with a caller RNG."""

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        """One draw; must be finite and ``>= 0``."""

    def mean(self) -> float:
        """The distribution mean (``inf`` when undefined/infinite)."""
        raise NotImplementedError  # pragma: no cover - subclasses override


class Deterministic(Distribution):
    """Always the same duration (the round-emulation workhorse)."""

    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        if not (value >= 0.0 and math.isfinite(value)):
            raise EventError(f"deterministic duration must be finite and >= 0, got {value!r}")
        self.value = float(value)

    def sample(self, rng: random.Random) -> float:
        return self.value

    def mean(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Deterministic({self.value!r})"


class Uniform(Distribution):
    """Uniform on ``[low, high]``."""

    __slots__ = ("low", "high")

    def __init__(self, low: float, high: float) -> None:
        if not (0.0 <= low <= high and math.isfinite(high)):
            raise EventError(f"uniform bounds must satisfy 0 <= low <= high, got [{low!r}, {high!r}]")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    def __repr__(self) -> str:
        return f"Uniform({self.low!r}, {self.high!r})"


class Exponential(Distribution):
    """Exponential with the given mean (memoryless activation gaps)."""

    __slots__ = ("mean_value",)

    def __init__(self, mean: float) -> None:
        if not (mean > 0.0 and math.isfinite(mean)):
            raise EventError(f"exponential mean must be finite and > 0, got {mean!r}")
        self.mean_value = float(mean)

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean_value)

    def mean(self) -> float:
        return self.mean_value

    def __repr__(self) -> str:
        return f"Exponential(mean={self.mean_value!r})"


class Pareto(Distribution):
    """Heavy-tailed Pareto: ``scale * X`` with ``X ~ Pareto(alpha)``.

    With ``alpha <= 1`` the mean is infinite — exactly the adversarial
    regime the ``event_heavy_tail`` verify cells probe, where a single
    robot can occasionally stall a phase for a very long time while
    fairness still holds in every finite window.
    """

    __slots__ = ("alpha", "scale")

    def __init__(self, alpha: float, scale: float = 1.0) -> None:
        if not (alpha > 0.0 and math.isfinite(alpha)):
            raise EventError(f"pareto alpha must be finite and > 0, got {alpha!r}")
        if not (scale > 0.0 and math.isfinite(scale)):
            raise EventError(f"pareto scale must be finite and > 0, got {scale!r}")
        self.alpha = float(alpha)
        self.scale = float(scale)

    def sample(self, rng: random.Random) -> float:
        # Inverse-CDF so a single rng.random() draw is consumed per
        # sample (keeps per-robot draw counts predictable).
        u = 1.0 - rng.random()
        return self.scale * (u ** (-1.0 / self.alpha) - 1.0)

    def mean(self) -> float:
        if self.alpha <= 1.0:
            return math.inf
        return self.scale / (self.alpha - 1.0)

    def __repr__(self) -> str:
        return f"Pareto(alpha={self.alpha!r}, scale={self.scale!r})"
