"""Observation-delay models for the event engine.

The paper's communication primitive is *watching other robots move*:
a bit becomes readable when its movement becomes visible.  Under the
round engine visibility is instantaneous — every Look returns the
exact current configuration.  A :class:`DelayModel` breaks that
assumption: a position change of robot ``sender`` at time ``t``
becomes visible to robot ``receiver`` only at
``t + delay_fcn(sender, receiver, t)``.

Until then the receiver keeps seeing the sender's *previous* position
— never a future one.  Monotonicity (a delayed observation never
shows a configuration that has not happened yet) is structural:
delays are validated non-negative, and the engine serves the latest
change whose release time has passed.

Models must be **pure functions** of ``(sender, receiver, time)``:
the engine evaluates them lazily at Look time, so a model that drew
from a shared RNG per call would make visibility depend on the order
robots happen to look.  Randomized models should derive their noise
from a hash of the arguments (see :class:`JitterDelay`).
"""

from __future__ import annotations

import math
import zlib
from abc import ABC, abstractmethod

from repro.errors import EventError

__all__ = [
    "DelayModel",
    "ZeroDelay",
    "ConstantDelay",
    "JitterDelay",
    "TargetedSpikeDelay",
]


class DelayModel(ABC):
    """When a ``sender`` position change becomes visible to ``receiver``."""

    #: engines skip all history bookkeeping when this is True — the
    #: zero-overhead path that keeps round emulation bit-identical.
    is_zero: bool = False

    @abstractmethod
    def delay_fcn(self, sender: int, receiver: int, time: float) -> float:
        """Visibility lag (``>= 0``) of a ``sender`` change at ``time``.

        A robot always sees itself live; engines never call this with
        ``sender == receiver``.
        """

    def __call__(self, sender: int, receiver: int, time: float) -> float:
        return self.delay_fcn(sender, receiver, time)


class ZeroDelay(DelayModel):
    """Instantaneous visibility — the SSM default."""

    is_zero = True

    def delay_fcn(self, sender: int, receiver: int, time: float) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "ZeroDelay()"


class ConstantDelay(DelayModel):
    """Every observation lags by a fixed amount.

    Because the lag is identical for all senders, a receiver always
    sees a *consistent past configuration* — the world exactly as it
    was ``delay`` time units ago.
    """

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if not (delay >= 0.0 and math.isfinite(delay)):
            raise EventError(f"delay must be finite and >= 0, got {delay!r}")
        self.delay = float(delay)
        self.is_zero = self.delay == 0.0

    def delay_fcn(self, sender: int, receiver: int, time: float) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"ConstantDelay({self.delay!r})"


def _unit_hash(*parts: float) -> float:
    """A deterministic pseudo-uniform in ``[0, 1)`` from the arguments.

    zlib.crc32 rather than ``hash()``: string hashing is salted per
    process, which would break the "same seed, same run" promise.
    """
    blob = ",".join(repr(p) for p in parts).encode("ascii")
    return zlib.crc32(blob) / 2**32


class JitterDelay(DelayModel):
    """Base delay plus seeded per-``(sender, receiver, time)`` jitter.

    The jitter is hash-derived, not drawn from an RNG stream, so the
    model stays a pure function — two engines evaluating it in any
    order see identical lags.
    """

    __slots__ = ("base", "jitter", "seed")

    def __init__(self, base: float, jitter: float, seed: int = 0) -> None:
        if not (base >= 0.0 and math.isfinite(base)):
            raise EventError(f"base delay must be finite and >= 0, got {base!r}")
        if not (jitter >= 0.0 and math.isfinite(jitter)):
            raise EventError(f"jitter must be finite and >= 0, got {jitter!r}")
        self.base = float(base)
        self.jitter = float(jitter)
        self.seed = int(seed)
        self.is_zero = self.base == 0.0 and self.jitter == 0.0

    def delay_fcn(self, sender: int, receiver: int, time: float) -> float:
        return self.base + self.jitter * _unit_hash(self.seed, sender, receiver, time)

    def __repr__(self) -> str:
        return f"JitterDelay(base={self.base!r}, jitter={self.jitter!r}, seed={self.seed})"


class TargetedSpikeDelay(DelayModel):
    """Periodic delay spikes on one victim receiver.

    Everyone else observes instantly.  The victim's view of every
    other robot lags by ``spike`` during recurring windows of length
    ``width`` (one per ``period``), and by ``base`` otherwise — the
    ``event_delay_spike`` verify adversary.  The lag is identical for
    all senders, so even mid-spike the victim sees a consistent
    (merely old) configuration.
    """

    __slots__ = ("victim", "spike", "period", "width", "base")

    def __init__(
        self,
        victim: int,
        spike: float,
        period: float,
        width: float,
        base: float = 0.0,
    ) -> None:
        if victim < 0:
            raise EventError(f"victim must be a robot index, got {victim!r}")
        if not (spike >= 0.0 and math.isfinite(spike)):
            raise EventError(f"spike must be finite and >= 0, got {spike!r}")
        if not (period > 0.0 and math.isfinite(period)):
            raise EventError(f"period must be finite and > 0, got {period!r}")
        if not (0.0 < width <= period):
            raise EventError(f"width must be in (0, period], got {width!r}")
        if not (base >= 0.0 and math.isfinite(base)):
            raise EventError(f"base must be finite and >= 0, got {base!r}")
        self.victim = int(victim)
        self.spike = float(spike)
        self.period = float(period)
        self.width = float(width)
        self.base = float(base)

    def delay_fcn(self, sender: int, receiver: int, time: float) -> float:
        if receiver != self.victim:
            return 0.0
        if (time % self.period) < self.width:
            return self.base + self.spike
        return self.base

    def __repr__(self) -> str:
        return (
            f"TargetedSpikeDelay(victim={self.victim}, spike={self.spike!r}, "
            f"period={self.period!r}, width={self.width!r}, base={self.base!r})"
        )
