"""The event-driven continuous-time LCM engine.

Where the round engine (:class:`~repro.model.simulator.Simulator`)
advances all robots in lockstep instants, this engine pops
``(time, phase, robot)`` events off a heap: each activation is three
events — **look** (snapshot the configuration), **compute** (run the
protocol on the snapshot), **move** (apply the destination) — whose
spacing is drawn from per-robot seeded
:class:`~repro.events.distributions.Distribution` streams, and a
pluggable :class:`~repro.events.delay.DelayModel` decides when each
position change becomes visible to each observer.

Two operating modes, selected by the
:class:`~repro.events.timing.TimingModel`:

* **scheduler-driven round emulation** — the engine still asks a
  classic :class:`~repro.model.scheduler.Scheduler` for activation
  sets, but executes each instant *through the heap*: all of a round's
  looks fire before any of its moves, moves apply simultaneously, and
  with unit durations plus :class:`~repro.events.delay.ZeroDelay` the
  run is **byte-identical** to the round engine — traces, bit streams,
  epochs, cache behaviour and monitor verdicts
  (``python -m repro.verify --event-oracle`` enforces this);
* **free-running** — no scheduler at all; every robot cycles
  Look → Compute → Move → gap on its own clock.  ``step()`` returns
  once one batch of simultaneous moves has been applied, recording an
  ordinal :class:`~repro.model.trace.TraceStep` whose ``active`` set
  is the robots that moved, so channels, monitors and protocols built
  against the round engine run unchanged.

The engine subclasses the round simulator, so the whole extension
surface (``_constrain_destination``, step listeners, phase hooks,
``displace`` fault injection, observation caching) is inherited; only
the activation machinery and the Look configuration source
(:meth:`EventSimulator._config_for_observation`) are overridden.

Huge-swarm extras (both optional, both off by default):

* ``visibility_radius`` — limited visibility served by a spatial-hash
  index (O(n) construction instead of the all-pairs O(n²) scan);
* ``lazy_views`` — protocols are bound with an on-demand
  ``initial_positions`` view instead of an eagerly materialized
  n-tuple, making swarm construction O(n) total.  Semantically
  identical for any protocol that treats ``initial_positions`` as the
  sequence it is declared to be.
"""

from __future__ import annotations

import heapq
import random
from collections.abc import Sequence as SequenceABC
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import EventError, SchedulerError
from repro.events.delay import DelayModel, ZeroDelay
from repro.events.timing import TimingModel
from repro.geometry.vec import Vec2
from repro.model.observation import Observation
from repro.model.robot import Robot
from repro.model.scheduler import Scheduler
from repro.model.simulator import Simulator
from repro.model.trace import TracePolicy, TraceStep
from repro.perf.spatial import SpatialHashGrid

__all__ = ["EventSimulator", "PHASES"]

#: Phase names in heap-rank order: at equal times all looks pop before
#: any compute, and all computes before any move — so a Look that is
#: simultaneous with a Move still sees the pre-move configuration,
#: matching the round engine's "observe P(t_j), then move" semantics.
PHASES: Tuple[str, str, str] = ("look", "compute", "move")

_LOOK, _COMPUTE, _MOVE = 0, 1, 2


class _LazyLocalView(SequenceABC):
    """An on-demand ``initial_positions`` sequence for protocol binding.

    Indexing computes ``to_local(P_i(t_0))`` on the fly (None for
    robots outside the observer's visibility), so binding an n-robot
    swarm allocates O(1) per robot instead of an n-tuple each.
    """

    __slots__ = ("_to_local", "_anchor", "_anchors", "_visible", "_count")

    def __init__(self, to_local, anchor, anchors, visible, count) -> None:
        self._to_local = to_local
        self._anchor = anchor
        self._anchors = anchors
        self._visible = visible
        self._count = count

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, item):
        if isinstance(item, slice):
            return tuple(self[i] for i in range(*item.indices(self._count)))
        index = item
        if index < 0:
            index += self._count
        if not (0 <= index < self._count):
            raise IndexError(item)
        if index not in self._visible:
            return None
        return self._to_local(self._anchors[index], self._anchor)


class EventSimulator(Simulator):
    """A drop-in :class:`Simulator` driven by a priority queue of events.

    Args:
        robots: the swarm (same contract as the round engine).
        scheduler: activation policy — **required semantics depend on
            the timing mode**: scheduler-driven timing replays it round
            by round; free-running timing forbids it (the per-robot
            clocks are the schedule).
        timing: the :class:`TimingModel`; default
            :meth:`TimingModel.round_emulation` (unit phases,
            scheduler-driven — the oracle configuration).
        delay: the :class:`DelayModel`; default :class:`ZeroDelay`
            (instantaneous visibility, required for byte-identity with
            the round engine).
        seed: master seed of the per-robot duration RNG streams.
        registry: optional :class:`~repro.obs.registry.MetricsRegistry`
            — wires event counts, heap depth and per-phase latency
            histograms; None (default) costs nothing.
        record_events: keep an in-memory log of every popped event as
            ``(time, phase, robot)`` tuples (determinism tests).
        visibility_radius: optional limited visibility (world units),
            indexed with a spatial hash.
        lazy_views: bind protocols with on-demand initial-position
            views (huge swarms; see the module docstring).
        caching / trace_policy: forwarded to the base engine.
    """

    def __init__(
        self,
        robots: Sequence[Robot],
        scheduler: Optional[Scheduler] = None,
        *,
        timing: Optional[TimingModel] = None,
        delay: Optional[DelayModel] = None,
        seed: int = 0,
        registry=None,
        record_events: bool = False,
        visibility_radius: Optional[float] = None,
        lazy_views: bool = False,
        caching: bool = True,
        trace_policy: Optional[TracePolicy] = None,
    ) -> None:
        timing = timing if timing is not None else TimingModel.round_emulation()
        if not isinstance(timing, TimingModel):
            raise EventError(f"timing must be a TimingModel, got {timing!r}")
        delay = delay if delay is not None else ZeroDelay()
        if not isinstance(delay, DelayModel):
            raise EventError(f"delay must be a DelayModel, got {delay!r}")
        if not timing.scheduler_driven and scheduler is not None:
            raise EventError(
                "free-running timing owns the activation schedule; "
                "pass scheduler=None (or use a scheduler-driven TimingModel)"
            )
        if visibility_radius is not None and visibility_radius <= 0.0:
            raise EventError(
                f"visibility_radius must be positive, got {visibility_radius}"
            )
        # Attributes the base constructor consults must exist first:
        # _world_visibility_radius() / _compute_visible_from() /
        # _initial_local_view() all run inside super().__init__.
        self._timing = timing
        self._delay = delay
        self._visibility_radius = visibility_radius
        self._lazy_views = bool(lazy_views)
        self._grid: Optional[SpatialHashGrid] = None
        self._point_index: Dict[Vec2, int] = {}
        if visibility_radius is not None:
            self._grid = SpatialHashGrid(cell_size=visibility_radius)
            for i, robot in enumerate(robots):
                self._grid.insert(robot.position)
                self._point_index[robot.position] = i

        super().__init__(robots, scheduler, caching=caching, trace_policy=trace_policy)

        n = self.count
        self._rngs: List[random.Random] = [
            random.Random(1_000_003 * seed + i) for i in range(n)
        ]
        self._heap: List[Tuple[float, int, int, int]] = []
        self._seq = 0
        self._clock = 0.0
        self._events_processed = 0
        self._pending_obs: List[Optional[Observation]] = [None] * n
        self._pending_target: List[Optional[Vec2]] = [None] * n
        # Per-robot position history (time, position) — only kept when
        # a delay model is active; the zero-delay fast path serves the
        # live configuration exactly like the round engine.
        self._track_history = not self._delay.is_zero
        self._history: List[List[Tuple[float, Vec2]]] = (
            [[(0.0, p)] for p in self._anchors] if self._track_history else []
        )
        self._event_log: Optional[List[Tuple[float, str, int]]] = (
            [] if record_events else None
        )
        # -- metrics (all None when no registry: zero overhead) --------
        self._m_events = None
        if registry is not None:
            self._m_events = tuple(
                registry.counter("event_count", phase=name) for name in PHASES
            )
            self._m_heap_depth = registry.gauge("event_heap_depth")
            self._m_heap_max = registry.gauge("event_heap_depth_max")
            self._m_latency = tuple(
                registry.histogram("event_phase_latency", phase=name)
                for name in PHASES
            )
            self._m_gap = registry.histogram("event_activation_gap")
            self._heap_max = 0
        if not timing.scheduler_driven:
            self._seed_free_cycles()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def clock(self) -> float:
        """The continuous event clock (time of the last popped event)."""
        return self._clock

    @property
    def timing(self) -> TimingModel:
        """The timing model driving this engine."""
        return self._timing

    @property
    def delay_model(self) -> DelayModel:
        """The observation-delay model."""
        return self._delay

    @property
    def events_processed(self) -> int:
        """Total events popped so far."""
        return self._events_processed

    @property
    def heap_depth(self) -> int:
        """Current number of pending events."""
        return len(self._heap)

    @property
    def pending_events(self) -> Tuple[Tuple[float, int, int, int], ...]:
        """The pending events, sorted — ``(time, phase, robot, seq)``."""
        return tuple(sorted(self._heap))

    @property
    def event_log(self) -> Tuple[Tuple[float, str, int], ...]:
        """The ``(time, phase, robot)`` log (``record_events=True`` only)."""
        if self._event_log is None:
            raise EventError("event log disabled; construct with record_events=True")
        return tuple(self._event_log)

    # ------------------------------------------------------------------
    # Heap primitives
    # ------------------------------------------------------------------
    def _push(self, time: float, phase: int, robot: int) -> None:
        heapq.heappush(self._heap, (time, phase, robot, self._seq))
        self._seq += 1
        if self._m_events is not None:
            depth = len(self._heap)
            self._m_heap_depth.set(depth)
            if depth > self._heap_max:
                self._heap_max = depth
                self._m_heap_max.set(depth)

    def _pop(self) -> Tuple[float, int, int, int]:
        event = heapq.heappop(self._heap)
        self._events_processed += 1
        if self._m_events is not None:
            self._m_events[event[1]].inc()
            self._m_heap_depth.set(len(self._heap))
        if self._event_log is not None:
            self._event_log.append((event[0], PHASES[event[1]], event[2]))
        return event

    def _sample_phase(self, name: str, phase: int, robot: int) -> float:
        duration = self._timing.sample_phase(name, self._rngs[robot])
        if self._m_events is not None:
            self._m_latency[phase].observe(duration)
        return duration

    def _sample_gap(self, robot: int) -> float:
        gap = self._timing.sample_gap(self._rngs[robot])
        if self._m_events is not None:
            self._m_gap.observe(gap)
        return gap

    def _seed_free_cycles(self) -> None:
        """Schedule every robot's first Look (free-running mode)."""
        for i in range(self.count):
            start = 0.0 if self._timing.activate_all_first else self._sample_gap(i)
            self._push(start, _LOOK, i)

    # ------------------------------------------------------------------
    # Event handling shared by both modes
    # ------------------------------------------------------------------
    def _handle_look(self, time: float, robot: int, hook, now: int) -> None:
        if hook is not None:
            hook("compute.observe", now)
        rhook = self._robot_phase_hook
        if rhook is not None:
            rhook("look", robot, now)
        self._pending_obs[robot] = self._observe(robot)
        self._push(time + self._sample_phase("look", _LOOK, robot), _COMPUTE, robot)

    def _handle_compute(self, time: float, robot: int, hook, now: int) -> None:
        if hook is not None:
            hook("compute.decide", now)
        rhook = self._robot_phase_hook
        if rhook is not None:
            rhook("compute", robot, now)
        spec = self._robots[robot]
        observation = self._pending_obs[robot]
        self._pending_obs[robot] = None
        if observation is None:  # pragma: no cover - heap contract
            raise EventError(f"compute event for robot {robot} without a look")
        local_target = spec.protocol.on_activate(observation)
        world_target = spec.frame.to_world(local_target, self._anchors[robot])
        clamped = self._positions[robot].clamped_toward(world_target, spec.sigma)
        self._pending_target[robot] = self._constrain_destination(robot, clamped)
        self._push(time + self._sample_phase("compute", _COMPUTE, robot), _MOVE, robot)

    def _apply_moves(
        self,
        new_positions: Dict[int, Vec2],
        move_times: Dict[int, float],
    ) -> None:
        """Simultaneous move application — same bookkeeping as the base."""
        moved = [
            index
            for index, position in new_positions.items()
            if position != self._positions[index]
        ]
        for index, position in new_positions.items():
            self._positions[index] = position
        if moved:
            self._epoch += 1
            for index in moved:
                self._pos_epoch[index] = self._epoch
            if self._track_history:
                for index in moved:
                    self._history[index].append(
                        (move_times[index], self._positions[index])
                    )

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self) -> TraceStep:
        """Advance one instant (scheduler-driven) or one move batch (free)."""
        if self._timing.scheduler_driven:
            return self._step_round()
        return self._step_free()

    def _step_round(self) -> TraceStep:
        """One emulated round, executed through the heap.

        All of the round's looks are pushed at the round's base time;
        the phase-duration draws space the compute and move events
        after them.  Every look therefore pops before any move — the
        active robots all observe the pre-move configuration — and the
        collected destinations apply simultaneously, exactly like the
        round engine.
        """
        hook = self._phase_hook
        rhook = self._robot_phase_hook
        now = self._time
        if hook is not None:
            hook("schedule", now)
        active = self._scheduler.activations(self._time, self.count)
        if not active:
            raise SchedulerError(f"empty activation set at t={self._time}")
        if any(not (0 <= i < self.count) for i in active):
            raise SchedulerError(f"activation set {sorted(active)} out of range")

        # One round spans 3 nominal time units (look/compute/move at
        # unit durations); the continuous clock of round r starts at 3r.
        base_time = 3.0 * now
        for i in sorted(active):
            self._push(base_time, _LOOK, i)

        if hook is not None:
            hook("compute", now)
        new_positions: Dict[int, Vec2] = {}
        move_times: Dict[int, float] = {}
        while self._heap:
            time, phase, robot, _ = self._pop()
            if time > self._clock:
                self._clock = time
            if phase == _LOOK:
                self._handle_look(time, robot, hook, now)
            elif phase == _COMPUTE:
                self._handle_compute(time, robot, hook, now)
            else:
                if rhook is not None:
                    rhook("move", robot, now)
                new_positions[robot] = self._pending_target[robot]
                self._pending_target[robot] = None
                move_times[robot] = time

        if hook is not None:
            hook("move", now)
        self._apply_moves(new_positions, move_times)

        if hook is not None:
            hook("record", now)
        step = TraceStep(
            time=self._time,
            active=frozenset(active),
            positions=tuple(self._positions),
        )
        self._trace.record(step)
        self._time += 1
        for listener in self._step_listeners:
            listener(self, step)
        if hook is not None:
            hook("end", now)
        return step

    def _step_free(self) -> TraceStep:
        """Pop events until one simultaneous move batch has applied.

        The recorded :class:`TraceStep` carries the ordinal step index
        as its integer ``time`` (the continuous clock is exposed as
        :attr:`clock`) and the batch's movers as its ``active`` set, so
        everything downstream of the trace stream — monitors, channels,
        observability — consumes the run unchanged.
        """
        if not self._heap:  # pragma: no cover - cycles self-perpetuate
            raise EventError("no pending events")
        hook = self._phase_hook
        rhook = self._robot_phase_hook
        now = self._time
        if hook is not None:
            hook("compute", now)
        new_positions: Dict[int, Vec2] = {}
        move_times: Dict[int, float] = {}
        while self._heap:
            time, phase, robot, _ = self._pop()
            if time < self._clock:
                raise EventError(
                    f"event clock ran backwards: popped t={time} at clock={self._clock}"
                )
            self._clock = time
            if phase == _LOOK:
                self._handle_look(time, robot, hook, now)
            elif phase == _COMPUTE:
                self._handle_compute(time, robot, hook, now)
            else:
                if rhook is not None:
                    rhook("move", robot, now)
                new_positions[robot] = self._pending_target[robot]
                self._pending_target[robot] = None
                move_times[robot] = time
                # Schedule the robot's next cycle: settle, then rest.
                settle = self._sample_phase("move", _MOVE, robot)
                self._push(time + settle + self._sample_gap(robot), _LOOK, robot)
                # The batch ends when no further move shares this
                # timestamp (same-time looks/computes popped already —
                # lower phase rank — and so observed pre-move).
                head = self._heap[0] if self._heap else None
                if head is None or head[0] != time or head[1] != _MOVE:
                    break

        if hook is not None:
            hook("move", now)
        self._apply_moves(new_positions, move_times)

        if hook is not None:
            hook("record", now)
        step = TraceStep(
            time=self._time,
            active=frozenset(new_positions),
            positions=tuple(self._positions),
        )
        self._trace.record(step)
        self._time += 1
        for listener in self._step_listeners:
            listener(self, step)
        if hook is not None:
            hook("end", now)
        return step

    # ------------------------------------------------------------------
    # Delayed observation
    # ------------------------------------------------------------------
    def _config_for_observation(self, index: int) -> Sequence[Vec2]:
        """What this robot's Look returns.

        Zero delay serves the live configuration object itself —
        preserving the identity-based observation-cache fast path, and
        with it byte-identity to the round engine.  With a delay model,
        each entry is the *latest position change whose release time
        has passed*: a change of ``j`` at ``t`` is visible from
        ``delay_fcn(j, index, t)`` after ``t``, never before — so a
        delayed Look can lag reality but can never see the future.
        """
        if not self._track_history:
            return self._positions
        now = self._clock
        delay_fcn = self._delay.delay_fcn
        config: List[Vec2] = []
        for j in range(self.count):
            if j == index:
                # A robot senses itself live (its own odometry, not a
                # sighting that has to propagate).
                config.append(self._positions[j])
                continue
            history = self._history[j]
            position = history[0][1]
            for changed_at, changed_to in reversed(history):
                if changed_at <= 0.0:
                    position = changed_to
                    break
                lag = delay_fcn(j, index, changed_at)
                if lag < 0.0:
                    raise EventError(
                        f"delay model returned a negative delay {lag!r} "
                        f"for sender={j} receiver={index} t={changed_at}"
                    )
                if changed_at + lag <= now:
                    position = changed_to
                    break
            config.append(position)
        return config

    def displace(self, index: int, position: Vec2) -> None:
        """Fault injection; the change enters the visibility history."""
        super().displace(index, position)
        if self._track_history:
            self._history[index].append((self._clock, position))

    # ------------------------------------------------------------------
    # Huge-swarm hooks
    # ------------------------------------------------------------------
    def _world_visibility_radius(self) -> Optional[float]:
        return self._visibility_radius

    def _compute_visible_from(self, index: int) -> frozenset:
        if self._grid is None:
            return super()._compute_visible_from(index)
        me = self._anchors[index]
        visible = {index}
        for point in self._grid.neighbors_within(me, self._visibility_radius):
            visible.add(self._point_index[point])
        return frozenset(visible)

    def _initial_local_view(
        self,
        index: int,
        robot: Robot,
        visible: frozenset,
        positions: Sequence[Vec2],
    ) -> Sequence[Optional[Vec2]]:
        if not self._lazy_views:
            return super()._initial_local_view(index, robot, visible, positions)
        return _LazyLocalView(
            robot.frame.to_local,
            self._anchors[index],
            self._anchors,
            visible,
            self.count,
        )
