"""Per-robot timing models: phase durations and activation gaps.

A :class:`TimingModel` bundles the four duration distributions of one
Look-Compute-Move cycle:

* ``look`` — from the Look snapshot to the Compute decision;
* ``compute`` — from the decision to the (instantaneous) Move;
* ``move`` — settling time after the Move before the robot may rest;
* ``gap`` — idle time between cycles (the activation gap).

Two operating modes:

* **scheduler-driven** (:meth:`TimingModel.round_emulation`): the
  engine asks a classic :class:`~repro.model.scheduler.Scheduler` for
  activation sets and emulates rounds exactly — all phase durations 1,
  zero delay, byte-identical traces to the round engine (enforced by
  ``python -m repro.verify --event-oracle``);
* **free-running** (:meth:`TimingModel.free`): no scheduler at all —
  each robot cycles on its own clock, drawing every duration from its
  private RNG stream.  ``max_gap`` clamps the activation gap, which
  bounds the time between consecutive Looks of any robot by
  ``look + compute + move + max_gap`` — the continuous-time analogue
  of the round schedulers' fairness bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import EventError
from repro.events.distributions import Deterministic, Distribution

__all__ = ["TimingModel"]


@dataclass(frozen=True)
class TimingModel:
    """Duration distributions of one robot activation cycle."""

    look: Distribution
    compute: Distribution
    move: Distribution
    gap: Distribution
    #: when True the engine replays a round :class:`Scheduler` instead
    #: of free-running the per-robot clocks.
    scheduler_driven: bool = False
    #: free mode: hard clamp on every activation-gap draw (fairness).
    max_gap: Optional[float] = None
    #: free mode: when True every robot's first Look fires at t=0 (the
    #: Section 4.2 assumption "all the robots are awake in t0");
    #: otherwise first Looks fire after one gap draw.
    activate_all_first: bool = True

    def __post_init__(self) -> None:
        for name in ("look", "compute", "move", "gap"):
            value = getattr(self, name)
            if not isinstance(value, Distribution):
                raise EventError(
                    f"timing field {name!r} must be a Distribution, got {value!r}"
                )
        if self.max_gap is not None and not (
            self.max_gap > 0.0 and math.isfinite(self.max_gap)
        ):
            raise EventError(f"max_gap must be finite and > 0, got {self.max_gap!r}")

    @classmethod
    def round_emulation(cls) -> "TimingModel":
        """The oracle configuration: unit phases, scheduler-driven."""
        one = Deterministic(1.0)
        return cls(look=one, compute=one, move=one, gap=one, scheduler_driven=True)

    @classmethod
    def free(
        cls,
        *,
        look: Optional[Distribution] = None,
        compute: Optional[Distribution] = None,
        move: Optional[Distribution] = None,
        gap: Optional[Distribution] = None,
        max_gap: Optional[float] = None,
        activate_all_first: bool = True,
    ) -> "TimingModel":
        """A free-running model; omitted phases default to 1 time unit."""
        one = Deterministic(1.0)
        return cls(
            look=look or one,
            compute=compute or one,
            move=move or one,
            gap=gap or one,
            scheduler_driven=False,
            max_gap=max_gap,
            activate_all_first=activate_all_first,
        )

    def sample_gap(self, rng) -> float:
        """One activation-gap draw, fairness-clamped in free mode."""
        value = self.gap.sample(rng)
        if not (value >= 0.0 and math.isfinite(value)):
            raise EventError(f"gap distribution produced {value!r}")
        if self.max_gap is not None and value > self.max_gap:
            return self.max_gap
        return value

    def sample_phase(self, name: str, rng) -> float:
        """One phase-duration draw (``look``/``compute``/``move``)."""
        value = getattr(self, name).sample(rng)
        if not (value >= 0.0 and math.isfinite(value)):
            raise EventError(f"{name} distribution produced {value!r}")
        return value
