"""Exception hierarchy for the whole library.

Every error raised by ``repro`` derives from :class:`ReproError`, so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GeometryError",
    "AmbiguousDirectionError",
    "ModelError",
    "SchedulerError",
    "EventError",
    "ProtocolError",
    "DecodingError",
    "NamingError",
    "CodingError",
    "ChannelError",
    "ChannelDownError",
    "TraceFormatError",
    "ObservabilityError",
    "CampaignError",
    "CellTimeoutError",
    "ServeError",
    "SessionRejectedError",
    "UnknownSessionError",
]


class ReproError(Exception):
    """Base class of all library-specific errors."""


class GeometryError(ReproError):
    """A geometric construction failed or was fed degenerate input."""


class AmbiguousDirectionError(GeometryError):
    """An observed displacement cannot be mapped to a unique slice.

    Raised by :meth:`repro.geometry.granular.Granular.classify` when a
    position is at the disc centre or falls between diameters.
    """


class ModelError(ReproError):
    """The SSM simulation was configured or driven inconsistently."""


class SchedulerError(ModelError):
    """An activation scheduler produced an invalid activation set."""


class EventError(ModelError):
    """The event-driven engine was configured or driven inconsistently.

    Raised for invalid timing/delay parameters (negative durations,
    negative observation delays) and for event-queue contract breaches
    (a popped event older than the engine clock)."""


class ProtocolError(ReproError):
    """A movement protocol reached an inconsistent state."""


class DecodingError(ProtocolError):
    """An observer could not decode another robot's movement."""


class NamingError(ReproError):
    """A naming scheme could not produce the required labelling."""


class CodingError(ReproError):
    """Message encoding or decoding failed."""


class ChannelError(ReproError):
    """A high-level communication channel failed."""


class ChannelDownError(ChannelError):
    """The (simulated) wireless device is unavailable."""


class TraceFormatError(ReproError):
    """A serialized trace or obs run is truncated, garbled, or of an
    unknown schema version.

    Raised with the offending line number, so a corrupt multi-gigabyte
    JSONL recording points at the bad line instead of dying in a bare
    ``KeyError`` deep inside the parser.
    """


class ObservabilityError(ReproError):
    """The observability layer was used inconsistently (duplicate
    metric types, malformed spans, double-attached recorders)."""


class CampaignError(ReproError):
    """A campaign spec, store, or run was used inconsistently.

    Raised for malformed or colliding specs, a result store that holds
    a *different* campaign than the one being run, or re-running into a
    populated store without ``--resume``.
    """


class CellTimeoutError(CampaignError):
    """A campaign cell exceeded its per-cell wall-clock budget.

    Raised *inside the worker* by the SIGALRM watchdog; the runner
    converts it into a ``timeout`` attempt outcome (retried with
    backoff, then recorded as failed — never silently dropped).
    """


class ServeError(ReproError):
    """The serving layer (:mod:`repro.serve`) was used inconsistently.

    Raised for malformed session specs, operations on closed or failed
    sessions, and serving-infrastructure contract breaches.
    """


class SessionRejectedError(ServeError):
    """The service refused new work under load (HTTP-429 semantics).

    Carries ``code = 429``.  Raised when the pending-step queue is at
    its high watermark; the service accepts again once the queue drains
    to the low watermark (hysteresis, so admission does not flap).
    Clients are expected to back off and retry.
    """

    code = 429


class UnknownSessionError(ServeError):
    """No session with the given id exists (HTTP-404 semantics).

    Carries ``code = 404``.  Raised for operations addressed to a
    session id that was never created or has already been closed.
    """

    code = 404
