"""The vectorized granular-protocol kernel.

The scalar pipeline runs one ``SyncGranularProtocol`` instance per
robot, and each activation decodes *every* peer — O(n^2) Python work
per instant, O(n^3) once binding (per-robot Voronoi/naming
preprocessing) is counted.  For swarms of 10k-100k robots this kernel
replaces the per-robot objects with whole-swarm array state:

* **activation bookkeeping** (activation counts, outbound flags,
  dilation holds, queued-bit flags) as flat arrays;
* **decode** as an off-home scan in the *world* frame: a robot is off
  its home iff its distance from its anchor exceeds
  ``off_home_fraction * granular_radius`` — the scalar engine tests the
  same ratio in each observer's local frame, and the two agree because
  the comparison is scale-invariant and both sides sit far from the
  threshold (homes are within float-drift of the anchor, excursions at
  ``excursion_fraction``-scale distances, the threshold in between);
* **per-sender arming** as boolean columns: ``armed[j][o]`` mirrors
  observer ``o``'s ``_peer_was_home[j]`` flag, updated with whole
  activation sets at once;
* **movement** split into a vectorized *stay* pass for silent robots
  (the exact ``to_world(to_local(p))`` round trip of the scalar
  engine, mirrored operation-for-operation) and a scalar pass for the
  few *engaged* robots (queued bits, returns, dilation holds), which
  runs the genuine :class:`~repro.geometry.granular.Granular` /
  :class:`~repro.geometry.frames.Frame` arithmetic.

Byte parity
-----------

Kernel-driven excursions land exactly on a labelled diameter, so every
armed observer decodes the same ``(dst, bit)`` the sender encoded — no
classification needed.  Whenever a robot is off home for any *other*
reason (a :meth:`displace` fault, or a movement clamped short of its
target), the kernel drops to per-observer scalar classification with
the observer's own local-frame granular, reproducing the scalar
decoder's ambiguity tolerance decisions bit-for-bit.

The one intentional divergence: when a decode raises (an intolerant
``AmbiguousDirectionError``), the exception and its instant match the
scalar engine, but the *partial* protocol state left behind mid-step is
unspecified — the scalar engine interleaves observer loops differently
and its mid-exception state is equally unusable.

Scale limits
------------

``received`` logs are always maintained (one event per delivered bit).
``overheard`` logs record one event per (event, observer) pair — an
inherently O(n)-per-bit cost — and are therefore only maintained up to
``overheard_limit`` robots; above that the view's ``overheard``
accessor raises instead of silently returning wrong data.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.batch import require_numpy
from repro.batch.neighbors import exact_min_hypot, nearest_neighbor_sq
from repro.errors import AmbiguousDirectionError, ProtocolError
from repro.geometry.granular import Granular
from repro.geometry.vec import Vec2
from repro.model.protocol import BindingInfo, BitEvent
from repro.protocols.sync_granular import SyncGranularProtocol

__all__ = ["GranularKernel", "KernelProtocolView", "kernel_eligible"]

#: beyond this swarm size the per-observer overheard logs are disabled
DEFAULT_OVERHEARD_LIMIT = 4096

_NORTH = Vec2(0.0, 1.0)


def kernel_eligible(robots: Sequence) -> bool:
    """Whether the vectorized kernel can replace these protocols.

    Requires the plain :class:`SyncGranularProtocol` (no subclass) with
    one shared configuration, right-handed frames, and either rotation-
    free frames (the sense-of-direction regimes the ``identified`` and
    ``sod`` namings assume) or the rotation-invariant ``sec`` naming.
    Ineligible swarms run in the object-mode batch pipeline instead.
    """
    if len(robots) < 2:
        return False
    first = robots[0].protocol
    if type(first) is not SyncGranularProtocol:
        return False
    config = _config_of(first)
    for robot in robots:
        protocol = robot.protocol
        if type(protocol) is not SyncGranularProtocol:
            return False
        if _config_of(protocol) != config:
            return False
        if robot.frame.handedness != 1:
            return False
        if config[0] != "sec" and robot.frame.rotation != 0.0:
            return False
    return True


def _config_of(protocol: SyncGranularProtocol) -> Tuple:
    return (
        protocol._naming,
        protocol._excursion_fraction,
        protocol._max_directions,
        protocol._dilation,
        protocol._off_home_fraction,
        protocol._tolerate_ambiguity,
    )


class _SenderView:
    """A sender's own-frame protocol constants (lazily built, cached)."""

    __slots__ = ("granular", "step_out", "labels", "inverse", "home")

    def __init__(self, granular, step_out, labels, inverse, home):
        self.granular = granular
        self.step_out = step_out
        self.labels = labels
        self.inverse = inverse
        self.home = home


class GranularKernel:
    """Array-state execution of one ``SyncGranularProtocol`` swarm."""

    def __init__(
        self,
        robots: Sequence,
        arrays,
        stats,
        overheard_limit: int = DEFAULT_OVERHEARD_LIMIT,
    ) -> None:
        np = require_numpy()
        self._np = np
        self._robots = robots
        self._arrays = arrays
        n = arrays.n
        self._n = n
        template = robots[0].protocol
        (
            self._naming,
            self._excursion_fraction,
            self._max_directions,
            self._dilation,
            self._off_home_fraction,
            self._tolerate,
        ) = _config_of(template)

        ids = [r.observable_id for r in robots]
        self._identified = all(v is not None for v in ids)
        self._observable_ids: Optional[Tuple[int, ...]] = (
            tuple(ids) if self._identified else None
        )

        registry = stats.registry
        self._c_neighbor = registry.counter("batch_neighbor_passes")
        self._c_realloc = registry.counter("batch_array_reallocs")

        # Per-robot protocol state, SoA.
        self._outbound = np.ones(n, dtype=bool)
        self._hold_remaining = np.zeros(n, dtype=np.int64)
        self._has_queue = np.zeros(n, dtype=bool)
        self._activations = np.zeros(n, dtype=np.int64)
        self._is_active = np.zeros(n, dtype=bool)

        # Sparse per-robot state (touched only by engaged/tracked robots).
        self._queues: Dict[int, Deque[Tuple[int, int]]] = {}
        self._hold_local: Dict[int, Vec2] = {}
        self._sender_views: Dict[int, _SenderView] = {}
        self._armed: Dict[int, object] = {}
        self._excursions: Dict[int, Tuple[int, int]] = {}
        self._displaced: Set[int] = set()
        self._received: Dict[int, List[BitEvent]] = {}
        self._overheard: Dict[int, List[BitEvent]] = {}
        self._overheard_enabled = n <= overheard_limit

        # Lazily built per-observer caches (anchor-local columns and
        # tuples, per-(observer, subject) granulars) for the scalar
        # parity paths.
        self._local_columns: Dict[int, Tuple[object, object]] = {}
        self._local_tuples: Dict[int, Tuple[Vec2, ...]] = {}
        self._observer_granulars: Dict[Tuple[int, int], Granular] = {}
        self._observer_inverses: Dict[Tuple[int, int], Dict[int, int]] = {}
        self._common_inverse: Optional[Dict[int, int]] = None
        self._common_labels: Optional[Dict[int, int]] = None
        self._views: Dict[int, "KernelProtocolView"] = {}

        self._validate_bind()

        # World-frame granular radii (half nearest-anchor distances):
        # the off-home thresholds of the decode scan.
        dist_sq, _ = nearest_neighbor_sq(arrays.ax, arrays.ay)
        self._c_neighbor.inc()
        radius_w = np.sqrt(dist_sq) / 2.0
        thr = self._off_home_fraction * radius_w
        self._thr_sq = thr * thr

    # ------------------------------------------------------------------
    # Construction-time validation (parity with the scalar bind chain)
    # ------------------------------------------------------------------
    def _validate_bind(self) -> None:
        n = self._n
        for robot in self._robots:
            if robot.protocol._info is not None:
                raise ProtocolError(
                    "protocol instance already bound; every robot needs "
                    "its own instance"
                )
        if n < 2:
            raise ProtocolError("granular routing needs at least 2 robots")
        if self._max_directions is not None and 2 * n > self._max_directions:
            raise ProtocolError(
                f"cannot distinguish {2 * n} slice directions with a "
                f"resolution of {self._max_directions}; use SyncLogKProtocol"
            )
        if self._naming == "identified":
            if self._observable_ids is None:
                raise ProtocolError(
                    "naming='identified' requires an identified system "
                    "(every robot needs an observable_id)"
                )
            from repro.naming.identified import identified_labels

            self._common_labels = identified_labels(self._observable_ids)
        elif self._naming == "sod":
            # Robot 0's bind computes the common order first; evaluate
            # it on robot 0's exact local view so near-tie rejections
            # surface with the scalar's error.
            from repro.naming.sod import sod_labels

            self._common_labels = sod_labels(self._local_tuple(0))
        else:  # sec
            self._validate_sec_centre()

    def _validate_sec_centre(self) -> None:
        """No robot may sit at the SEC centre (horizon undefined).

        The scalar bind evaluates this per subject in each robot's
        local frame with an absolute 1e-9 tolerance; the kernel checks
        the same tolerance in robot 0's units, which is exact for every
        non-pathological configuration (robots are either clearly off
        the centre or exactly on it).
        """
        np = self._np
        from repro.batch.sec import batch_sec
        from repro.errors import NamingError

        arrays = self._arrays
        circle, _ = batch_sec(arrays.ax, arrays.ay)
        scale0 = float(arrays.scale[0])
        off = (
            np.hypot(arrays.ax - circle.center.x, arrays.ay - circle.center.y)
            / scale0
        )
        bad = np.nonzero(off <= 1e-9)[0]
        if len(bad):
            s = int(bad[0])
            raise NamingError(
                f"subject robot {s} is at the SEC centre: horizon line undefined"
            )

    # ------------------------------------------------------------------
    # Per-observer parity caches
    # ------------------------------------------------------------------
    def _anchor_local_columns(self, o: int):
        """All anchors in observer ``o``'s frame (mirrored transform)."""
        cached = self._local_columns.get(o)
        if cached is None:
            a = self._arrays
            dx = a.ax - a.ax[o]
            dy = a.ay - a.ay[o]
            lx = (dx * a.xaxx[o] + dy * a.xaxy[o]) / a.scale[o]
            ly = (dx * a.yaxx[o] + dy * a.yaxy[o]) / a.scale[o]
            cached = (lx, ly)
            self._local_columns[o] = cached
            self._c_realloc.inc()
        return cached

    def _local_tuple(self, o: int) -> Tuple[Vec2, ...]:
        cached = self._local_tuples.get(o)
        if cached is None:
            lx, ly = self._anchor_local_columns(o)
            cached = tuple(
                Vec2(float(x), float(y)) for x, y in zip(lx, ly)
            )
            self._local_tuples[o] = cached
        return cached

    def _zero_direction(self, o: int, subject: int) -> Vec2:
        if self._naming in ("identified", "sod"):
            return _NORTH
        from repro.naming.sec_naming import horizon_direction

        return horizon_direction(self._local_tuple(o), subject)

    def _local_radius(self, o: int, subject: int) -> float:
        """``granular_radius`` of ``subject`` in ``o``'s local frame.

        Bit-identical to the scalar ``min(math.hypot(...)) / 2.0``
        chain via :func:`exact_min_hypot`.
        """
        np = self._np
        lx, ly = self._anchor_local_columns(o)
        keep = np.arange(self._n) != subject
        return exact_min_hypot(lx[keep] - lx[subject], ly[keep] - ly[subject]) / 2.0

    def observer_granular(self, o: int, subject: int) -> Granular:
        """Observer ``o``'s granular for ``subject`` (scalar-exact)."""
        key = (o, subject)
        cached = self._observer_granulars.get(key)
        if cached is None:
            lx, ly = self._anchor_local_columns(o)
            cached = Granular(
                center=Vec2(float(lx[subject]), float(ly[subject])),
                radius=self._local_radius(o, subject),
                num_diameters=self._n,
                zero_direction=self._zero_direction(o, subject),
                sweep=-1,
            )
            self._observer_granulars[key] = cached
        return cached

    def _observer_inverse(self, o: int, j: int) -> Dict[int, int]:
        """Label -> index map of sender ``j`` as observer ``o`` derives it.

        The parity-critical detail of the ``sec`` naming: each observer
        reconstructs the sender's labelling *in its own frame*, so the
        classification path must resolve labels with the observer-side
        map, exactly like the scalar ``self._inverse[j]``.
        """
        if self._naming != "sec":
            inverse = self._common_inverse
            if inverse is None:
                assert self._common_labels is not None
                inverse = self._common_inverse = {
                    label: index for index, label in self._common_labels.items()
                }
            return inverse
        key = (o, j)
        cached = self._observer_inverses.get(key)
        if cached is None:
            from repro.naming.sec_naming import relative_labels

            labels = relative_labels(self._local_tuple(o), j)
            cached = {label: index for index, label in labels.items()}
            self._observer_inverses[key] = cached
        return cached

    def sender_view(self, s: int) -> _SenderView:
        """Sender ``s``'s own-frame granular, labels and step length (cached)."""
        view = self._sender_views.get(s)
        if view is None:
            robot = self._robots[s]
            granular = self.observer_granular(s, s)
            if self._naming == "sec":
                from repro.naming.sec_naming import relative_labels

                labels = relative_labels(self._local_tuple(s), s)
            else:
                assert self._common_labels is not None
                labels = dict(self._common_labels)
            inverse = {label: index for index, label in labels.items()}
            sigma_local = robot.sigma / robot.frame.scale
            step_out = min(
                self._excursion_fraction * granular.radius, sigma_local
            )
            view = _SenderView(
                granular=granular,
                step_out=step_out,
                labels=labels,
                inverse=inverse,
                home=granular.center,
            )
            self._sender_views[s] = view
        return view

    # ------------------------------------------------------------------
    # Queue surface (the protocol views call into these)
    # ------------------------------------------------------------------
    def send_bit(self, index: int, dst: int, bit: int) -> None:
        """Queue one bit from robot ``index`` (scalar-parity validation)."""
        if bit not in (0, 1):
            raise ProtocolError(f"bit must be 0 or 1, got {bit!r}")
        if not (0 <= dst < self._n):
            raise ProtocolError(f"destination index {dst} out of range")
        if dst == index:
            raise ProtocolError("a robot cannot address a movement-bit to itself")
        queue = self._queues.get(index)
        if queue is None:
            queue = self._queues[index] = deque()
        queue.append((dst, bit))
        self._has_queue[index] = True

    def pending_bits(self, index: int) -> int:
        """Queued bits of robot ``index`` not yet transmitted."""
        queue = self._queues.get(index)
        return len(queue) if queue is not None else 0

    def received_of(self, index: int) -> Tuple[BitEvent, ...]:
        """Bits addressed to robot ``index``, in decoding order."""
        return tuple(self._received.get(index, ()))

    def overheard_of(self, index: int) -> Tuple[BitEvent, ...]:
        """Every bit robot ``index`` decoded (raises above the size limit)."""
        if not self._overheard_enabled:
            raise ProtocolError(
                f"overheard logs are disabled for batch swarms larger than "
                f"the overheard limit (n={self._n}); use the scalar backend "
                f"or raise overheard_limit"
            )
        return tuple(self._overheard.get(index, ()))

    def activations_of(self, index: int) -> int:
        """How many times robot ``index`` has been activated."""
        return int(self._activations[index])

    def view(self, index: int) -> "KernelProtocolView":
        """The protocol-shaped view of robot ``index`` (cached)."""
        view = self._views.get(index)
        if view is None:
            view = self._views[index] = KernelProtocolView(self, index)
        return view

    def binding_info(self, index: int) -> BindingInfo:
        """The :class:`BindingInfo` robot ``index`` would have been bound with."""
        robot = self._robots[index]
        return BindingInfo(
            index=index,
            count=self._n,
            sigma=robot.sigma / robot.frame.scale,
            initial_positions=self._local_tuple(index),
            observable_ids=self._observable_ids,
            visibility_radius=None,
        )

    def notify_displaced(self, index: int) -> None:
        """A :meth:`displace` fault moved this robot out-of-band."""
        self._excursions.pop(index, None)
        self._displaced.add(index)

    # ------------------------------------------------------------------
    # The decode phase (observers, before any movement of the instant)
    # ------------------------------------------------------------------
    def decode(self, time: int, active_arr) -> None:
        """The observation phase of one instant, for all active robots.

        Scans every *tracked* robot (armed, excursed or displaced) once
        in the world frame and updates per-sender arming columns with
        whole activation sets; per-observer scalar classification runs
        only for unexplained off-home positions.
        """
        np = self._np
        a = self._arrays
        self._activations[active_arr] += 1
        tracked = set(self._armed)
        tracked.update(self._excursions)
        tracked.update(self._displaced)
        if not tracked:
            return
        is_active = self._is_active
        is_active[active_arr] = True
        try:
            for j in sorted(tracked):
                dx = float(a.px[j]) - float(a.ax[j])
                dy = float(a.py[j]) - float(a.ay[j])
                off = dx * dx + dy * dy > self._thr_sq[j]
                armed = self._armed.get(j)
                if not off:
                    # At home: every active observer re-arms for j.
                    if armed is not None:
                        armed[active_arr] = True
                    self._displaced.discard(j)
                    continue
                if armed is None:
                    armed = self._armed[j] = np.ones(self._n, dtype=bool)
                    self._c_realloc.inc()
                newly = active_arr[armed[active_arr]]
                newly = newly[newly != j]
                excursion = self._excursions.get(j)
                if excursion is not None:
                    if len(newly):
                        dst, bit = excursion
                        event = BitEvent(time=time, src=j, dst=dst, bit=bit)
                        if self._overheard_enabled:
                            for o in newly.tolist():
                                self._observer_log(o).append(event)
                        if dst != j and is_active[dst] and armed[dst]:
                            self._received.setdefault(dst, []).append(event)
                    armed[active_arr] = False
                else:
                    # Unexplained off-home position (displacement or a
                    # clamped-short move): per-observer scalar decode.
                    self._decode_unexplained(time, j, newly, armed, active_arr)
        finally:
            is_active[active_arr] = False

    def _decode_unexplained(self, time, j, newly, armed, active_arr) -> None:
        position_j = self._arrays.position(j)
        skipped: List[int] = []
        for o in newly.tolist():
            robot = self._robots[o]
            local = robot.frame.to_local(position_j, self._arrays.anchor(o))
            granular = self.observer_granular(o, j)
            try:
                label, positive = granular.classify(local)
            except AmbiguousDirectionError:
                if self._tolerate:
                    # Skipped without disarming — the scalar decoder
                    # leaves the observer armed for the next look.
                    skipped.append(o)
                    continue
                raise
            dst = self._observer_inverse(o, j).get(label)
            if dst is None:  # pragma: no cover - labels are dense
                raise ProtocolError(f"diameter {label} of robot {j} is unassigned")
            event = BitEvent(time=time, src=j, dst=dst, bit=0 if positive else 1)
            if self._overheard_enabled:
                self._observer_log(o).append(event)
            if dst == o:
                self._received.setdefault(o, []).append(event)
        armed[active_arr] = False
        if skipped:
            # Re-arm the tolerated-ambiguity observers: the scalar
            # decoder's `continue` leaves their flag untouched.
            armed[self._np.asarray(skipped, dtype="int64")] = True

    def _observer_log(self, o: int) -> List[BitEvent]:
        log = self._overheard.get(o)
        if log is None:
            log = self._overheard[o] = []
        return log

    # ------------------------------------------------------------------
    # The movement phase
    # ------------------------------------------------------------------
    def compute_moves(self, active_arr):
        """Destinations of all active robots.

        Returns ``(silent_idx, wx, wy, engaged_moves)`` — the
        vectorized stay targets of the silent majority, plus a list of
        ``(index, Vec2)`` scalar-computed moves for the engaged few.
        """
        a = self._arrays
        engaged_mask = (
            (self._hold_remaining[active_arr] > 0)
            | ~self._outbound[active_arr]
            | self._has_queue[active_arr]
        )
        silent_idx = active_arr[~engaged_mask]
        engaged_idx = active_arr[engaged_mask]
        wx, wy = a.stay_targets(silent_idx)

        engaged_moves: List[Tuple[int, Vec2]] = []
        for j in engaged_idx.tolist():
            engaged_moves.append((j, self._engaged_move(j)))
        return silent_idx, wx, wy, engaged_moves

    def _engaged_move(self, j: int) -> Vec2:
        a = self._arrays
        robot = self._robots[j]
        view = self.sender_view(j)
        popped: Optional[Tuple[int, int]] = None
        if self._hold_remaining[j] > 0:
            self._hold_remaining[j] -= 1
            local = self._hold_local[j]
        elif not self._outbound[j]:
            self._outbound[j] = True
            local = self._held(j, view.home)
        else:
            queue = self._queues[j]
            popped = queue.popleft()
            if not queue:
                self._has_queue[j] = False
            dst, bit = popped
            label = view.labels[dst]
            self._outbound[j] = False
            local = self._held(
                j,
                view.granular.target_point(
                    label, positive=(bit == 0), distance=view.step_out
                ),
            )
        anchor = a.anchor(j)
        world = robot.frame.to_world(local, anchor)
        current = a.position(j)
        clamped = current.clamped_toward(world, robot.sigma)

        # Excursion tracking: only position *changes* alter what the
        # observers will see next instant.
        if clamped != current:
            if clamped == anchor:
                self._excursions.pop(j, None)
                self._displaced.discard(j)
            elif popped is not None and clamped == world:
                self._excursions[j] = popped
                self._displaced.discard(j)
            else:
                # A clamped-short or otherwise unexplainable landing:
                # observers must classify it, exactly like a fault.
                self._excursions.pop(j, None)
                self._displaced.add(j)
        return clamped

    def _held(self, j: int, local: Vec2) -> Vec2:
        self._hold_remaining[j] = self._dilation - 1
        self._hold_local[j] = local
        return local


class KernelProtocolView:
    """The protocol-shaped surface of one robot inside the kernel.

    Duck-types the :class:`~repro.model.protocol.Protocol` API that
    channels, monitors, applications and tests consume: bit queues,
    received/overheard logs, activation counts, binding info and the
    granular introspection helpers.  ``on_activate`` is deliberately
    absent — the kernel executes activations itself.
    """

    idle_silent = True

    __slots__ = ("_kernel", "_index", "_info")

    def __init__(self, kernel: GranularKernel, index: int) -> None:
        self._kernel = kernel
        self._index = index
        self._info: Optional[BindingInfo] = None

    @property
    def info(self) -> BindingInfo:
        if self._info is None:
            self._info = self._kernel.binding_info(self._index)
        return self._info

    def send_bit(self, dst: int, bit: int) -> None:
        """Queue one bit for the robot with tracking index ``dst``."""
        self._kernel.send_bit(self._index, dst, bit)

    def send_bits(self, dst: int, bits) -> None:
        """Queue a bit sequence for ``dst`` (in order)."""
        for bit in bits:
            self.send_bit(dst, bit)

    @property
    def pending_bits(self) -> int:
        return self._kernel.pending_bits(self._index)

    @property
    def received(self) -> Tuple[BitEvent, ...]:
        return self._kernel.received_of(self._index)

    @property
    def overheard(self) -> Tuple[BitEvent, ...]:
        return self._kernel.overheard_of(self._index)

    @property
    def activations(self) -> int:
        return self._kernel.activations_of(self._index)

    def labels_used_by(self, sender: int) -> Dict[int, int]:
        """The tracking-index -> diameter-label map of a sender."""
        if not (0 <= sender < self._kernel._n):
            raise ProtocolError(f"unknown sender {sender}")
        return dict(self._kernel.sender_view(sender).labels)

    def granular_of(self, index: int) -> Granular:
        """The granular of any robot, as this robot computes it."""
        if not (0 <= index < self._kernel._n):
            raise ProtocolError(f"unknown robot {index}")
        return self._kernel.observer_granular(self._index, index)
