"""The epoch-invalidated batch geometry facade.

:class:`BatchGeometry` is the array-backed counterpart of
:class:`repro.perf.cache.CachedGeometry` and obeys the same
configuration-epoch invalidation rules (docs/PERFORMANCE.md): owners
call :meth:`update` with the current epoch, the memo is cleared only
when the epoch advanced, and every accessor serves values derived from
the configuration of the last update — semantic transparency by
construction.

SEC and hull are computed by the batched modules; the quantities with
no array formulation yet (full Voronoi polygons, SEC-relative naming)
delegate to the scalar implementations on a lazily materialised
position tuple, so the facade is a drop-in for ``Simulator.geometry``
consumers.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional, Tuple, TypeVar

from repro.batch import require_numpy
from repro.batch.granular import granular_radii
from repro.batch.sec import batch_sec, convex_hull_indices
from repro.geometry.circle import Circle
from repro.geometry.convex import ConvexPolygon
from repro.geometry.vec import Vec2
from repro.geometry.voronoi import VoronoiCell, voronoi_diagram
from repro.perf.counters import PerfStats

__all__ = ["BatchGeometry"]

T = TypeVar("T")


class BatchGeometry:
    """Per-epoch memo of geometry derived from SoA position columns.

    Args:
        stats: counter block to record hits/misses into (the batch
            counters land in ``stats.registry``).
        enabled: when False every accessor recomputes (baseline mode).
    """

    def __init__(self, stats: Optional[PerfStats] = None, enabled: bool = True) -> None:
        self._np = require_numpy()
        self._stats = stats if stats is not None else PerfStats()
        self._enabled = enabled
        self._epoch: Optional[int] = None
        self._px = None
        self._py = None
        self._memo: Dict[Hashable, object] = {}
        registry = self._stats.registry
        self._neighbor_passes = registry.counter("batch_neighbor_passes")
        self._sec_fallbacks = registry.counter("batch_sec_fallbacks")

    # ------------------------------------------------------------------
    # Lifecycle (the CachedGeometry contract)
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> Optional[int]:
        """The epoch the cached values belong to (None before update)."""
        return self._epoch

    @property
    def positions(self) -> Tuple[Vec2, ...]:
        """The configuration the cached values were derived from."""
        return self._materialized()

    @property
    def enabled(self) -> bool:
        """Whether memoisation is active (False = recompute always)."""
        return self._enabled

    @property
    def stats(self) -> PerfStats:
        """The counter block this cache writes into."""
        return self._stats

    def update(self, epoch: int, columns: Callable[[], Tuple]) -> None:
        """Synchronise with the owner's configuration.

        ``columns`` is a factory returning ``(px, py)`` coordinate
        arrays; it is only called — and the arrays only copied — when
        the epoch advanced, at which point the memo is invalidated.
        """
        if self._epoch == epoch:
            return
        px, py = columns()
        self._epoch = epoch
        self._px = px.copy()
        self._py = py.copy()
        self._memo.clear()

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    def _derive(self, key: Hashable, compute: Callable[[], T]) -> T:
        if not self._enabled:
            return compute()
        try:
            value = self._memo[key]
        except KeyError:
            self._stats.cache_misses += 1
            value = self._memo[key] = compute()
            return value  # type: ignore[return-value]
        self._stats.cache_hits += 1
        return value  # type: ignore[return-value]

    def sec(self) -> Circle:
        """The smallest enclosing circle (batched; scalar on degeneracy)."""
        return self._derive("sec", self._compute_sec)

    def _compute_sec(self) -> Circle:
        circle, fell_back = batch_sec(self._px, self._py)
        if fell_back:
            self._sec_fallbacks.inc()
        return circle

    def hull(self) -> ConvexPolygon:
        """The convex hull of the configuration (vectorized chain)."""
        return self._derive("hull", self._compute_hull)

    def _compute_hull(self) -> ConvexPolygon:
        idx = convex_hull_indices(self._px, self._py)
        return ConvexPolygon(
            tuple(Vec2(float(self._px[i]), float(self._py[i])) for i in idx)
        )

    def granular_radii(self):
        """All granular radii (half nearest-neighbour distances) at once."""
        def compute():
            self._neighbor_passes.inc()
            return granular_radii(self._px, self._py)

        return self._derive("granular_radii", compute)

    def voronoi(self) -> Dict[Vec2, VoronoiCell]:
        """The Voronoi diagram (scalar; no array formulation yet)."""
        return self._derive("voronoi", lambda: voronoi_diagram(self._materialized()))

    def labels(self, subject: int, sweep: int = -1) -> Dict[int, int]:
        """The SEC-relative labelling of all robots for ``subject``."""
        from repro.naming.sec_naming import relative_labels

        return self._derive(
            ("labels", subject, sweep),
            lambda: relative_labels(self._materialized(), subject, sweep),
        )

    def horizon(self, subject: int) -> Vec2:
        """The outward horizon direction of ``subject`` (its North)."""
        from repro.naming.sec_naming import horizon_direction

        return self._derive(
            ("horizon", subject),
            lambda: horizon_direction(self._materialized(), subject),
        )

    # ------------------------------------------------------------------
    def _materialized(self) -> Tuple[Vec2, ...]:
        if self._px is None:
            return ()
        key = "__materialized__"
        cached = self._memo.get(key)
        if cached is None:
            cached = tuple(
                Vec2(float(x), float(y)) for x, y in zip(self._px, self._py)
            )
            self._memo[key] = cached
        return cached  # type: ignore[return-value]
