"""Batched pairwise-distance / nearest-neighbour passes.

This replaces the per-robot ``SpatialHashGrid`` queries of the scalar
perf layer with whole-swarm array passes:

* small swarms (``n <= brute_limit``) use a chunked brute-force
  distance matrix — simple, exact, cache-friendly;
* large swarms use grid binning: points are bucketed into square
  cells of roughly one point each, candidates are gathered from the
  3x3 cell window with one padded fancy-index per offset, and any
  point whose window could not certify its true nearest neighbour
  (found distance exceeds the cell size, or an overfull neighbour
  cell) falls back to chunked brute force for just that residue.

The guarantee behind the 3x3 window: a point inside cell ``(i, j)``
is at distance >= ``cell`` from everything outside the window, so a
candidate found at distance <= ``cell`` is certainly the true nearest.

``exact_min_hypot`` exists for bit-parity with the scalar engine:
``numpy.hypot`` and ``math.hypot`` may differ in the last ulp, so the
batch kernel computes candidate distances with numpy, then re-evaluates
the near-minimal candidates with ``math.hypot`` — the returned minimum
is bit-identical to ``min(math.hypot(...) for ...)`` over all pairs.
"""

from __future__ import annotations

import math

from repro.batch import require_numpy

__all__ = ["nearest_neighbor_sq", "nearest_neighbor_radii", "exact_min_hypot"]

#: swarms up to this size use the chunked distance matrix
BRUTE_LIMIT = 4096

#: relative slack when collecting near-minimal candidates for exact
#: re-evaluation; vastly wider than the <= 1 ulp numpy/math divergence
_EXACT_SLACK = 1e-12


def nearest_neighbor_sq(px, py, brute_limit: int = BRUTE_LIMIT):
    """Per-point squared distance to the closest *other* point.

    Args:
        px, py: float64 coordinate columns of ``n >= 2`` points.
            Duplicate points yield a squared distance of 0.

    Returns:
        ``(dist_sq, neighbor)`` — float64 and int64 arrays of length
        ``n``; ``neighbor[i]`` is the index of a closest other point.
    """
    np = require_numpy()
    n = len(px)
    if n < 2:
        raise ValueError("nearest_neighbor_sq needs at least two points")
    if n <= brute_limit:
        return _brute(np, px, py, np.arange(n), px, py)
    return _grid(np, px, py)


def nearest_neighbor_radii(px, py):
    """Half the nearest-neighbour distance of every point.

    The world-frame granular radii of the whole swarm in one pass
    (the batch analogue of :func:`repro.geometry.granular.
    granular_radius` looped over all robots).  Exact to float sqrt
    rounding — callers that need bit-parity with the scalar
    ``math.hypot`` chain use :func:`exact_min_hypot` on the winning
    candidates instead.
    """
    np = require_numpy()
    dist_sq, _ = nearest_neighbor_sq(px, py)
    return np.sqrt(dist_sq) / 2.0


def exact_min_hypot(dx, dy):
    """``min(math.hypot(dx[i], dy[i]))`` — bit-identical to the scalar min.

    Finds the minimum with vectorized ``np.hypot`` (within 1 ulp of
    the true per-element values), then re-evaluates every candidate
    within a tiny relative slack of that minimum with ``math.hypot``.
    The true scalar minimum is necessarily among those candidates.
    """
    np = require_numpy()
    if len(dx) == 0:
        raise ValueError("exact_min_hypot needs at least one element")
    approx = np.hypot(dx, dy)
    lo = float(approx.min())
    if lo == 0.0:
        return 0.0
    near = np.nonzero(approx <= lo * (1.0 + _EXACT_SLACK))[0]
    return min(math.hypot(float(dx[k]), float(dy[k])) for k in near)


# ----------------------------------------------------------------------
# Chunked brute force
# ----------------------------------------------------------------------

def _brute(np, qx, qy, qidx, px, py, budget: int = 4_000_000):
    """Nearest other point of each query against the full point set.

    ``qidx`` gives the global index of each query point so self-matches
    can be masked.  ``budget`` bounds the size of the per-chunk distance
    matrix (entries, ~8 bytes each).
    """
    n = len(px)
    m = len(qx)
    best = np.empty(m, dtype=np.float64)
    bestj = np.empty(m, dtype=np.int64)
    rows = max(1, budget // max(n, 1))
    for start in range(0, m, rows):
        end = min(start + rows, m)
        dx = qx[start:end, None] - px[None, :]
        dy = qy[start:end, None] - py[None, :]
        d2 = dx * dx + dy * dy
        d2[np.arange(end - start), qidx[start:end]] = np.inf
        best[start:end] = d2.min(axis=1)
        bestj[start:end] = d2.argmin(axis=1)
    return best, bestj


# ----------------------------------------------------------------------
# Grid binning
# ----------------------------------------------------------------------

#: cap on candidates gathered per neighbour cell; denser cells push
#: their *queriers* onto the brute-force residue instead of widening
#: the padded gather
_CELL_CAP = 64


def _grid(np, px, py):
    n = len(px)
    min_x = float(px.min())
    min_y = float(py.min())
    span = max(float(px.max()) - min_x, float(py.max()) - min_y)
    if span <= 0.0:
        # All points coincide: everyone's nearest neighbour is at 0.
        zeros = np.zeros(n, dtype=np.float64)
        nbr = np.arange(n, dtype=np.int64)
        nbr = (nbr + 1) % n
        return zeros, nbr
    side = max(1, int(math.sqrt(n)))
    cell = span / side
    ix = np.clip((px - min_x) // cell, 0, side - 1).astype(np.int64)
    iy = np.clip((py - min_y) // cell, 0, side - 1).astype(np.int64)
    key = ix * side + iy
    order = np.argsort(key, kind="stable")
    sorted_keys = key[order]

    best = np.full(n, np.inf, dtype=np.float64)
    bestj = np.full(n, -1, dtype=np.int64)
    overfull = np.zeros(n, dtype=bool)
    self_idx = np.arange(n, dtype=np.int64)

    for ox in (-1, 0, 1):
        for oy in (-1, 0, 1):
            nx = ix + ox
            ny = iy + oy
            valid = (nx >= 0) & (nx < side) & (ny >= 0) & (ny < side)
            nkey = nx * side + ny
            start = np.searchsorted(sorted_keys, nkey, side="left")
            end = np.searchsorted(sorted_keys, nkey, side="right")
            count = np.where(valid, end - start, 0)
            over = count > _CELL_CAP
            overfull |= over
            count = np.where(over, 0, count)
            cap = int(count.max()) if len(count) else 0
            if cap == 0:
                continue
            lanes = np.arange(cap, dtype=np.int64)
            slots = start[:, None] + lanes[None, :]
            take = lanes[None, :] < count[:, None]
            slots = np.where(take, slots, 0)
            cand = order[slots]
            cdx = px[cand] - px[:, None]
            cdy = py[cand] - py[:, None]
            d2 = cdx * cdx + cdy * cdy
            d2[~take] = np.inf
            d2[cand == self_idx[:, None]] = np.inf
            lane = d2.argmin(axis=1)
            val = d2[self_idx, lane]
            upd = val < best
            best[upd] = val[upd]
            bestj[upd] = cand[upd, lane[upd]]

    # Certified iff a candidate was found within one cell width; the
    # rest (sparse outskirts, overfull clusters) go to brute force.
    unresolved = overfull | ~(best <= cell * cell)
    if unresolved.any():
        ridx = np.nonzero(unresolved)[0]
        rb, rj = _brute(np, px[ridx], py[ridx], ridx, px, py)
        best[ridx] = rb
        bestj[ridx] = rj
    return best, bestj
