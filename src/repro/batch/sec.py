"""Batched smallest enclosing circle (Welzl-free candidate enumeration).

The scalar engine runs Welzl's randomised incremental algorithm
(:func:`repro.geometry.sec.smallest_enclosing_circle`) — expected
linear, but an inherently sequential Python loop.  The batch variant:

1. computes the convex hull with a vectorized monotone chain
   (``lexsort`` + one O(h) pass) — the SEC is determined by hull
   vertices only, and its farthest-point support always sits on the
   hull;
2. enumerates every hull pair and hull triple as a candidate circle
   with array ops (midpoint circles, circumcircles);
3. keeps candidates that enclose *all hull points* (enclosing the hull
   encloses the set) and takes the smallest;
4. re-derives the winning circle from its support points through the
   scalar :func:`~repro.geometry.circle.circle_from_two` /
   :func:`~repro.geometry.circle.circle_from_three`, so the returned
   ``Circle`` matches what Welzl builds from the same support.

Degenerate inputs — huge hulls, all-collinear sets, no valid candidate
within tolerance — fall back to the scalar Welzl implementation; the
engine counts those falls in the ``batch_sec_fallbacks`` metric.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.batch import require_numpy
from repro.geometry.circle import Circle, circle_from_three, circle_from_two
from repro.geometry.predicates import DEFAULT_EPS
from repro.geometry.sec import smallest_enclosing_circle
from repro.geometry.vec import Vec2

__all__ = ["batch_sec", "convex_hull_indices"]

#: hull sizes beyond this use scalar Welzl — the O(h^3) triple
#: enumeration stops paying for itself, and real swarm configurations
#: (rings, scatters) keep hulls far below it
HULL_CAP = 48


def convex_hull_indices(px, py):
    """Indices of the convex hull vertices, CCW (Andrew's chain).

    Mirrors :func:`repro.geometry.convex.convex_hull`: collinear
    boundary points are dropped; all-collinear inputs return the two
    lexicographic extremes; a single distinct point returns itself.
    """
    np = require_numpy()
    order = np.lexsort((py, px))
    # Drop exact duplicates (same x and y as the previous sorted point).
    sx, sy = px[order], py[order]
    keep = np.ones(len(order), dtype=bool)
    keep[1:] = (sx[1:] != sx[:-1]) | (sy[1:] != sy[:-1])
    order = order[keep]
    m = len(order)
    if m <= 2:
        return order
    pts_x, pts_y = px[order], py[order]

    def chain(seq):
        out = []
        for k in seq:
            while len(out) >= 2:
                a, b = out[-2], out[-1]
                cross = (pts_x[b] - pts_x[a]) * (pts_y[k] - pts_y[a]) - (
                    pts_y[b] - pts_y[a]
                ) * (pts_x[k] - pts_x[a])
                if cross <= 0.0:
                    out.pop()
                else:
                    break
            out.append(k)
        return out

    lower = chain(range(m))
    upper = chain(range(m - 1, -1, -1))
    hull = lower[:-1] + upper[:-1]
    if len(hull) < 3:
        return order[np.array([0, m - 1])]
    return order[np.array(hull)]


def batch_sec(px, py, eps: float = DEFAULT_EPS) -> Tuple[Circle, bool]:
    """The smallest enclosing circle of the point columns.

    Returns:
        ``(circle, fell_back)`` — the circle, and whether the scalar
        Welzl fallback handled this input (degenerate geometry or an
        oversized hull).
    """
    np = require_numpy()
    n = len(px)
    if n == 0:
        raise ValueError("smallest_enclosing_circle needs at least one point")
    if n == 1:
        return Circle(Vec2(float(px[0]), float(py[0])), 0.0), False

    hull = convex_hull_indices(px, py)
    h = len(hull)
    if h == 1:
        return Circle(Vec2(float(px[hull[0]]), float(py[hull[0]])), 0.0), False
    if h > HULL_CAP:
        return _scalar_fallback(px, py), True

    hx = px[hull]
    hy = py[hull]

    # --- pair candidates: diameter circles ---------------------------
    ii, jj = np.triu_indices(h, k=1)
    pcx = (hx[ii] + hx[jj]) / 2.0
    pcy = (hy[ii] + hy[jj]) / 2.0
    pr2 = (hx[ii] - pcx) ** 2 + (hy[ii] - pcy) ** 2

    cand_cx = pcx
    cand_cy = pcy
    cand_r2 = pr2
    cand_support = [(int(a), int(b), -1) for a, b in zip(ii, jj)]

    # --- triple candidates: circumcircles ----------------------------
    if h >= 3:
        ti, tj, tk = _triples(np, h)
        abx = hx[tj] - hx[ti]
        aby = hy[tj] - hy[ti]
        acx = hx[tk] - hx[ti]
        acy = hy[tk] - hy[ti]
        d = 2.0 * (abx * acy - aby * acx)
        ok = np.abs(d) > eps
        if ok.any():
            ti, tj, tk = ti[ok], tj[ok], tk[ok]
            abx, aby, acx, acy, d = abx[ok], aby[ok], acx[ok], acy[ok], d[ok]
            ab_sq = abx * abx + aby * aby
            ac_sq = acx * acx + acy * acy
            ux = (acy * ab_sq - aby * ac_sq) / d
            uy = (abx * ac_sq - acx * ab_sq) / d
            tcx = hx[ti] + ux
            tcy = hy[ti] + uy
            tr2 = (hx[ti] - tcx) ** 2 + (hy[ti] - tcy) ** 2
            cand_cx = np.concatenate([cand_cx, tcx])
            cand_cy = np.concatenate([cand_cy, tcy])
            cand_r2 = np.concatenate([cand_r2, tr2])
            cand_support.extend(
                (int(a), int(b), int(c)) for a, b, c in zip(ti, tj, tk)
            )

    # --- validity: the candidate must enclose every hull point -------
    # (containment check mirrors Circle.contains: dist <= r + eps)
    dist = np.sqrt(
        (hx[None, :] - cand_cx[:, None]) ** 2
        + (hy[None, :] - cand_cy[:, None]) ** 2
    )
    radius = np.sqrt(cand_r2)
    valid = (dist <= radius[:, None] + eps).all(axis=1)
    if not valid.any():
        return _scalar_fallback(px, py), True

    radius = np.where(valid, radius, np.inf)
    winner = int(radius.argmin())
    a, b, c = cand_support[winner]
    pa = Vec2(float(hx[a]), float(hy[a]))
    pb = Vec2(float(hx[b]), float(hy[b]))
    if c < 0:
        return circle_from_two(pa, pb), False
    pc = Vec2(float(hx[c]), float(hy[c]))
    circle: Optional[Circle] = circle_from_three(pa, pb, pc, eps)
    if circle is None:  # pragma: no cover - masked by the |d| > eps filter
        return _scalar_fallback(px, py), True
    return circle, False


def _triples(np, h: int):
    """All index triples ``i < j < k`` over ``range(h)`` as arrays."""
    idx = np.arange(h)
    ti, tj, tk = np.meshgrid(idx, idx, idx, indexing="ij")
    mask = (ti < tj) & (tj < tk)
    return ti[mask], tj[mask], tk[mask]


def _scalar_fallback(px, py) -> Circle:
    points = [Vec2(float(x), float(y)) for x, y in zip(px, py)]
    return smallest_enclosing_circle(points)
