"""``repro.batch`` — the vectorized struct-of-arrays simulation backend.

The scalar engine (:class:`repro.model.simulator.Simulator`) drives one
Python object per robot per instant, which caps practical swarm sizes
around a few hundred robots.  This package stores positions, local
frames, activation bookkeeping and protocol bit-state as flat NumPy
arrays and executes whole Look-Compute-Move rounds as array operations:

* :mod:`repro.batch.arrays` — the SoA swarm container and the
  vectorized frame transforms (bit-for-bit mirrors of
  :class:`~repro.geometry.frames.Frame` / :class:`~repro.geometry.vec.
  Vec2` arithmetic);
* :mod:`repro.batch.neighbors` — batched pairwise-distance and
  nearest-neighbour passes (the vectorized replacement for per-robot
  ``SpatialHashGrid`` queries);
* :mod:`repro.batch.sec` — Welzl-free smallest enclosing circle via
  vectorized candidate enumeration, with a scalar fallback for
  degenerate inputs;
* :mod:`repro.batch.granular` — batched granular radii and slice
  classification;
* :mod:`repro.batch.geometry` — the epoch-invalidated geometry facade
  (the :class:`~repro.perf.cache.CachedGeometry` contract, array-backed);
* :mod:`repro.batch.engine` — :class:`~repro.batch.engine.
  BatchSimulator`, a drop-in for the scalar simulator.

``numpy`` is an *optional* dependency (the ``[batch]`` extra).  Every
entry point degrades gracefully: :func:`available` probes without
raising, :func:`require_numpy` raises a clear ``ImportError``, and
:func:`make_simulator` falls back to the scalar engine when numpy is
absent (or, with ``strict=True``, refuses loudly).

Correctness is enforced by the scalar-vs-batch trace-equivalence
oracle (:mod:`repro.verify.backends`): same seed, byte-identical
traces, received bit streams and monitor verdicts across the protocol
x scheduler matrix.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

__all__ = [
    "available",
    "require_numpy",
    "make_simulator",
    "supports",
    "BACKENDS",
    "ENGINES",
    "NUMPY_HINT",
]

#: The selectable backend names (the ``backend=`` vocabulary).
BACKENDS = ("scalar", "batch")

#: The selectable engine names (the ``engine=`` vocabulary):
#: ``"rounds"`` steps every instant, ``"events"`` pops
#: ``(time, phase, robot)`` events off a heap (:mod:`repro.events`).
ENGINES = ("rounds", "events")

#: The one sentence every numpy-gated entry point repeats.
NUMPY_HINT = (
    "the batch backend needs numpy; install the optional extra with "
    "`pip install repro-deaf-dumb-chatting[batch]` (or `pip install numpy`), "
    "or select backend='scalar'"
)

_NUMPY = None
_PROBED = False


def _probe():
    """Import numpy once; cache the module (or the failure)."""
    global _NUMPY, _PROBED
    if not _PROBED:
        _PROBED = True
        try:
            import numpy
        except ImportError:
            _NUMPY = None
        else:
            _NUMPY = numpy
    return _NUMPY


def available() -> bool:
    """Whether the batch backend can run here (numpy importable).

    Benches and tests use this to *skip cleanly* instead of crashing;
    the default CI test job runs numpy-free to prove the fallback.
    """
    return _probe() is not None


def require_numpy():
    """Return the numpy module or raise a clear ``ImportError``."""
    numpy = _probe()
    if numpy is None:
        raise ImportError(NUMPY_HINT)
    return numpy


def supports(robots: Sequence, scheduler=None) -> bool:
    """Whether the batch engine can host this swarm at all.

    The batch engine implements the base SSM model (unlimited
    visibility, continuous plane).  Model-variant simulators (CORDA
    stale looks, limited visibility, discrete worlds) have no batch
    port yet and must stay scalar.
    """
    if not available():
        return False
    from repro.batch.engine import swarm_supported

    return swarm_supported(robots)


def make_simulator(
    robots: Sequence,
    scheduler=None,
    *,
    backend: str = "scalar",
    engine: str = "rounds",
    caching: bool = True,
    trace_policy=None,
    strict: bool = False,
    timing=None,
    delay=None,
    registry=None,
):
    """Build a simulator for ``robots`` behind a selectable backend.

    Args:
        backend: ``"scalar"`` (the classic per-object engine) or
            ``"batch"`` (the vectorized SoA engine).
        engine: ``"rounds"`` (instant-stepped, the default) or
            ``"events"`` (the event-queue engine of
            :mod:`repro.events`; scalar-only).  With the default
            round-emulation timing the two engines are byte-identical
            (``python -m repro.verify --event-oracle``).
        strict: with ``backend="batch"``, raise instead of degrading
            to scalar when numpy is missing or the swarm is out of the
            batch engine's envelope.
        timing / delay / registry: event-engine knobs (a
            :class:`~repro.events.timing.TimingModel`, a
            :class:`~repro.events.delay.DelayModel`, a
            :class:`~repro.obs.registry.MetricsRegistry`); only valid
            with ``engine="events"``.

    The two backends are trace-equivalent by construction — same
    robots, same scheduler, same seed produce byte-identical traces,
    received bit streams and final configurations (enforced by
    ``python -m repro.verify --backend-oracle``).
    """
    from repro.model.simulator import Simulator

    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r} (choose from {BACKENDS})")
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r} (choose from {ENGINES})")
    if engine == "events":
        if backend != "scalar":
            raise ValueError(
                "the event engine runs on the scalar backend only; "
                "use backend='scalar' (or engine='rounds' with backend='batch')"
            )
        from repro.events.engine import EventSimulator

        return EventSimulator(
            robots,
            scheduler,
            timing=timing,
            delay=delay,
            registry=registry,
            caching=caching,
            trace_policy=trace_policy,
        )
    if timing is not None or delay is not None or registry is not None:
        raise ValueError(
            "timing/delay/registry are event-engine knobs; pass engine='events'"
        )
    if backend == "batch":
        if not available():
            if strict:
                require_numpy()
            return Simulator(
                robots, scheduler, caching=caching, trace_policy=trace_policy
            )
        from repro.batch.engine import BatchSimulator, swarm_supported

        if not swarm_supported(robots):
            if strict:
                raise ValueError(
                    "the batch backend cannot host this swarm "
                    "(model-variant simulator required); use backend='scalar'"
                )
            return Simulator(
                robots, scheduler, caching=caching, trace_policy=trace_policy
            )
        return BatchSimulator(
            robots, scheduler, caching=caching, trace_policy=trace_policy
        )
    return Simulator(robots, scheduler, caching=caching, trace_policy=trace_policy)
