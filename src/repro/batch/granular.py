"""Batched granular-slice geometry.

Array analogues of :mod:`repro.geometry.granular`: whole-swarm granular
radii in one nearest-neighbour pass, and vectorized classification of
displaced positions onto labelled diameters (the decode primitive of
the slice protocols).

The vectorized classifier is a *geometric* batch operation: it serves
consumers that want to decode many sightings at once (tests, analysis,
the batch geometry facade).  The batch engine's byte-parity decode path
does not go through it — kernel-driven excursions carry their own
label, and fault-displaced robots are classified with the scalar
:meth:`~repro.geometry.granular.Granular.classify` so ambiguity
tolerances resolve exactly as the scalar engine would.
"""

from __future__ import annotations

import math

from repro.batch import require_numpy
from repro.batch.neighbors import nearest_neighbor_sq
from repro.geometry.predicates import DEFAULT_EPS

__all__ = ["granular_radii", "classify_offsets"]


def granular_radii(px, py):
    """Granular radius of every robot: half the nearest-neighbour distance.

    One vectorized pass over the whole configuration, replacing ``n``
    scalar :func:`repro.geometry.granular.granular_radius` calls.
    """
    np = require_numpy()
    dist_sq, _ = nearest_neighbor_sq(px, py)
    return np.sqrt(dist_sq) / 2.0


def classify_offsets(
    ox,
    oy,
    zero_x: float,
    zero_y: float,
    num_diameters: int,
    sweep: int = -1,
    angle_tolerance: float | None = None,
    eps: float = DEFAULT_EPS,
):
    """Vectorized :meth:`Granular.classify` over offset columns.

    Args:
        ox, oy: offsets from the granular centre (``point - center``),
            one row per sighting.
        zero_x, zero_y: the unit zero direction of diameter 0.
        num_diameters: ``m`` labelled diameters (``2m`` slices).
        sweep: labelling sweep direction, ``-1`` (clockwise) or ``+1``.
        angle_tolerance: maximum angular deviation from the nearest
            diameter; defaults to a quarter slice, like the scalar.
        eps: minimum offset norm considered a movement.

    Returns:
        ``(labels, positive, ambiguous)`` int64/bool/bool arrays.
        Ambiguous rows (at the centre, or between diameters) carry
        label ``-1``; the scalar classifier raises for those instead.
    """
    np = require_numpy()
    if num_diameters < 1:
        raise ValueError(f"granular needs at least one diameter, got {num_diameters}")
    if sweep not in (1, -1):
        raise ValueError(f"sweep must be +1 or -1, got {sweep}")
    slice_angle = math.pi / num_diameters
    if angle_tolerance is None:
        angle_tolerance = slice_angle / 4.0

    norm = np.hypot(ox, oy)
    at_center = norm <= eps

    raw = np.arctan2(oy, ox) - math.atan2(zero_y, zero_x)
    swept = np.mod(sweep * raw, 2.0 * math.pi)
    # mod of values within rounding of 2*pi can land back on 2*pi
    swept = np.where(swept >= 2.0 * math.pi, swept - 2.0 * math.pi, swept)

    nearest = np.round(swept / slice_angle)
    deviation = np.abs(swept - nearest * slice_angle)
    index = nearest.astype(np.int64) % (2 * num_diameters)

    ambiguous = at_center | (deviation > angle_tolerance)
    positive = index < num_diameters
    labels = np.where(positive, index, index - num_diameters)
    labels = np.where(ambiguous, -1, labels)
    return labels, positive & ~ambiguous, ambiguous
