"""The batch simulation engine — a drop-in for the scalar simulator.

:class:`BatchSimulator` exposes the :class:`repro.model.simulator.
Simulator` surface (``step``/``run``/``run_until``, ``positions``,
``trace``, ``epoch``, ``stats``, ``geometry``, ``protocol_of``,
listeners, ``displace``) over struct-of-arrays state, and runs one of
two execution cores:

**Kernel mode** — swarms of plain :class:`~repro.protocols.
sync_granular.SyncGranularProtocol` instances with one shared
configuration (the 10k-100k regime this backend exists for).  The
per-robot protocol objects are *not bound*; the
:class:`~repro.batch.kernel.GranularKernel` executes whole instants as
array passes and ``protocol_of`` returns a
:class:`~repro.batch.kernel.KernelProtocolView` with the protocol's
read/queue surface.

**Object mode** — every other swarm.  Protocols are bound and activated
exactly like the scalar engine (same objects, same call order, same
exceptions), but observations are built from the array state with one
vectorized transform per activation instead of ``n`` scalar ones, and
reused wholesale while the configuration epoch stands still.

Both modes produce traces **bit-identical** to the scalar engine for
the same robots, scheduler and seed — that equivalence is enforced by
the :mod:`repro.verify.backends` differential oracle across the full
protocol x scheduler matrix.

Trace recording is the other big scalar cost at 100k robots: a
:class:`TraceStep` materialises ``n`` ``Vec2`` objects per instant.
:class:`BatchTrace` defers that work for instants that nobody will look
at (stride-skipped steps with no listeners attached), keeping the
latest configuration as two array copies until someone asks.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.batch import require_numpy
from repro.batch.arrays import SwarmArrays
from repro.batch.geometry import BatchGeometry
from repro.batch.kernel import (
    DEFAULT_OVERHEARD_LIMIT,
    GranularKernel,
    KernelProtocolView,
    kernel_eligible,
)
from repro.errors import ModelError, SchedulerError
from repro.geometry.vec import Vec2
from repro.model.observation import Observation, ObservedRobot
from repro.model.protocol import BindingInfo
from repro.model.robot import Robot
from repro.model.scheduler import Scheduler, SynchronousScheduler
from repro.model.trace import Trace, TracePolicy, TraceStep
from repro.perf.counters import PerfStats

__all__ = ["BatchSimulator", "BatchTrace", "swarm_supported"]


def swarm_supported(robots: Sequence[Robot]) -> bool:
    """Whether the batch backend can host this swarm.

    The batch engine implements the paper's base model (full
    visibility, continuous plane); any nonempty swarm of plain
    :class:`~repro.model.robot.Robot` specs runs — conforming
    granular swarms in kernel mode, everything else in object mode.
    Model *variants* (limited visibility, stale looks, lattices) have
    their own simulator subclasses and stay on the scalar backend.
    """
    return len(robots) > 0


class BatchTrace(Trace):
    """A :class:`Trace` with a lazy latest-step fast path.

    The batch engine's ``run``/``run_until`` skip building the
    ``TraceStep`` for instants the policy strides over when no step
    listeners are attached: the latest configuration is kept as two
    array copies and only turned into ``Vec2`` tuples when ``latest``
    or ``positions_at`` is actually consulted.
    """

    def __init__(
        self,
        initial_positions: Tuple[Vec2, ...],
        policy: Optional[TracePolicy] = None,
    ) -> None:
        super().__init__(
            initial_positions=initial_positions,
            policy=policy if policy is not None else TracePolicy(),
        )
        self._pending = None

    def note_step(self, time: int, active, px, py) -> None:
        """Record a stride-skipped step without materialising it."""
        self.skipped += 1
        self._latest = None
        self._pending = (time, active, px.copy(), py.copy())

    def record(self, step: TraceStep) -> None:
        self._pending = None
        super().record(step)

    def _materialize_pending(self) -> None:
        pending = self._pending
        if pending is not None:
            self._pending = None
            time, active, px, py = pending
            self._latest = TraceStep(
                time=time,
                active=active,
                positions=tuple(
                    Vec2(float(x), float(y)) for x, y in zip(px, py)
                ),
            )

    @property
    def latest(self) -> Optional[TraceStep]:
        self._materialize_pending()
        return super().latest

    def positions_at(self, time: int) -> Tuple[Vec2, ...]:
        self._materialize_pending()
        return super().positions_at(time)


class _ObjectCore:
    """Object-mode execution: scalar protocols over array state."""

    def __init__(self, sim: "BatchSimulator") -> None:
        self._sim = sim
        arrays = sim._arrays
        ids = sim._observed_ids
        self._obs_cache: List[Optional[Tuple[int, tuple, dict]]] = [None] * arrays.n
        for index, robot in enumerate(sim._robots):
            lx, ly = arrays.to_local_columns(index, arrays.ax, arrays.ay)
            initial_local = tuple(
                Vec2(float(x), float(y)) for x, y in zip(lx, ly)
            )
            robot.protocol.bind(
                BindingInfo(
                    index=index,
                    count=arrays.n,
                    sigma=robot.sigma / robot.frame.scale,
                    initial_positions=initial_local,
                    observable_ids=sim._observable_ids,
                    visibility_radius=None,
                )
            )

    def compute(self, now: int, active_arr, hook) -> Dict[int, Vec2]:
        sim = self._sim
        arrays = sim._arrays
        new_positions: Dict[int, Vec2] = {}
        for index in active_arr.tolist():
            robot = sim._robots[index]
            if hook is not None:
                hook("compute.observe", now)
            observation = self._observe(index)
            if hook is not None:
                hook("compute.decide", now)
            local_target = robot.protocol.on_activate(observation)
            world_target = robot.frame.to_world(local_target, arrays.anchor(index))
            clamped = arrays.position(index).clamped_toward(
                world_target, robot.sigma
            )
            new_positions[index] = clamped
        return new_positions

    def _observe(self, index: int) -> Observation:
        sim = self._sim
        if sim._caching:
            entry = self._obs_cache[index]
            if entry is not None and entry[0] == sim._epoch:
                sim._stats.cache_hits += 1
                sim._stats.observations_reused += len(entry[1])
                return Observation(
                    time=sim._time,
                    self_index=index,
                    robots=entry[1],
                    _by_index=entry[2],
                )
            sim._stats.cache_misses += 1
        observed = self._build(index)
        index_map = {r.index: r.position for r in observed}
        sim._stats.observations_built += len(observed)
        if sim._caching:
            self._obs_cache[index] = (sim._epoch, observed, index_map)
        return Observation(
            time=sim._time, self_index=index, robots=observed, _by_index=index_map
        )

    def _build(self, index: int) -> tuple:
        sim = self._sim
        arrays = sim._arrays
        lx, ly = arrays.to_local_columns(index, arrays.px, arrays.py)
        ids = sim._observed_ids
        return tuple(
            ObservedRobot(
                index=i,
                position=Vec2(float(x), float(y)),
                observable_id=ids[i],
            )
            for i, (x, y) in enumerate(zip(lx, ly))
        )


class BatchSimulator:
    """Array-backed SSM engine with the scalar ``Simulator`` surface.

    Args:
        robots: the swarm; same validation rules (and error messages)
            as the scalar constructor.
        scheduler: activation policy; defaults to fully synchronous.
        caching: enable epoch-based reuse (observation snapshots,
            geometry memo).  Results never depend on it.
        trace_policy: trace retention; pair large swarms with a stride
            so recording stays array-speed (see :class:`BatchTrace`).
        overheard_limit: swarm size up to which kernel-mode per-robot
            ``overheard`` logs are maintained.
    """

    backend = "batch"

    def __init__(
        self,
        robots: Sequence[Robot],
        scheduler: Optional[Scheduler] = None,
        *,
        caching: bool = True,
        trace_policy: Optional[TracePolicy] = None,
        overheard_limit: int = DEFAULT_OVERHEARD_LIMIT,
    ) -> None:
        self._np = require_numpy()
        if not robots:
            raise ModelError("a simulation needs at least one robot")
        protocols = [r.protocol for r in robots]
        if len({id(p) for p in protocols}) != len(protocols):
            raise ModelError("every robot needs its own protocol instance")
        positions = [r.position for r in robots]
        seen: Dict[Vec2, int] = {}
        for i, p in enumerate(positions):
            j = seen.get(p)
            if j is not None:
                raise ModelError(
                    f"robots {j} and {i} share the initial position {p!r}"
                )
            seen[p] = i
        ids = [r.observable_id for r in robots]
        self._identified = all(v is not None for v in ids)
        if not self._identified and any(v is not None for v in ids):
            raise ModelError(
                "either every robot has an observable_id (identified system) "
                "or none does (anonymous system)"
            )
        if self._identified and len(set(ids)) != len(ids):
            raise ModelError("observable ids must be pairwise distinct")

        self._robots = list(robots)
        self._scheduler = (
            scheduler if scheduler is not None else SynchronousScheduler()
        )
        self._observable_ids: Optional[Tuple[int, ...]] = (
            tuple(ids) if self._identified else None
        )
        self._observed_ids: Tuple[Optional[int], ...] = (
            tuple(ids) if self._identified else (None,) * len(self._robots)
        )
        self._arrays = SwarmArrays(self._robots)
        self._caching = bool(caching)
        self._stats = PerfStats()
        self._c_realloc = self._stats.registry.counter("batch_array_reallocs")
        self._c_realloc.inc(8)  # the SoA columns allocated above
        self._epoch = 0
        self._time = 0
        self._trace = BatchTrace(
            initial_positions=tuple(positions), policy=trace_policy
        )
        self._geometry = BatchGeometry(stats=self._stats, enabled=self._caching)
        self._step_listeners: List[Callable] = []
        self._fault_listeners: List[Callable] = []
        self._phase_hook: Optional[Callable[[str, int], None]] = None

        self._kernel: Optional[GranularKernel] = None
        self._object: Optional[_ObjectCore] = None
        if kernel_eligible(self._robots):
            self._kernel = GranularKernel(
                self._robots, self._arrays, self._stats, overheard_limit
            )
        else:
            self._object = _ObjectCore(self)

        # A synchronous schedule is stateless and activates everyone:
        # resolve it once instead of building an n-element frozenset
        # per instant.
        self._sync_fast = type(self._scheduler) is SynchronousScheduler
        self._sync_cached: Optional[Tuple[frozenset, object]] = None

    # ------------------------------------------------------------------
    # Introspection (the scalar surface)
    # ------------------------------------------------------------------
    @property
    def time(self) -> int:
        """The current instant ``t_j``."""
        return self._time

    @property
    def count(self) -> int:
        """Number of robots."""
        return len(self._robots)

    @property
    def robots(self) -> Tuple[Robot, ...]:
        """The robot specifications (read-only view)."""
        return tuple(self._robots)

    @property
    def positions(self) -> Tuple[Vec2, ...]:
        """Current world positions ``P(t_j)`` (materialised on demand)."""
        return self._arrays.positions_tuple()

    @property
    def trace(self) -> BatchTrace:
        """The recorded history so far."""
        return self._trace

    @property
    def epoch(self) -> int:
        """The configuration epoch (bumps only when positions change)."""
        return self._epoch

    @property
    def stats(self) -> PerfStats:
        """Live performance counters (incl. the ``batch_*`` metrics)."""
        return self._stats

    @property
    def caching_enabled(self) -> bool:
        """Whether the epoch-based reuse paths are active."""
        return self._caching

    @property
    def mode(self) -> str:
        """``"kernel"`` (vectorized granular) or ``"object"``."""
        return "kernel" if self._kernel is not None else "object"

    @property
    def geometry(self) -> BatchGeometry:
        """Derived geometry of ``P(t_j)``, memoised per epoch."""
        arrays = self._arrays
        self._geometry.update(self._epoch, lambda: (arrays.px, arrays.py))
        return self._geometry

    def protocol_of(self, index: int):
        """Robot ``index``'s protocol surface.

        In object mode this is the bound protocol instance itself; in
        kernel mode a :class:`KernelProtocolView` with the same
        read/queue API.
        """
        if self._kernel is not None:
            if not (0 <= index < self.count):
                raise IndexError(index)
            return self._kernel.view(index)
        return self._robots[index].protocol

    # ------------------------------------------------------------------
    # Listeners / hooks
    # ------------------------------------------------------------------
    def add_step_listener(self, listener) -> None:
        """Subscribe to the live trace stream (see scalar docs)."""
        self._step_listeners.append(listener)

    def remove_step_listener(self, listener) -> None:
        """Unsubscribe a previously added step listener."""
        self._step_listeners.remove(listener)

    def add_fault_listener(self, listener) -> None:
        """Subscribe to out-of-band fault injections."""
        self._fault_listeners.append(listener)

    def remove_fault_listener(self, listener) -> None:
        """Unsubscribe a previously added fault listener."""
        self._fault_listeners.remove(listener)

    def set_phase_hook(self, hook):
        """Install (or clear) the phase-boundary hook.

        Fires the same top-level phases as the scalar engine
        (``schedule``/``compute``/``move``/``record``/``end``).  The
        per-robot dotted sub-phases fire in object mode only — kernel
        mode has no per-robot compute loop to attribute them to.
        Returns the previously installed hook.
        """
        previous = self._phase_hook
        self._phase_hook = hook
        return previous

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> TraceStep:
        """Advance one instant: activate, observe, compute, move."""
        return self._step_impl(materialize=True)

    def run(self, steps: int) -> Trace:
        """Advance a fixed number of instants; returns the trace."""
        if steps < 0:
            raise ModelError(f"steps must be >= 0, got {steps}")
        for _ in range(steps):
            self._step_impl(materialize=False)
        return self._trace

    def run_until(self, predicate, max_steps: int) -> bool:
        """Step until ``predicate(self)`` holds or ``max_steps`` elapse."""
        if max_steps < 0:
            raise ModelError(f"max_steps must be >= 0, got {max_steps}")
        for _ in range(max_steps):
            if predicate(self):
                return True
            self._step_impl(materialize=False)
        return predicate(self)

    def _step_impl(self, materialize: bool) -> Optional[TraceStep]:
        hook = self._phase_hook
        now = self._time
        if hook is not None:
            hook("schedule", now)
        active, active_arr = self._activations()
        if hook is not None:
            hook("compute", now)
        if self._kernel is not None:
            self._kernel.decode(now, active_arr)
            moves = self._kernel.compute_moves(active_arr)
            if hook is not None:
                hook("move", now)
            self._apply_kernel_moves(*moves)
        else:
            new_positions = self._object.compute(now, active_arr, hook)
            if hook is not None:
                hook("move", now)
            self._apply_object_moves(new_positions)

        if hook is not None:
            hook("record", now)
        policy = self._trace.policy
        retained = policy.stride <= 1 or now % policy.stride == 0
        step: Optional[TraceStep] = None
        if materialize or retained or self._step_listeners:
            step = TraceStep(
                time=now, active=active, positions=self._arrays.positions_tuple()
            )
            self._trace.record(step)
        else:
            self._trace.note_step(now, active, self._arrays.px, self._arrays.py)
        self._time += 1
        if step is not None:
            for listener in self._step_listeners:
                listener(self, step)
        if hook is not None:
            hook("end", now)
        return step

    def _activations(self):
        np = self._np
        if self._sync_fast:
            cached = self._sync_cached
            if cached is None:
                active = self._scheduler.activations(self._time, self.count)
                arr = np.fromiter(sorted(active), dtype=np.int64, count=len(active))
                cached = self._sync_cached = (frozenset(active), arr)
            return cached
        active = self._scheduler.activations(self._time, self.count)
        if not active:
            raise SchedulerError(f"empty activation set at t={self._time}")
        if any(not (0 <= i < self.count) for i in active):
            raise SchedulerError(f"activation set {sorted(active)} out of range")
        arr = np.fromiter(sorted(active), dtype=np.int64, count=len(active))
        return frozenset(active), arr

    def _apply_kernel_moves(self, silent_idx, wx, wy, engaged_moves) -> None:
        arrays = self._arrays
        moved_idx = None
        if len(silent_idx):
            mask = (wx != arrays.px[silent_idx]) | (wy != arrays.py[silent_idx])
            if mask.any():
                moved_idx = silent_idx[mask]
            arrays.px[silent_idx] = wx
            arrays.py[silent_idx] = wy
        engaged_moved = []
        for j, position in engaged_moves:
            if position.x != arrays.px[j] or position.y != arrays.py[j]:
                engaged_moved.append(j)
            arrays.px[j] = position.x
            arrays.py[j] = position.y
        if moved_idx is None and not engaged_moved:
            return
        self._epoch += 1
        if moved_idx is not None:
            arrays.pos_epoch[moved_idx] = self._epoch
        for j in engaged_moved:
            arrays.pos_epoch[j] = self._epoch

    def _apply_object_moves(self, new_positions: Dict[int, Vec2]) -> None:
        arrays = self._arrays
        moved = [
            index
            for index, position in new_positions.items()
            if position != arrays.position(index)
        ]
        for index, position in new_positions.items():
            arrays.px[index] = position.x
            arrays.py[index] = position.y
        if moved:
            self._epoch += 1
            for index in moved:
                arrays.pos_epoch[index] = self._epoch

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def displace(self, index: int, position: Vec2) -> None:
        """Teleport a robot out-of-band — a *transient fault*.

        Same semantics and error messages as the scalar engine; in
        kernel mode the decode pipeline additionally switches the robot
        onto the per-observer classification path until it is back on
        its home point.
        """
        if not (0 <= index < self.count):
            raise ModelError(f"unknown robot {index}")
        arrays = self._arrays
        hit = (arrays.px == position.x) & (arrays.py == position.y)
        hit[index] = False
        if hit.any():
            first = int(self._np.nonzero(hit)[0][0])
            raise ModelError(f"displacement collides with robot {first}")
        old = arrays.position(index)
        arrays.px[index] = position.x
        arrays.py[index] = position.y
        self._epoch += 1
        arrays.pos_epoch[index] = self._epoch
        if self._kernel is not None:
            self._kernel.notify_displaced(index)
        for listener in self._fault_listeners:
            listener(self, index, old, position)
