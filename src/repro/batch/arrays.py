"""The struct-of-arrays swarm container and vectorized frame math.

One :class:`SwarmArrays` holds the whole swarm as flat float64 arrays:
positions, anchors (the immutable frame origins), the local-frame basis
vectors and unit scales, the per-robot movement bounds and the
per-robot position epochs.  All hot-loop math operates on columns.

Bit-parity contract
-------------------

The vectorized transforms mirror the scalar :class:`~repro.geometry.
frames.Frame` / :class:`~repro.geometry.vec.Vec2` arithmetic *operation
for operation*: NumPy's elementwise ``+ - * /`` on float64 are the same
IEEE-754 double operations CPython performs, so identical operand order
yields identical bit patterns.  The only library function that may
differ is ``hypot`` (NumPy routes to the C library, CPython ships its
own correctly-rounded implementation) — it is therefore used **only
inside branch predicates whose operands sit far from the decision
boundary**, never to produce an output coordinate.  Output coordinates
that depend on a ``hypot`` value (the clamp's shortened move) are
recomputed with scalar :class:`Vec2` math by the engine.
"""

from __future__ import annotations

from typing import Sequence

from repro.batch import require_numpy
from repro.geometry.vec import Vec2

__all__ = ["SwarmArrays"]


class SwarmArrays:
    """Flat-array (SoA) mirror of a robot swarm.

    Attributes:
        n: number of robots.
        px, py: current world positions (mutated by the engine).
        ax, ay: anchors — initial positions, the stationary local-frame
            origins (immutable).
        xaxx, xaxy: world components of each robot's local +x axis.
        yaxx, yaxy: world components of each robot's local +y axis.
        scale: local unit lengths in world units.
        sigma: per-activation movement bounds (world units).
        pos_epoch: the configuration epoch at which each robot last
            moved (the ``repro.perf`` invalidation vocabulary).
        reallocations: buffer growth counter (recorded into the obs
            MetricsRegistry by the engine as ``batch_array_reallocs``).
    """

    __slots__ = (
        "np", "n", "px", "py", "ax", "ay",
        "xaxx", "xaxy", "yaxx", "yaxy", "scale", "sigma",
        "pos_epoch", "reallocations",
    )

    def __init__(self, robots: Sequence) -> None:
        np = require_numpy()
        self.np = np
        n = len(robots)
        self.n = n
        self.px = np.empty(n, dtype=np.float64)
        self.py = np.empty(n, dtype=np.float64)
        self.xaxx = np.empty(n, dtype=np.float64)
        self.xaxy = np.empty(n, dtype=np.float64)
        self.yaxx = np.empty(n, dtype=np.float64)
        self.yaxy = np.empty(n, dtype=np.float64)
        self.scale = np.empty(n, dtype=np.float64)
        self.sigma = np.empty(n, dtype=np.float64)
        for i, robot in enumerate(robots):
            self.px[i] = robot.position.x
            self.py[i] = robot.position.y
            frame = robot.frame
            x_axis = frame.x_axis
            y_axis = frame.y_axis
            self.xaxx[i] = x_axis.x
            self.xaxy[i] = x_axis.y
            self.yaxx[i] = y_axis.x
            self.yaxy[i] = y_axis.y
            self.scale[i] = frame.scale
            self.sigma[i] = robot.sigma
        self.ax = self.px.copy()
        self.ay = self.py.copy()
        self.pos_epoch = np.zeros(n, dtype=np.int64)
        self.reallocations = 0

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def position(self, i: int) -> Vec2:
        """Robot ``i``'s current position as a scalar :class:`Vec2`."""
        return Vec2(float(self.px[i]), float(self.py[i]))

    def anchor(self, i: int) -> Vec2:
        """Robot ``i``'s anchor (initial position) as a :class:`Vec2`."""
        return Vec2(float(self.ax[i]), float(self.ay[i]))

    def positions_tuple(self):
        """All positions as a tuple of :class:`Vec2` (trace material)."""
        px, py = self.px, self.py
        return tuple(Vec2(float(px[i]), float(py[i])) for i in range(self.n))

    def stacked(self):
        """Positions as an ``(n, 2)`` array copy (geometry input)."""
        return self.np.column_stack((self.px, self.py))

    # ------------------------------------------------------------------
    # Vectorized transforms (exact scalar mirrors; see module docstring)
    # ------------------------------------------------------------------
    def to_local_columns(self, idx, wx, wy):
        """``Frame.to_local`` for robots ``idx`` observing points ``(wx, wy)``.

        Mirrors ``Vec2(delta.dot(x_axis) / scale, delta.dot(y_axis) /
        scale)`` with ``delta = world - anchor``: same products, same
        sums, same division, in the same order.
        """
        dx = wx - self.ax[idx]
        dy = wy - self.ay[idx]
        lx = (dx * self.xaxx[idx] + dy * self.xaxy[idx]) / self.scale[idx]
        ly = (dx * self.yaxx[idx] + dy * self.yaxy[idx]) / self.scale[idx]
        return lx, ly

    def to_world_columns(self, idx, lx, ly):
        """``Frame.to_world`` for robots ``idx`` and local points ``(lx, ly)``.

        Mirrors ``origin + x_axis * (lp.x * scale) + y_axis * (lp.y *
        scale)`` — Vec2 addition is left-associative, so the order is
        ``(anchor + x_term) + y_term`` per component.
        """
        tx = lx * self.scale[idx]
        ty = ly * self.scale[idx]
        wx = (self.ax[idx] + self.xaxx[idx] * tx) + self.yaxx[idx] * ty
        wy = (self.ay[idx] + self.xaxy[idx] * tx) + self.yaxy[idx] * ty
        return wx, wy

    def stay_targets(self, idx):
        """The world destination of active robots that *stay put*.

        A silent robot returns ``observation.self_position`` (its own
        current position in its local frame); the engine then maps it
        back to the world and clamps.  The local->world round trip is
        not an exact identity in floats — a robot can drift by an ulp
        and bump the configuration epoch exactly like the scalar
        engine's does.  This computes the full mirrored round trip:
        ``clamped_toward(to_world(to_local(p)))``.

        The clamp branch (``dist <= sigma or dist == 0``) uses
        ``np.hypot``; for stay targets the distance is at most a few
        ulps while sigma is a protocol-scale length, so the (at most
        1-ulp) library difference cannot flip the branch.  Robots whose
        move could sit near the sigma boundary are never routed here —
        the engine computes movers with scalar Vec2 math.
        """
        np = self.np
        lx, ly = self.to_local_columns(idx, self.px[idx], self.py[idx])
        wx, wy = self.to_world_columns(idx, lx, ly)
        ddx = wx - self.px[idx]
        ddy = wy - self.py[idx]
        dist = np.hypot(ddx, ddy)
        sigma = self.sigma[idx]
        clamp = dist > sigma
        if clamp.any():
            # Ulp-drift exceeding sigma means sigma is degenerate
            # (pathologically tiny); reproduce the scalar shortened
            # move exactly via Vec2 math for those few robots.
            wx = wx.copy()
            wy = wy.copy()
            for k in np.nonzero(clamp)[0]:
                i = int(idx[k])
                moved = self.position(i).clamped_toward(
                    Vec2(float(wx[k]), float(wy[k])), float(self.sigma[i])
                )
                wx[k] = moved.x
                wy[k] = moved.y
        return wx, wy
